//! Cluster configuration (Table I defaults).

use aimc_xbar::XbarConfig;

/// Configuration of the IMA subsystem around the crossbar (Fig. 1C):
/// streamers, double-buffered I/O, and per-job control overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct ImaConfig {
    /// The analog array (geometry, MVM latency, energy).
    pub xbar: XbarConfig,
    /// Streamer read ports between L1 and the input buffer (Table I: 16).
    /// Each port moves one byte per cycle.
    pub streamer_read_ports: usize,
    /// Streamer write ports between the output buffer and L1 (Table I: 16).
    pub streamer_write_ports: usize,
    /// Control cycles to configure and trigger one job (address generators,
    /// job registers; executed by the master core).
    pub job_setup_cycles: u64,
}

impl Default for ImaConfig {
    fn default() -> Self {
        ImaConfig {
            xbar: XbarConfig::hermes_256(),
            streamer_read_ports: 16,
            streamer_write_ports: 16,
            job_setup_cycles: 64,
        }
    }
}

/// DMA engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Maximum bytes per AXI burst (segmentation granularity).
    pub max_burst_bytes: usize,
    /// Maximum outstanding bursts (documented limit; the transfer engine
    /// serializes per-link anyway, so this bounds latency hiding toward
    /// high-latency targets such as the HBM).
    pub max_outstanding: usize,
    /// Cycles for the core to program one DMA transfer descriptor.
    pub setup_cycles: u64,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            max_burst_bytes: 1024,
            max_outstanding: 8,
            setup_cycles: 32,
        }
    }
}

/// Full cluster configuration (Fig. 1A): RISC-V cores + L1 TCDM + DMA + IMA.
///
/// # Examples
/// ```
/// use aimc_cluster::ClusterConfig;
/// let c = ClusterConfig::paper();
/// assert_eq!(c.n_cores, 16);
/// assert_eq!(c.l1_bytes, 1024 * 1024);
/// assert_eq!(c.ima.xbar.rows, 256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// RISC-V cores per cluster (Table I: 16).
    pub n_cores: usize,
    /// L1 scratchpad capacity in bytes (Table I: 1 MB).
    pub l1_bytes: usize,
    /// TCDM banks (banking conflicts are folded into kernel cost constants).
    pub l1_banks: usize,
    /// The in-memory accelerator subsystem.
    pub ima: ImaConfig,
    /// The cluster DMA.
    pub dma: DmaConfig,
    /// Per-kernel-launch orchestration overhead in cycles: master-core event
    /// waits, barrier, thread dispatch (Sec. IV-5 execution flow).
    pub kernel_launch_cycles: u64,
}

impl ClusterConfig {
    /// Table I configuration.
    pub fn paper() -> Self {
        ClusterConfig {
            n_cores: 16,
            l1_bytes: 1024 * 1024,
            l1_banks: 32,
            ima: ImaConfig::default(),
            dma: DmaConfig::default(),
            kernel_launch_cycles: 300,
        }
    }

    /// Validates structural consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("cluster needs at least one core".into());
        }
        if self.l1_bytes == 0 {
            return Err("L1 must be non-empty".into());
        }
        if self.ima.streamer_read_ports == 0 || self.ima.streamer_write_ports == 0 {
            return Err("streamers need at least one port".into());
        }
        if self.dma.max_burst_bytes == 0 || self.dma.max_outstanding == 0 {
            return Err("DMA burst size and outstanding limit must be positive".into());
        }
        self.ima.xbar.validate()
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = ClusterConfig::paper();
        assert!(c.validate().is_ok());
        assert_eq!(c.n_cores, 16);
        assert_eq!(c.l1_bytes, 1 << 20);
        assert_eq!(c.ima.streamer_read_ports, 16);
        assert_eq!(c.ima.streamer_write_ports, 16);
        assert_eq!(c.ima.xbar.mvm_latency_ns, 130.0);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = ClusterConfig::paper();
        c.n_cores = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::paper();
        c.l1_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::paper();
        c.ima.streamer_read_ports = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::paper();
        c.dma.max_outstanding = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::paper();
        c.ima.xbar.rows = 0;
        assert!(c.validate().is_err());
    }
}
