//! L1 TCDM buffer allocator.
//!
//! The mapper uses this to *prove* a tiling fits the 1 MB scratchpad
//! (Sec. IV-4): every buffer a stage needs — double-buffered input and
//! output tiles, partial-sum buffers, residual storage — is allocated by
//! name, and over-subscription is a hard error at mapping time rather than a
//! silent fiction at simulation time.

use core::fmt;

/// Error returned when a requested buffer exceeds the remaining capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L1Overflow {
    /// Name of the buffer that failed to fit.
    pub buffer: String,
    /// Requested bytes.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
    /// Total capacity.
    pub capacity: usize,
}

impl fmt::Display for L1Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 overflow: buffer '{}' needs {} B but only {} of {} B remain",
            self.buffer, self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for L1Overflow {}

/// A named allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L1Buffer {
    /// Buffer name (diagnostics).
    pub name: String,
    /// Byte offset within the TCDM.
    pub offset: usize,
    /// Size in bytes.
    pub bytes: usize,
}

/// Bump allocator over one cluster's L1.
///
/// # Examples
/// ```
/// use aimc_cluster::L1Allocator;
/// let mut l1 = L1Allocator::new(1024);
/// let a = l1.alloc("in_tile", 256)?;
/// assert_eq!(a.offset, 0);
/// let b = l1.alloc("out_tile", 512)?;
/// assert_eq!(b.offset, 256);
/// assert_eq!(l1.free_bytes(), 256);
/// assert!(l1.alloc("too_big", 512).is_err());
/// # Ok::<(), aimc_cluster::L1Overflow>(())
/// ```
#[derive(Debug, Clone)]
pub struct L1Allocator {
    capacity: usize,
    used: usize,
    buffers: Vec<L1Buffer>,
}

impl L1Allocator {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        L1Allocator {
            capacity,
            used: 0,
            buffers: Vec::new(),
        }
    }

    /// Allocates `bytes` under `name`.
    ///
    /// Zero-byte allocations are legal and consume nothing (they appear in
    /// the buffer list for completeness).
    ///
    /// # Errors
    /// Returns [`L1Overflow`] if the buffer does not fit.
    pub fn alloc(&mut self, name: &str, bytes: usize) -> Result<L1Buffer, L1Overflow> {
        if bytes > self.capacity - self.used {
            return Err(L1Overflow {
                buffer: name.to_string(),
                requested: bytes,
                available: self.capacity - self.used,
                capacity: self.capacity,
            });
        }
        let buf = L1Buffer {
            name: name.to_string(),
            offset: self.used,
            bytes,
        };
        self.used += bytes;
        self.buffers.push(buf.clone());
        Ok(buf)
    }

    /// Allocates a double-buffered pair (`name/0`, `name/1`) of `bytes` each.
    ///
    /// # Errors
    /// Returns [`L1Overflow`] if either half does not fit.
    pub fn alloc_double(
        &mut self,
        name: &str,
        bytes: usize,
    ) -> Result<(L1Buffer, L1Buffer), L1Overflow> {
        let a = self.alloc(&format!("{name}/0"), bytes)?;
        let b = self.alloc(&format!("{name}/1"), bytes)?;
        Ok((a, b))
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes allocated so far.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Bytes remaining.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.used
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// All allocations, in allocation order.
    pub fn buffers(&self) -> &[L1Buffer] {
        &self.buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut l1 = L1Allocator::new(100);
        let a = l1.alloc("a", 30).unwrap();
        let b = l1.alloc("b", 30).unwrap();
        assert_eq!((a.offset, b.offset), (0, 30));
        assert_eq!(l1.used_bytes(), 60);
        assert_eq!(l1.free_bytes(), 40);
        assert!((l1.occupancy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overflow_reports_context() {
        let mut l1 = L1Allocator::new(64);
        l1.alloc("x", 60).unwrap();
        let err = l1.alloc("big", 10).unwrap_err();
        assert_eq!(err.requested, 10);
        assert_eq!(err.available, 4);
        assert_eq!(err.capacity, 64);
        assert!(err.to_string().contains("big"));
        // Failed allocation leaves state untouched.
        assert_eq!(l1.used_bytes(), 60);
    }

    #[test]
    fn double_buffers_allocate_two_halves() {
        let mut l1 = L1Allocator::new(1000);
        let (a, b) = l1.alloc_double("tile", 100).unwrap();
        assert_eq!(a.name, "tile/0");
        assert_eq!(b.name, "tile/1");
        assert_eq!(b.offset, 100);
        assert_eq!(l1.used_bytes(), 200);
        assert!(l1.alloc_double("huge", 500).is_err());
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut l1 = L1Allocator::new(10);
        assert!(l1.alloc("all", 10).is_ok());
        assert_eq!(l1.free_bytes(), 0);
        assert!(l1.alloc("none", 0).is_ok());
        assert!(l1.alloc("one", 1).is_err());
    }

    #[test]
    fn buffer_list_tracks_names() {
        let mut l1 = L1Allocator::new(100);
        l1.alloc("first", 1).unwrap();
        l1.alloc("second", 2).unwrap();
        let names: Vec<&str> = l1.buffers().iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}
