//! Digital kernel cost models for the 16-core SPMD engine.
//!
//! ## Calibration (DESIGN.md §6)
//!
//! The paper's clusters run RISC-V cores with DSP/SIMD extensions (Gautschi
//! et al.) at 1 GHz. We model each kernel with a *cycles-per-element* (CPE)
//! constant for a single core on 8-bit data, derived from the inner-loop
//! structure of hand-tuned PULP kernels:
//!
//! | kernel        | inner loop                          | CPE  |
//! |---------------|-------------------------------------|------|
//! | residual add  | 2 loads + SIMD add + store / 4 lanes| 1.0  |
//! | reduction add | same as residual add                | 1.0  |
//! | max pool k×k  | k² loads+max / 4 lanes + store      | k²/4 + 0.5 |
//! | avg pool      | accumulate + scale / 4 lanes        | 0.75 |
//! | ReLU          | load+max+store / 4 lanes            | 0.75 |
//! | requantize    | mul+shift+sat / 4 lanes             | 1.0  |
//! | FC (digital)  | MAC (sdotp 4×8b)                    | 0.25 |
//!
//! Work is divided over the cores with a per-launch overhead
//! (`kernel_launch_cycles`, default 300) covering the Sec. IV-5 execution
//! flow: master-core event wait, DMA/IMA programming, thread wake-up and the
//! closing barrier. Parallelization across *clusters* is the mapper's job.

use aimc_sim::{Cycles, Frequency, SimTime};

/// A digital workload executed by the cluster's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigitalKernel {
    /// Element-wise tensor addition (residual join), `elems` outputs.
    ResidualAdd {
        /// Output elements.
        elems: u64,
    },
    /// Partial-sum reduction of two inputs (one tree level), `elems` outputs.
    ReductionAdd {
        /// Output elements.
        elems: u64,
    },
    /// Max pooling with `k × k` windows, `elems` outputs.
    MaxPool {
        /// Output elements.
        elems: u64,
        /// Window edge.
        k: usize,
    },
    /// Average pooling (incl. global), `elems` *input* elements read.
    AvgPool {
        /// Input elements.
        elems: u64,
    },
    /// Stand-alone ReLU over `elems` elements.
    Relu {
        /// Elements.
        elems: u64,
    },
    /// Requantization (scale + saturate) of `elems` elements.
    Requantize {
        /// Elements.
        elems: u64,
    },
    /// Digital fully-connected fallback, `macs` multiply-accumulates.
    FcDigital {
        /// MAC count.
        macs: u64,
    },
}

impl DigitalKernel {
    /// Single-core cycle cost (before division over cores).
    pub fn single_core_cycles(&self) -> u64 {
        match *self {
            DigitalKernel::ResidualAdd { elems } | DigitalKernel::ReductionAdd { elems } => elems,
            DigitalKernel::MaxPool { elems, k } => {
                // k²/4 compare-lanes + 0.5 store amortization, in fixed point.
                elems * (k * k) as u64 / 4 + elems / 2 + 1
            }
            DigitalKernel::AvgPool { elems } => elems * 3 / 4 + 1,
            DigitalKernel::Relu { elems } => elems * 3 / 4 + 1,
            DigitalKernel::Requantize { elems } => elems,
            DigitalKernel::FcDigital { macs } => macs / 4 + 1,
        }
    }

    /// Output (or processed) element count, for traffic accounting.
    pub fn elems(&self) -> u64 {
        match *self {
            DigitalKernel::ResidualAdd { elems }
            | DigitalKernel::ReductionAdd { elems }
            | DigitalKernel::MaxPool { elems, .. }
            | DigitalKernel::AvgPool { elems }
            | DigitalKernel::Relu { elems }
            | DigitalKernel::Requantize { elems } => elems,
            DigitalKernel::FcDigital { macs } => macs,
        }
    }
}

/// Timing report for one digital kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelReport {
    /// Wall-clock duration including launch overhead.
    pub duration: SimTime,
    /// Core-cycles actually consumed (for the energy model): busy cores ×
    /// cycles.
    pub core_cycles: u64,
}

/// The SPMD digital-kernel timing model.
///
/// # Examples
/// ```
/// use aimc_cluster::{DigitalEngine, DigitalKernel};
/// use aimc_sim::Frequency;
/// let eng = DigitalEngine::new(16, 300, Frequency::from_ghz(1));
/// let r = eng.run(DigitalKernel::ResidualAdd { elems: 16_000 });
/// // 16k elems / 16 cores = 1000 cycles + 300 launch = 1.3 us.
/// assert_eq!(r.duration, aimc_sim::SimTime::from_ns(1300));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DigitalEngine {
    n_cores: usize,
    launch_cycles: u64,
    freq: Frequency,
}

impl DigitalEngine {
    /// Creates an engine with `n_cores` workers and a per-launch overhead.
    ///
    /// # Panics
    /// Panics if `n_cores == 0`.
    pub fn new(n_cores: usize, launch_cycles: u64, freq: Frequency) -> Self {
        assert!(n_cores > 0, "engine needs at least one core");
        DigitalEngine {
            n_cores,
            launch_cycles,
            freq,
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Executes one kernel launch.
    pub fn run(&self, kernel: DigitalKernel) -> KernelReport {
        let serial = kernel.single_core_cycles();
        let parallel = serial.div_ceil(self.n_cores as u64);
        let total = self.launch_cycles + parallel;
        KernelReport {
            duration: self.freq.cycles_to_time(Cycles(total)),
            core_cycles: serial + self.launch_cycles, // master core orchestrates
        }
    }

    /// Executes several kernels back-to-back (one launch overhead each).
    pub fn run_all(&self, kernels: &[DigitalKernel]) -> KernelReport {
        let mut duration = SimTime::ZERO;
        let mut core_cycles = 0;
        for &k in kernels {
            let r = self.run(k);
            duration += r.duration;
            core_cycles += r.core_cycles;
        }
        KernelReport {
            duration,
            core_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DigitalEngine {
        DigitalEngine::new(16, 300, Frequency::from_ghz(1))
    }

    #[test]
    fn residual_add_scales_with_cores() {
        let one = DigitalEngine::new(1, 0, Frequency::from_ghz(1))
            .run(DigitalKernel::ResidualAdd { elems: 4096 });
        let sixteen = DigitalEngine::new(16, 0, Frequency::from_ghz(1))
            .run(DigitalKernel::ResidualAdd { elems: 4096 });
        assert_eq!(one.duration.as_ps(), 16 * sixteen.duration.as_ps());
    }

    #[test]
    fn launch_overhead_is_added_once() {
        let r = engine().run(DigitalKernel::Relu { elems: 16 });
        // ceil((16*3/4+1)/16)=1 cycle + 300 launch.
        assert_eq!(r.duration, SimTime::from_ns(301));
    }

    #[test]
    fn maxpool_costs_grow_with_window() {
        let k2 = engine().run(DigitalKernel::MaxPool { elems: 4096, k: 2 });
        let k3 = engine().run(DigitalKernel::MaxPool { elems: 4096, k: 3 });
        assert!(k3.duration > k2.duration);
    }

    #[test]
    fn pool1_latency_matches_design_estimate() {
        // The paper's Layer 1: 3x3 maxpool to 64x64x64 output = 262144 elems.
        // Expect ≈ 262144*(9/4+0.5)/16 ≈ 45k cycles ⇒ ~45 us at 1 GHz.
        let r = engine().run(DigitalKernel::MaxPool {
            elems: 64 * 64 * 64,
            k: 3,
        });
        let us = r.duration.as_us_f64();
        assert!((40.0..60.0).contains(&us), "pool1 took {us} us");
    }

    #[test]
    fn fc_digital_uses_simd_macs() {
        let r = engine().run(DigitalKernel::FcDigital { macs: 512_000 });
        // (512k/4 + 1) = 128001 cycles / 16 cores = 8001 cycles.
        assert_eq!(r.duration, SimTime::from_ns(300 + 8001));
    }

    #[test]
    fn run_all_accumulates() {
        let ks = [
            DigitalKernel::ReductionAdd { elems: 1000 },
            DigitalKernel::Requantize { elems: 1000 },
        ];
        let both = engine().run_all(&ks);
        let sum = engine().run(ks[0]).duration + engine().run(ks[1]).duration;
        assert_eq!(both.duration, sum);
        assert!(both.core_cycles >= 2 * 300);
    }

    #[test]
    fn core_cycles_track_serial_work() {
        let r = engine().run(DigitalKernel::ResidualAdd { elems: 10_000 });
        assert_eq!(r.core_cycles, 10_000 + 300);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        DigitalEngine::new(0, 0, Frequency::from_ghz(1));
    }
}
