//! # aimc-cluster — heterogeneous cluster model
//!
//! Timing models of everything inside one cluster of the architecture
//! (Fig. 1A/C of the paper): the IMA subsystem (streamers, double-buffered
//! I/O, the three-phase stream-in/compute/stream-out execution of Fig. 3),
//! the 16-core SPMD digital engine with per-kernel cycle cost models, the
//! 1 MB L1 TCDM (as a capacity-checked allocator for the mapper), and DMA
//! burst segmentation.
//!
//! The cluster pieces are *passive* analytical models: the pipelined,
//! self-timed composition across 512 clusters happens in `aimc-runtime` on
//! top of the `aimc-sim` event kernel.
//!
//! ## Example
//! ```
//! use aimc_cluster::{ClusterConfig, ImaJob, ImaModel};
//! use aimc_sim::Frequency;
//!
//! let cfg = ClusterConfig::paper();
//! let ima = ImaModel::new(cfg.ima.clone(), Frequency::from_ghz(1));
//! // One tile of the paper's Layer 2 (3x3 conv, 64ch, 192-row split):
//! let report = ima.run(ImaJob { n_mvm: 512, rows_used: 192, cols_used: 64 });
//! assert!(report.compute_bound); // 130 ns dominates 12-cycle streams
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dma;
mod ima;
mod kernels;
mod l1;

pub use config::{ClusterConfig, DmaConfig, ImaConfig};
pub use dma::{plan_transfer, DmaPlan};
pub use ima::{ImaJob, ImaJobReport, ImaModel};
pub use kernels::{DigitalEngine, DigitalKernel, KernelReport};
pub use l1::{L1Allocator, L1Buffer, L1Overflow};
