//! IMA subsystem timing: the three-phase execution model of Fig. 3
//! (stream-in → compute → stream-out) with double-buffered I/O.
//!
//! Per MVM:
//! * **stream-in** moves `rows_used` activation bytes from L1 into the input
//!   buffer through `streamer_read_ports` byte-per-cycle ports;
//! * **compute** is the fixed analog latency (DAC + array + ADC, 130 ns);
//! * **stream-out** moves `cols_used` result bytes back to L1.
//!
//! Because the buffers are duplicated ("double buffering, completely
//! overlapping the cost of transfers … with the computation", Sec. IV-2),
//! the steady-state issue interval is the *maximum* of the three phases, and
//! a job of `n_mvm` products takes fill + (n−1)·interval + drain.

use crate::config::ImaConfig;
use aimc_sim::{Cycles, Frequency, SimTime};

/// A batched IMA workload: `n_mvm` matrix-vector products against the
/// currently programmed weights, each reading `rows_used` bytes and
/// producing `cols_used` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImaJob {
    /// Number of MVMs (output pixels in this tile).
    pub n_mvm: u64,
    /// Active word lines (bytes streamed in per MVM).
    pub rows_used: usize,
    /// Active bit lines (bytes streamed out per MVM).
    pub cols_used: usize,
}

/// Timing/energy summary of one executed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImaJobReport {
    /// Total wall-clock time of the job, including setup.
    pub duration: SimTime,
    /// The steady-state issue interval between consecutive MVMs.
    pub issue_interval: SimTime,
    /// Whether the job is bound by the analog compute phase (vs streamers).
    pub compute_bound: bool,
    /// Energy of the job in nanojoules (array + converters + streamers).
    pub energy_nj: f64,
    /// Crossbar operations actually executed: `2·rows·cols` per MVM over the
    /// *full* array (the device evaluates every cross point), used for the
    /// "crossbar-executed TOPS" metric.
    pub executed_ops: u64,
    /// Useful operations: `2·rows_used·cols_used` per MVM.
    pub useful_ops: u64,
}

/// The IMA timing model.
///
/// # Examples
/// ```
/// use aimc_cluster::{ImaConfig, ImaJob, ImaModel};
/// use aimc_sim::Frequency;
/// let ima = ImaModel::new(ImaConfig::default(), Frequency::from_ghz(1));
/// let report = ima.run(ImaJob { n_mvm: 1024, rows_used: 256, cols_used: 256 });
/// // 256x256 at 16B/cycle streamers: 16-cycle streams vs 130-cycle compute
/// // ⇒ compute bound.
/// assert!(report.compute_bound);
/// ```
#[derive(Debug, Clone)]
pub struct ImaModel {
    cfg: ImaConfig,
    freq: Frequency,
}

impl ImaModel {
    /// Creates the model for a cluster clock.
    pub fn new(cfg: ImaConfig, freq: Frequency) -> Self {
        ImaModel { cfg, freq }
    }

    /// The configuration.
    pub fn config(&self) -> &ImaConfig {
        &self.cfg
    }

    /// Stream-in time for one MVM.
    pub fn stream_in(&self, rows_used: usize) -> SimTime {
        let cycles = rows_used.div_ceil(self.cfg.streamer_read_ports) as u64;
        self.freq.cycles_to_time(Cycles(cycles))
    }

    /// Stream-out time for one MVM.
    pub fn stream_out(&self, cols_used: usize) -> SimTime {
        let cycles = cols_used.div_ceil(self.cfg.streamer_write_ports) as u64;
        self.freq.cycles_to_time(Cycles(cycles))
    }

    /// The analog compute phase (constant).
    pub fn compute(&self) -> SimTime {
        SimTime::from_ns_f64(self.cfg.xbar.mvm_latency_ns)
    }

    /// Executes a job analytically.
    ///
    /// # Panics
    /// Panics if the job uses more rows/cols than the array provides, or is
    /// empty — both are mapper bugs, not runtime conditions.
    pub fn run(&self, job: ImaJob) -> ImaJobReport {
        assert!(job.n_mvm > 0, "empty IMA job");
        assert!(
            job.rows_used <= self.cfg.xbar.rows && job.cols_used <= self.cfg.xbar.cols,
            "job {}x{} exceeds array {}x{}",
            job.rows_used,
            job.cols_used,
            self.cfg.xbar.rows,
            self.cfg.xbar.cols
        );
        assert!(job.rows_used > 0 && job.cols_used > 0, "degenerate IMA job");

        let t_in = self.stream_in(job.rows_used);
        let t_cmp = self.compute();
        let t_out = self.stream_out(job.cols_used);
        let interval = t_in.max(t_cmp).max(t_out);

        let setup = self.freq.cycles_to_time(Cycles(self.cfg.job_setup_cycles));
        // Fill (first stream-in) + steady issue + drain (last compute+out).
        let pipeline = t_in + SimTime::from_ps(interval.as_ps() * (job.n_mvm - 1)) + t_cmp + t_out;
        let duration = setup + pipeline;

        let full_cells = (self.cfg.xbar.rows * self.cfg.xbar.cols) as u64;
        let used_cells = (job.rows_used * job.cols_used) as u64;
        ImaJobReport {
            duration,
            issue_interval: interval,
            compute_bound: t_cmp >= t_in && t_cmp >= t_out,
            energy_nj: self.cfg.xbar.mvm_energy_nj * job.n_mvm as f64,
            executed_ops: 2 * full_cells * job.n_mvm,
            useful_ops: 2 * used_cells * job.n_mvm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ImaModel {
        ImaModel::new(ImaConfig::default(), Frequency::from_ghz(1))
    }

    #[test]
    fn full_array_job_is_compute_bound() {
        let r = model().run(ImaJob {
            n_mvm: 100,
            rows_used: 256,
            cols_used: 256,
        });
        assert!(r.compute_bound);
        assert_eq!(r.issue_interval, SimTime::from_ns(130));
        // setup 64 + fill 16 + 99*130 + 130 + 16 = 13096 ns... cycles at 1GHz.
        assert_eq!(r.duration, SimTime::from_ns(64 + 16 + 99 * 130 + 130 + 16));
    }

    #[test]
    fn single_mvm_has_no_steady_state() {
        let m = model();
        let r = m.run(ImaJob {
            n_mvm: 1,
            rows_used: 147, // the paper's Layer 0: 7*7*3
            cols_used: 64,
        });
        // ceil(147/16)=10 in, 130 compute, ceil(64/16)=4 out, 64 setup.
        assert_eq!(r.duration, SimTime::from_ns(64 + 10 + 130 + 4));
        assert!(r.compute_bound);
    }

    #[test]
    fn ops_accounting_distinguishes_useful_from_executed() {
        let r = model().run(ImaJob {
            n_mvm: 2,
            rows_used: 147,
            cols_used: 64,
        });
        assert_eq!(r.useful_ops, 2 * 2 * 147 * 64);
        assert_eq!(r.executed_ops, 2 * 2 * 256 * 256);
        assert!(r.useful_ops < r.executed_ops);
    }

    #[test]
    fn throughput_matches_paper_peak() {
        // 4096 MVMs at full occupancy in ~4096*130ns ⇒ ~1.008 TOPS.
        let r = model().run(ImaJob {
            n_mvm: 4096,
            rows_used: 256,
            cols_used: 256,
        });
        let tops = r.useful_ops as f64 / r.duration.as_s_f64() / 1e12;
        assert!((tops - 1.008).abs() < 0.01, "got {tops} TOPS");
    }

    #[test]
    fn streamer_bound_when_compute_is_fast() {
        let mut cfg = ImaConfig::default();
        cfg.xbar.mvm_latency_ns = 4.0; // hypothetical fast array
        let m = ImaModel::new(cfg, Frequency::from_ghz(1));
        let r = m.run(ImaJob {
            n_mvm: 10,
            rows_used: 256,
            cols_used: 256,
        });
        assert!(!r.compute_bound);
        assert_eq!(r.issue_interval, SimTime::from_ns(16)); // 256/16 ports
    }

    #[test]
    fn energy_scales_with_mvm_count() {
        let m = model();
        let r1 = m.run(ImaJob {
            n_mvm: 10,
            rows_used: 64,
            cols_used: 64,
        });
        let r2 = m.run(ImaJob {
            n_mvm: 20,
            rows_used: 64,
            cols_used: 64,
        });
        assert!((r2.energy_nj - 2.0 * r1.energy_nj).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn rejects_oversized_jobs() {
        model().run(ImaJob {
            n_mvm: 1,
            rows_used: 257,
            cols_used: 1,
        });
    }

    #[test]
    #[should_panic(expected = "empty IMA job")]
    fn rejects_empty_jobs() {
        model().run(ImaJob {
            n_mvm: 0,
            rows_used: 1,
            cols_used: 1,
        });
    }
}
