//! DMA transfer segmentation.
//!
//! The cluster DMA moves tiles between L1s (and to/from HBM) as sequences of
//! AXI bursts. Segmentation matters for timing: the HBM controller pays a
//! per-burst row overhead, so the *number* of bursts — not only the byte
//! count — determines the cost of scattered traffic (the naive residual
//! placement of Sec. V-4).

use crate::config::DmaConfig;

/// A planned DMA transfer split into bursts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaPlan {
    /// Burst sizes in bytes, in issue order. All but the last equal the
    /// configured maximum.
    pub bursts: Vec<usize>,
    /// Total bytes (sum of bursts).
    pub total_bytes: usize,
    /// Descriptor programming cycles (charged to the master core once).
    pub setup_cycles: u64,
}

impl DmaPlan {
    /// Number of bursts.
    pub fn n_bursts(&self) -> usize {
        self.bursts.len()
    }
}

/// Splits a transfer of `bytes` into bursts according to `cfg`.
///
/// Zero-byte transfers produce an empty plan (no bursts, setup still paid —
/// the descriptor is programmed before the size is known to be degenerate).
///
/// # Examples
/// ```
/// use aimc_cluster::{plan_transfer, DmaConfig};
/// let cfg = DmaConfig::default(); // 1 KiB bursts
/// let plan = plan_transfer(&cfg, 2500);
/// assert_eq!(plan.bursts, vec![1024, 1024, 452]);
/// assert_eq!(plan.total_bytes, 2500);
/// ```
pub fn plan_transfer(cfg: &DmaConfig, bytes: usize) -> DmaPlan {
    let mut bursts = Vec::new();
    let mut remaining = bytes;
    while remaining > 0 {
        let b = remaining.min(cfg.max_burst_bytes);
        bursts.push(b);
        remaining -= b;
    }
    DmaPlan {
        bursts,
        total_bytes: bytes,
        setup_cycles: cfg.setup_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_has_uniform_bursts() {
        let cfg = DmaConfig {
            max_burst_bytes: 256,
            max_outstanding: 4,
            setup_cycles: 32,
        };
        let p = plan_transfer(&cfg, 1024);
        assert_eq!(p.bursts, vec![256; 4]);
        assert_eq!(p.n_bursts(), 4);
        assert_eq!(p.total_bytes, 1024);
    }

    #[test]
    fn remainder_goes_last() {
        let cfg = DmaConfig {
            max_burst_bytes: 100,
            max_outstanding: 4,
            setup_cycles: 32,
        };
        let p = plan_transfer(&cfg, 250);
        assert_eq!(p.bursts, vec![100, 100, 50]);
    }

    #[test]
    fn small_transfer_is_single_burst() {
        let p = plan_transfer(&DmaConfig::default(), 8);
        assert_eq!(p.bursts, vec![8]);
    }

    #[test]
    fn zero_bytes_is_empty_plan() {
        let p = plan_transfer(&DmaConfig::default(), 0);
        assert!(p.bursts.is_empty());
        assert_eq!(p.total_bytes, 0);
        assert_eq!(p.setup_cycles, DmaConfig::default().setup_cycles);
    }

    #[test]
    fn burst_sum_equals_total() {
        for bytes in [1usize, 1023, 1024, 1025, 123_456] {
            let p = plan_transfer(&DmaConfig::default(), bytes);
            assert_eq!(p.bursts.iter().sum::<usize>(), bytes);
            assert!(p.bursts.iter().all(|&b| b <= 1024 && b > 0));
        }
    }
}
