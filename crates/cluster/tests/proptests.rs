//! Property-based tests for the cluster timing models.

use aimc_cluster::{
    plan_transfer, ClusterConfig, DigitalEngine, DigitalKernel, DmaConfig, ImaConfig, ImaJob,
    ImaModel, L1Allocator,
};
use aimc_sim::Frequency;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// IMA job duration is monotone in every workload dimension and the
    /// issue interval never falls below the analog latency floor when
    /// compute-bound.
    #[test]
    fn ima_duration_is_monotone(
        n_mvm in 1u64..5000,
        rows in 1usize..=256,
        cols in 1usize..=256,
    ) {
        let m = ImaModel::new(ImaConfig::default(), Frequency::from_ghz(1));
        let base = m.run(ImaJob { n_mvm, rows_used: rows, cols_used: cols });
        let more_mvms = m.run(ImaJob { n_mvm: n_mvm + 1, rows_used: rows, cols_used: cols });
        prop_assert!(more_mvms.duration > base.duration);
        if rows < 256 {
            let more_rows = m.run(ImaJob { n_mvm, rows_used: rows + 1, cols_used: cols });
            prop_assert!(more_rows.duration >= base.duration);
        }
        prop_assert!(base.issue_interval >= m.stream_in(rows).min(m.compute()));
        prop_assert!(base.useful_ops <= base.executed_ops);
    }

    /// Energy is exactly linear in the MVM count.
    #[test]
    fn ima_energy_linear(n in 1u64..10_000, rows in 1usize..=256, cols in 1usize..=256) {
        let m = ImaModel::new(ImaConfig::default(), Frequency::from_ghz(1));
        let one = m.run(ImaJob { n_mvm: 1, rows_used: rows, cols_used: cols }).energy_nj;
        let many = m.run(ImaJob { n_mvm: n, rows_used: rows, cols_used: cols }).energy_nj;
        prop_assert!((many - one * n as f64).abs() < 1e-6);
    }

    /// Digital kernels: more cores never slow a kernel down; duration is
    /// monotone in element count.
    #[test]
    fn kernels_scale_sanely(
        elems in 1u64..1_000_000,
        cores in 1usize..64,
    ) {
        let f = Frequency::from_ghz(1);
        let e1 = DigitalEngine::new(cores, 300, f);
        let e2 = DigitalEngine::new(cores * 2, 300, f);
        for k in [
            DigitalKernel::ResidualAdd { elems },
            DigitalKernel::MaxPool { elems, k: 3 },
            DigitalKernel::AvgPool { elems },
            DigitalKernel::Requantize { elems },
        ] {
            let a = e1.run(k);
            let b = e2.run(k);
            prop_assert!(b.duration <= a.duration, "{:?}", k);
            prop_assert!(a.core_cycles >= 300);
        }
        let small = e1.run(DigitalKernel::ResidualAdd { elems });
        let large = e1.run(DigitalKernel::ResidualAdd { elems: elems + 1000 });
        prop_assert!(large.duration >= small.duration);
    }

    /// DMA plans tile the transfer exactly with maximal bursts.
    #[test]
    fn dma_plans_partition(bytes in 0usize..1_000_000, burst in 1usize..8192) {
        let cfg = DmaConfig { max_burst_bytes: burst, max_outstanding: 8, setup_cycles: 32 };
        let p = plan_transfer(&cfg, bytes);
        prop_assert_eq!(p.bursts.iter().sum::<usize>(), bytes);
        prop_assert!(p.bursts.iter().all(|&b| b > 0 && b <= burst));
        // All but the last burst are maximal.
        if p.bursts.len() > 1 {
            prop_assert!(p.bursts[..p.bursts.len() - 1].iter().all(|&b| b == burst));
        }
        prop_assert_eq!(p.n_bursts(), bytes.div_ceil(burst.max(1)));
    }

    /// The L1 allocator never over-commits and offsets never overlap.
    #[test]
    fn l1_allocations_never_overlap(sizes in prop::collection::vec(0usize..300_000, 1..20)) {
        let mut l1 = L1Allocator::new(1 << 20);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            if let Ok(buf) = l1.alloc(&format!("b{i}"), sz) {
                spans.push((buf.offset, buf.offset + buf.bytes));
            }
        }
        prop_assert!(l1.used_bytes() <= l1.capacity());
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }

    /// Cluster config validation never panics, and the paper config plus
    /// arbitrary positive tweaks stays valid.
    #[test]
    fn config_validation_total(cores in 1usize..64, l1_kb in 1usize..4096) {
        let mut c = ClusterConfig::paper();
        c.n_cores = cores;
        c.l1_bytes = l1_kb * 1024;
        prop_assert!(c.validate().is_ok());
    }
}
