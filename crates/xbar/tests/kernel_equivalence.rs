//! Property-based equivalence of the packed MVM kernels against the scalar
//! reference walks ([`Crossbar::mvm_reference_at`] /
//! [`Crossbar::mvm_bit_serial_reference_at`]).
//!
//! The packed kernels are an *optimization*, not a remodel: for every
//! array shape, converter resolution, input pattern (including negatives,
//! exact zeros, and values deep past the clip range), and invocation
//! index, their output must equal the reference **to the bit** — asserted
//! here via `f32::to_bits`, never via a tolerance. This suite is the CI
//! gate that lets the kernels keep changing shape (panels, masks,
//! batching) without renegotiating a single downstream result.

use aimc_xbar::{Crossbar, MvmScratch, XbarConfig, DAC_BATCH};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A crossbar programmed from arbitrary-but-reproducible weights, with
/// converter resolutions and noise drawn from the strategy.
fn programmed(
    rows: usize,
    cols: usize,
    dac_bits: u32,
    adc_bits: u32,
    sigma: f64,
    seed: u64,
) -> Crossbar {
    let mut wrng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let weights: Vec<f32> = (0..rows * cols)
        .map(|_| wrng.gen_range(-1.0f32..1.0))
        .collect();
    let mut cfg = XbarConfig::hermes_256();
    cfg.dac_bits = dac_bits;
    cfg.adc_bits = adc_bits;
    cfg.read_noise_sigma = sigma;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    Crossbar::program(&cfg, &weights, rows, cols, &mut rng).unwrap()
}

/// Inputs that stress every DAC regime: negatives, exact zeros (the row
/// masks), tiny values that quantize to ±0, and magnitudes far past the
/// clip range.
fn stress_input(rows: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    (0..rows)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => 0.0,
            1 => rng.gen_range(-200.0f32..200.0),
            2 => rng.gen_range(-1e-6f32..1e-6),
            _ => rng.gen_range(-2.0f32..2.0),
        })
        .collect()
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed parallel-DAC kernel ≡ scalar reference, bit for bit.
    #[test]
    fn packed_dac_matches_reference_bitwise(
        rows in 1usize..100,
        cols in 1usize..40,
        dac_bits in 2u32..12,
        adc_bits in 2u32..12,
        sigma_i in 0usize..3,
        seed in any::<u64>(),
        invocation in any::<u64>(),
    ) {
        let sigma = [0.0, 0.01, 0.1][sigma_i];
        let xbar = programmed(rows, cols, dac_bits, adc_bits, sigma, seed);
        let x = stress_input(rows, seed ^ 0x5151);
        let reference = xbar.mvm_reference_at(&x, invocation).unwrap();
        let mut packed = vec![0.0f32; cols];
        let mut scratch = MvmScratch::new();
        xbar.mvm_into_with(&x, &mut packed, invocation, &mut scratch).unwrap();
        prop_assert!(bits_eq(&packed, &reference), "packed diverged from reference");
        // Repeating the same invocation must replay the identical result
        // (counter-based streams, no hidden state).
        let mut replay = vec![0.0f32; cols];
        xbar.mvm_into_with(&x, &mut replay, invocation, &mut scratch).unwrap();
        prop_assert!(bits_eq(&replay, &reference), "replay diverged");
    }

    /// Packed bit-serial kernel ≡ scalar bit-serial reference across the
    /// full supported precision range.
    #[test]
    fn packed_bit_serial_matches_reference_bitwise(
        rows in 1usize..100,
        cols in 1usize..40,
        n_bits in 1u32..=16,
        sigma_i in 0usize..2,
        seed in any::<u64>(),
        invocation in any::<u64>(),
    ) {
        let sigma = [0.0, 0.01][sigma_i];
        let xbar = programmed(rows, cols, 8, 8, sigma, seed);
        let x = stress_input(rows, seed ^ 0x2323);
        let reference = xbar.mvm_bit_serial_reference_at(&x, n_bits, invocation).unwrap();
        let mut packed = vec![0.0f32; cols];
        let mut scratch = MvmScratch::new();
        xbar.mvm_bit_serial_into_with(&x, n_bits, &mut packed, invocation, &mut scratch)
            .unwrap();
        prop_assert!(bits_eq(&packed, &reference), "bit-serial packed diverged");
    }

    /// Batched evaluation ≡ the same patches run one at a time, bit for
    /// bit, for every batch size from 1 to 2·DAC_BATCH+1 (full quads,
    /// remainders, and mixes) and arbitrary non-contiguous invocations.
    #[test]
    fn batched_dac_matches_single_calls_bitwise(
        rows in 1usize..100,
        cols in 1usize..40,
        k in 1usize..=(2 * DAC_BATCH + 1),
        sigma_i in 0usize..2,
        seed in any::<u64>(),
        inv_base in any::<u64>(),
    ) {
        let sigma = [0.0, 0.01][sigma_i];
        let xbar = programmed(rows, cols, 8, 8, sigma, seed);
        let mut xrng = StdRng::seed_from_u64(seed ^ 0xabcd);
        use rand::Rng;
        let xs: Vec<f32> = (0..k * rows)
            .map(|i| if i % 7 == 3 { 0.0 } else { xrng.gen_range(-2.0f32..2.0) })
            .collect();
        // Non-contiguous, wrap-prone coordinates.
        let invocations: Vec<u64> =
            (0..k as u64).map(|p| inv_base.wrapping_add(p * p + p)).collect();

        let mut scratch = MvmScratch::new();
        let mut batched = vec![0.0f32; k * cols];
        xbar.mvm_batch_into_with(&xs, &mut batched, &invocations, &mut scratch).unwrap();

        let mut single = vec![0.0f32; cols];
        for p in 0..k {
            xbar.mvm_into_with(
                &xs[p * rows..(p + 1) * rows],
                &mut single,
                invocations[p],
                &mut scratch,
            )
            .unwrap();
            prop_assert!(
                bits_eq(&single, &batched[p * cols..(p + 1) * cols]),
                "batch patch {p} of {k} diverged from its single call"
            );
        }
    }
}
