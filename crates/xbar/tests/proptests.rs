//! Property-based tests for the crossbar model's core invariants.

use aimc_xbar::{Crossbar, XbarConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ref_mvm(w: &[f32], rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0.0f32; cols];
    for r in 0..rows {
        for c in 0..cols {
            y[c] += w[r * cols + c] * x[r];
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An ideal (noiseless, high-resolution) crossbar matches the exact
    /// mat-vec within converter quantization tolerance.
    #[test]
    fn ideal_mvm_matches_reference(
        rows in 1usize..40,
        cols in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let xb = Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let y = xb.mvm(&x).unwrap();
        let yref = ref_mvm(&w, rows, cols, &x);
        // Tolerance: DAC 16b + weight 16b quantization on sums of `rows` terms.
        let tol = 1e-3 * rows as f32 + 1e-3;
        for (a, b) in y.iter().zip(&yref) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    /// MVM output is linear in the input for an ideal array: f(ax) = a f(x)
    /// for positive scalars that stay inside the clipping range.
    #[test]
    fn ideal_mvm_is_scale_invariant_in_normalization(
        rows in 2usize..24,
        cols in 1usize..12,
        scale in 0.1f32..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let xb = Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let y1 = xb.mvm(&x).unwrap();
        let xs: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let y2 = xb.mvm(&xs).unwrap();
        let tol = 2e-3 * rows as f32 + 1e-3;
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * scale - b).abs() <= tol, "{} vs {}", a * scale, b);
        }
    }

    /// Stored weights always stay within the programmable range
    /// [-w_scale, +w_scale], even with noise.
    #[test]
    fn stored_weights_respect_conductance_bounds(
        rows in 1usize..16,
        cols in 1usize..16,
        sigma in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let mut cfg = XbarConfig::hermes_256();
        cfg.prog_noise_sigma = sigma;
        let xb = Crossbar::program(&cfg, &w, rows, cols, &mut rng).unwrap();
        let bound = xb.weight_scale() as f32 * 1.000_1;
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!(xb.stored_weight(r, c).abs() <= bound);
            }
        }
    }

    /// ADC output never exceeds the full-scale range.
    #[test]
    fn adc_output_is_bounded_by_full_scale(
        rows in 1usize..64,
        headroom in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = XbarConfig::ideal(rows, 1);
        cfg.adc_headroom = headroom;
        let w = vec![1.0f32; rows];
        let xb = Crossbar::program(&cfg, &w, rows, 1, &mut rng).unwrap();
        let x = vec![1.0f32; rows];
        let y = xb.mvm(&x).unwrap();
        let fs = (headroom * rows as f64 * cfg.x_clip) as f32 * 1.001;
        prop_assert!(y[0].abs() <= fs, "|{}| > fs {}", y[0], fs);
    }

    /// Utilization is exactly the occupied fraction and lies in (0, 1].
    #[test]
    fn utilization_is_occupied_fraction(
        rows in 1usize..=256,
        cols in 1usize..=256,
    ) {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = XbarConfig::hermes_256();
        let w = vec![0.1f32; rows * cols];
        let xb = Crossbar::program(&cfg, &w, rows, cols, &mut rng).unwrap();
        let expect = (rows * cols) as f64 / (256.0 * 256.0);
        prop_assert!((xb.utilization() - expect).abs() < 1e-12);
        prop_assert!(xb.utilization() > 0.0 && xb.utilization() <= 1.0);
    }
}

// --- Invocation-index derivation audit (serving layer) ---------------------
//
// The micro-batch scheduler relies on one device-level fact: the noise of an
// MVM depends *only* on its invocation coordinate, never on which calls came
// before it or how calls were grouped. These properties pin that down at the
// crossbar boundary, including the large global image indices a long-lived
// serving stream produces.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Evaluating the same invocation coordinates in any order, grouping,
    /// or interleaving yields bit-identical outputs per coordinate.
    #[test]
    fn invocation_noise_is_chop_and_order_invariant(
        rows in 1usize..16,
        cols in 1usize..8,
        seed in any::<u64>(),
        base in 0u64..1_000_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let program = |s: u64| {
            let mut prng = StdRng::seed_from_u64(s);
            Crossbar::program(&XbarConfig::hermes_256().with_size(rows.max(1), cols.max(1)),
                              &w, rows, cols, &mut prng).unwrap()
        };
        let invocations: Vec<u64> = (0..6).map(|i| base + i).collect();

        // Reference: ascending order on one freshly programmed array.
        let a = program(seed);
        let want: Vec<Vec<f32>> =
            invocations.iter().map(|&i| a.mvm_at(&x, i).unwrap()).collect();

        // Same coordinates, reversed order, on an identically programmed
        // array — with unrelated interleaved evaluations thrown in.
        let b = program(seed);
        let mut got: Vec<(u64, Vec<f32>)> = Vec::new();
        for &i in invocations.iter().rev() {
            let _ = b.mvm_at(&x, i + 7_777).unwrap(); // unrelated coordinate
            got.push((i, b.mvm_at(&x, i).unwrap()));
        }
        got.sort_by_key(|(i, _)| *i);
        for ((i, g), w_) in got.iter().zip(&want) {
            prop_assert_eq!(g, w_, "invocation {} depends on call order", i);
        }
    }

    /// The executor's global coordinate form `image · patches + patch`
    /// never maps two distinct (image, patch) pairs in a working set to
    /// the same read-noise stream — including at serving-scale bases.
    #[test]
    fn global_image_coordinates_stay_distinct(
        noise_seed in any::<u64>(),
        n_pix in 1u64..512,
        img_base in 0u64..(1 << 40),
    ) {
        use aimc_xbar::stream::derive;
        let mut seen = std::collections::HashSet::new();
        for img in img_base..img_base + 8 {
            for p in 0..n_pix.min(16) {
                let coordinate = img * n_pix + p;
                prop_assert!(
                    seen.insert(derive(noise_seed, coordinate)),
                    "collision at image {} patch {}", img, p
                );
            }
        }
    }
}
