//! Property-based tests for the crossbar model's core invariants.

use aimc_xbar::{Crossbar, XbarConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ref_mvm(w: &[f32], rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
    let mut y = vec![0.0f32; cols];
    for r in 0..rows {
        for c in 0..cols {
            y[c] += w[r * cols + c] * x[r];
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An ideal (noiseless, high-resolution) crossbar matches the exact
    /// mat-vec within converter quantization tolerance.
    #[test]
    fn ideal_mvm_matches_reference(
        rows in 1usize..40,
        cols in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let xb = Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let y = xb.mvm(&x).unwrap();
        let yref = ref_mvm(&w, rows, cols, &x);
        // Tolerance: DAC 16b + weight 16b quantization on sums of `rows` terms.
        let tol = 1e-3 * rows as f32 + 1e-3;
        for (a, b) in y.iter().zip(&yref) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    /// MVM output is linear in the input for an ideal array: f(ax) = a f(x)
    /// for positive scalars that stay inside the clipping range.
    #[test]
    fn ideal_mvm_is_scale_invariant_in_normalization(
        rows in 2usize..24,
        cols in 1usize..12,
        scale in 0.1f32..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let xb = Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let y1 = xb.mvm(&x).unwrap();
        let xs: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let y2 = xb.mvm(&xs).unwrap();
        let tol = 2e-3 * rows as f32 + 1e-3;
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * scale - b).abs() <= tol, "{} vs {}", a * scale, b);
        }
    }

    /// Stored weights always stay within the programmable range
    /// [-w_scale, +w_scale], even with noise.
    #[test]
    fn stored_weights_respect_conductance_bounds(
        rows in 1usize..16,
        cols in 1usize..16,
        sigma in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let mut cfg = XbarConfig::hermes_256();
        cfg.prog_noise_sigma = sigma;
        let xb = Crossbar::program(&cfg, &w, rows, cols, &mut rng).unwrap();
        let bound = xb.weight_scale() as f32 * 1.000_1;
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!(xb.stored_weight(r, c).abs() <= bound);
            }
        }
    }

    /// ADC output never exceeds the full-scale range.
    #[test]
    fn adc_output_is_bounded_by_full_scale(
        rows in 1usize..64,
        headroom in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = XbarConfig::ideal(rows, 1);
        cfg.adc_headroom = headroom;
        let w = vec![1.0f32; rows];
        let xb = Crossbar::program(&cfg, &w, rows, 1, &mut rng).unwrap();
        let x = vec![1.0f32; rows];
        let y = xb.mvm(&x).unwrap();
        let fs = (headroom * rows as f64 * cfg.x_clip) as f32 * 1.001;
        prop_assert!(y[0].abs() <= fs, "|{}| > fs {}", y[0], fs);
    }

    /// Utilization is exactly the occupied fraction and lies in (0, 1].
    #[test]
    fn utilization_is_occupied_fraction(
        rows in 1usize..=256,
        cols in 1usize..=256,
    ) {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = XbarConfig::hermes_256();
        let w = vec![0.1f32; rows * cols];
        let xb = Crossbar::program(&cfg, &w, rows, cols, &mut rng).unwrap();
        let expect = (rows * cols) as f64 / (256.0 * 256.0);
        prop_assert!((xb.utilization() - expect).abs() < 1e-12);
        prop_assert!(xb.utilization() > 0.0 && xb.utilization() <= 1.0);
    }
}
