//! The hot-loop allocation contract, asserted with a counting global
//! allocator: after one warm-up call per (shape, path), none of the MVM
//! entry points that take (or borrow) an [`MvmScratch`] may touch the heap.
//!
//! One test function on purpose — the counter is process-global, and a
//! sibling test allocating concurrently would produce false positives.

use aimc_xbar::{Crossbar, MvmScratch, XbarConfig, DAC_BATCH};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every acquisition path
/// (`alloc`, `alloc_zeroed`, `realloc`) — frees are not counted, so a
/// shrink-in-place cannot mask a fresh allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn programmed(rows: usize, cols: usize) -> Crossbar {
    let weights: Vec<f32> = (0..rows * cols)
        .map(|i| ((i * 37 % 64) as f32 - 32.0) / 32.0)
        .collect();
    let mut rng = StdRng::seed_from_u64(11);
    Crossbar::program(&XbarConfig::hermes_256(), &weights, rows, cols, &mut rng).unwrap()
}

#[test]
fn warm_mvm_paths_never_allocate() {
    // Ragged shapes so masks have partial tail words and the scratch is
    // resized across shapes during warm-up (grow-only buffers must end at
    // the high-water mark before counting starts).
    let shapes = [(27usize, 16usize), (144, 32), (70, 21)];
    let xbars: Vec<Crossbar> = shapes.iter().map(|&(r, c)| programmed(r, c)).collect();
    let max_rows = 144;
    let max_cols = 32;

    let x: Vec<f32> = (0..DAC_BATCH * max_rows)
        .map(|i| (i as f32).sin())
        .collect();
    let mut out = vec![0.0f32; DAC_BATCH * max_cols];
    let mut scratch = MvmScratch::new();
    let invocations: Vec<u64> = (0..DAC_BATCH as u64).collect();

    let sweep = |scratch: &mut MvmScratch, out: &mut [f32], base: u64| {
        for xbar in &xbars {
            let (r, c) = (xbar.rows_used(), xbar.cols_used());
            xbar.mvm_into_with(&x[..r], &mut out[..c], base, scratch)
                .unwrap();
            // Full quad plus a remainder-sized batch: both batch paths.
            xbar.mvm_batch_into_with(
                &x[..DAC_BATCH * r],
                &mut out[..DAC_BATCH * c],
                &invocations,
                scratch,
            )
            .unwrap();
            xbar.mvm_batch_into_with(&x[..2 * r], &mut out[..2 * c], &invocations[..2], scratch)
                .unwrap();
            for bits in [1u32, 8, 16] {
                xbar.mvm_bit_serial_into_with(&x[..r], bits, &mut out[..c], base + 1, scratch)
                    .unwrap();
            }
            // The scratch-less entry borrows a thread-local scratch; warm
            // it too, then hold it to the same standard.
            xbar.mvm_into_at(&x[..r], &mut out[..c], base + 2).unwrap();
        }
    };

    // Warm-up: sizes every grow-only buffer (including the lazily
    // initialized ziggurat tables and the thread-local scratch).
    sweep(&mut scratch, &mut out, 0);

    let before = allocations();
    for rep in 0..10u64 {
        sweep(&mut scratch, &mut out, 100 + rep);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm MVM hot loops allocated {} times",
        after - before
    );
}
