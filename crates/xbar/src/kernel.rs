//! Bit-packed MVM kernels and the reusable per-worker scratch.
//!
//! This module is the single-core engine room of the simulator: every
//! analog MVM — parallel-DAC ([`crate::Crossbar::mvm_into_at`]) or
//! bit-serial ([`crate::Crossbar::mvm_bit_serial_at`]) — lands in one of
//! the two *packed* kernels here. The packing idea comes straight from the
//! hardware being modeled: a bit-serial word-line pulse **is** a binary
//! row-selection mask, and on a CPU a row-selection mask is a `u64` word,
//! not a per-row branch test.
//!
//! ## Packing scheme
//!
//! ```text
//! rows   0..=63   64..=127  128..=191 …         (one u64 word per 64 rows)
//!        ┌──────┐ ┌──────┐ ┌──────┐
//! DAC    │ m₀   │ │ m₁   │ │ m₂   │   nonzero-input rows (xq[r] ≠ 0)
//!        └──────┘ └──────┘ └──────┘
//! plane(bit,φ)  one mask row per (bit-plane, phase) pair:
//!        bit 0 φ+ │……│……│  bit 0 φ− │……│……│
//!        bit 1 φ+ │……│……│  bit 1 φ− │……│……│   row r set ⇔ sign(xq[r]) = φ
//!        …                                     and bit `bit` of |xq[r]| set
//! ```
//!
//! * the **silent-plane scan** (does any row pulse?) becomes "is any packed
//!   word nonzero" — a handful of word compares instead of a `rows`-long
//!   predicate loop;
//! * **plane accumulation** walks set bits via `trailing_zeros`, visiting
//!   rows in ascending order;
//! * planes that share a row mask share their (noiseless) plane sum:
//!   identical row set + identical ascending order ⇒ bit-identical f64
//!   sum, so it is evaluated once and reused (noise is still drawn per
//!   plane, see below).
//!
//! ## Why bit-exactness survives
//!
//! The packed kernels promise outputs **bit-identical** to the scalar
//! reference kernels ([`crate::Crossbar::mvm_reference_at`],
//! [`crate::Crossbar::mvm_bit_serial_reference_at`]), because:
//!
//! 1. per column, f64 accumulation visits rows in exactly the reference's
//!    ascending order (`trailing_zeros` enumerates a word's set bits in
//!    increasing position; words are walked in increasing row order, and
//!    column-blocking reorders *columns*, never a column's row order);
//! 2. quantization goes through the same audited helpers
//!    ([`dac_quantize`], [`signed_quantize`], [`adc_readout`]) in the same
//!    element order;
//! 3. read noise comes from the same counter-based stream
//!    (`derive(noise_seed, invocation)`) through the same
//!    [`GaussianStream`] sampler, drawn in the same (bit, phase, column)
//!    order, with silent planes drawing nothing — so mask-sharing reuse
//!    of a plane *sum* never reuses its *noise*.
//!
//! The proptest suite in `tests/kernel_equivalence.rs` pins packed ≡
//! reference across sizes, bit widths, sign patterns, and repeated
//! invocations (noise-stream parity).
//!
//! ## Zero allocation
//!
//! All kernel state lives in a caller-owned [`MvmScratch`] (plumbed into
//! the executors' per-worker scratch); after one warm-up call per shape no
//! path below allocates. Entry points without a scratch parameter borrow a
//! thread-local one. `tests/no_alloc.rs` asserts the no-allocation
//! property with a counting global allocator.

use crate::crossbar::Crossbar;
use crate::noise::GaussianStream;
use crate::stream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// Reusable buffers for the packed MVM kernels — one per worker thread.
///
/// Sized lazily on first use and grown monotonically; a warm scratch makes
/// every kernel in this module allocation-free. Construct with
/// [`MvmScratch::new`] (or `Default`) and pass to
/// [`crate::Crossbar::mvm_into_with`] /
/// [`crate::Crossbar::mvm_bit_serial_into_with`].
#[derive(Debug, Default)]
pub struct MvmScratch {
    /// DAC-quantized inputs (parallel path).
    xq: Vec<f64>,
    /// Signed n-bit quantized inputs (bit-serial path).
    qint: Vec<i64>,
    /// Column accumulators (both paths).
    acc: Vec<f64>,
    /// Packed nonzero-input row mask (parallel path).
    mask: Vec<u64>,
    /// Packed per-(bit, phase) row-selection masks (bit-serial path).
    plane_masks: Vec<u64>,
    /// Union of the per-patch row masks (batched parallel path).
    umask: Vec<u64>,
    /// Noiseless plane sums, one stride-padded slot per plane (bit-serial
    /// path; accessed through [`aligned_view`]).
    plane_sums: Vec<f64>,
    /// Plane ids whose sums have been evaluated this call (reuse lookup).
    eval_ids: Vec<usize>,
}

impl MvmScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets for a parallel-DAC evaluation over `rows` input rows.
    ///
    /// `xq` and `mask` are sized but not zeroed: the fused quantize pass
    /// overwrites every element and every mask word it reads.
    fn prepare_dac(&mut self, rows: usize) {
        self.xq.resize(rows, 0.0);
        self.mask.resize(rows.div_ceil(64), 0);
    }

    /// Resets for a batched parallel-DAC evaluation of [`DAC_BATCH`]
    /// patches over `rows` input rows each. Same no-zeroing contract as
    /// [`MvmScratch::prepare_dac`]; `umask` is rebuilt from the per-patch
    /// masks.
    fn prepare_dac_batch(&mut self, rows: usize) {
        let words = rows.div_ceil(64);
        self.xq.resize(DAC_BATCH * rows, 0.0);
        self.mask.resize(DAC_BATCH * words, 0);
        self.umask.resize(words, 0);
    }

    /// Resets for a bit-serial evaluation with `n_planes` (bit, phase)
    /// planes over `rows` input rows, `words` mask words per plane.
    fn prepare_bit_serial(&mut self, rows: usize, n_planes: usize, words: usize) {
        self.qint.clear();
        self.qint.reserve(rows);
        self.plane_masks.clear();
        self.plane_masks.resize(n_planes * words, 0);
        self.eval_ids.clear();
    }
}

/// Returns a 64-byte-aligned `len`-element view of `buf`, growing it
/// (zero-filled, grow-only) as needed.
///
/// The scratch buffers are long-lived, so without this they would be stuck
/// with whatever placement the allocator happened to pick — a 16-but-not-
/// 64-byte-aligned accumulator makes a good fraction of the kernels' SIMD
/// loads straddle cache lines, which measures as a stable ~2× slowdown of
/// the accumulation loops on this workload. A fresh view is *not* zeroed;
/// callers fill the region they use.
fn aligned_view(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if buf.len() < len + 7 {
        buf.resize(len + 7, 0.0);
    }
    // For f64 data, 64-byte alignment is at most 7 elements away; `min`
    // guards align_offset's pathological usize::MAX escape hatch.
    let off = buf.as_ptr().align_offset(64).min(7);
    &mut buf[off..off + len]
}

thread_local! {
    /// Fallback scratch for entry points without a caller-provided one
    /// ([`Crossbar::mvm_into_at`] etc.) — still allocation-free once warm.
    static THREAD_SCRATCH: RefCell<MvmScratch> = RefCell::new(MvmScratch::new());
}

/// Runs `f` with this thread's fallback [`MvmScratch`].
pub(crate) fn with_thread_scratch<T>(f: impl FnOnce(&mut MvmScratch) -> T) -> T {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

// ---------------------------------------------------------------------------
// Audited normalize / clamp / quantize helpers — the one place the DAC and
// bit-serial input stages (and the ADC readout) define their rounding.
// ---------------------------------------------------------------------------

/// `max |xᵢ|` of `x` in f64 (0.0 for an empty or all-zero vector).
#[inline]
pub fn max_abs(x: &[f32]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs() as f64))
}

/// Input scale of the parallel-DAC path: max-abs, with an all-zero vector
/// scaling by `1.0` (so zeros stay exactly zero instead of dividing 0/0).
#[inline]
pub fn dac_scale(x: &[f32]) -> f64 {
    let m = max_abs(x);
    if m > 0.0 {
        m
    } else {
        1.0
    }
}

/// Input scale of the bit-serial path: max-abs floored at `1e-30` (the
/// historical epsilon of `bit_serial_core`, kept so results do not move).
#[inline]
pub fn bit_serial_scale(x: &[f32]) -> f64 {
    max_abs(x).max(1e-30)
}

/// One DAC conversion: normalize by the reciprocal scale, clip to `±clip`,
/// and round to the converter grid of `dac_levels` levels per polarity
/// (round half away from zero, as `f64::round` does).
///
/// The converter math is defined over *reciprocal multiplies*
/// (`inv_scale = 1/scale`, `inv_dac_levels = 1/dac_levels`, computed once
/// per MVM) rather than per-element division — a divide per element was a
/// measurable fraction of the whole kernel. Relative to the historical
/// division form the quantized value can move by 1 ULP of the normalized
/// input, occasionally flipping a round decision at a grid midpoint; both
/// are equally valid realizations of the ideal quantizer, and the
/// determinism contract is within-version (this version also changed the
/// read-noise sampler, see [`GaussianStream`]).
#[inline]
pub fn dac_quantize(
    v: f64,
    inv_scale: f64,
    clip: f64,
    dac_levels: f64,
    inv_dac_levels: f64,
) -> f64 {
    let v = (v * inv_scale).clamp(-clip, clip);
    (v * dac_levels).round() * inv_dac_levels
}

/// One signed-integer conversion for the bit-serial path: normalize by the
/// reciprocal scale (see [`dac_quantize`] on the reciprocal-multiply
/// definition), clip to `±1`, and round to a signed magnitude of at most
/// `levels` (round half away from zero).
#[inline]
pub fn signed_quantize(v: f64, inv_scale: f64, levels: f64) -> i64 {
    ((v * inv_scale).clamp(-1.0, 1.0) * levels).round() as i64
}

/// One ADC readout: clip the accumulated bit-line value to full-scale
/// `±fs`, round to the converter code grid, and fold the weight and
/// activation scales back in.
///
/// `to_code = adc_levels / fs` and `from_code = fs / adc_levels` are the
/// per-MVM-precomputed conversion factors (see [`dac_quantize`] on the
/// reciprocal-multiply definition).
#[inline]
pub fn adc_readout(a: f64, fs: f64, to_code: f64, from_code: f64, back_scale: f64) -> f32 {
    let q = (a.clamp(-fs, fs) * to_code).round() * from_code;
    (q * back_scale) as f32
}

// ---------------------------------------------------------------------------
// Packed row walks
// ---------------------------------------------------------------------------
//
// The weighted accumulation is defined over `f64::mul_add` — one fused,
// correctly-rounded multiply-add per (row, column). `fma` is a single IEEE
// operation, so the result is the same on every target (hardware FMA and
// the soft-float fallback agree bit for bit; the fallback is just slower —
// build with `target-cpu=native` or any `+fma` target to stay fast, see
// `.cargo/config.toml`). Relative to the historical mul-then-add the sum
// loses one intermediate rounding per row — a version-scoped numeric
// change like the reciprocal-quantize one on `dac_quantize`, shared by the
// packed kernels *and* the scalar reference, so bit-identity between them
// is unaffected. Fusing halves the FP ops of the hot loop and is what
// makes the batched kernel pay: FMA latency is hidden by DAC_BATCH
// independent accumulator chains per column panel.
//
// The accumulation loops are *column-panelled*: a fixed-width `[f64; W]`
// local array per panel of columns, which LLVM keeps entirely in vector
// registers, so each row's contribution is one broadcast-multiply-add per
// vector with no store-to-load round trip through `acc`. Panel widths step
// 32 → 16 → 8 (+ a sub-8 tail) so narrow arrays still get multiple
// independent add chains to hide FP-add latency. Per column, rows are
// always visited in ascending order — the f64 accumulation order of the
// scalar reference loops, which is what makes every path bit-identical.

/// Calls `f(r)` for every set row of `mask`, in ascending row order.
#[inline]
fn for_each_set_row(mask: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let r = (w << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            f(r);
        }
    }
}

/// One `W`-column panel of `acc[c] += xq[r] · g[r][c]` over the set rows of
/// `mask`, ascending row order.
#[inline]
fn axpy_panel_walk<const W: usize>(
    g: &[f64],
    cols: usize,
    c0: usize,
    mask: &[u64],
    xq: &[f64],
    acc: &mut [f64],
) {
    let mut a = [0.0f64; W];
    for_each_set_row(mask, |r| {
        let xr = xq[r];
        let row = &g[r * cols + c0..r * cols + c0 + W];
        for j in 0..W {
            a[j] = xr.mul_add(row[j], a[j]);
        }
    });
    for j in 0..W {
        acc[c0 + j] += a[j];
    }
}

/// One `W`-column panel of `acc[c] += xq[r] · g[r][c]` over *all* rows.
///
/// Bit-identical to the masked walk: a row the mask excludes has
/// `xq[r] == ±0.0`, its products are `±0.0`, and adding a signed zero
/// never changes an accumulator (the panel starts at `+0.0` and a
/// round-to-nearest sum can only produce `+0.0`, and `+0.0 + ±0.0 ==
/// +0.0`). Skipping the branch and the bit walk lets dense inputs run at
/// pure SIMD throughput.
#[inline]
fn axpy_panel_dense<const W: usize>(
    g: &[f64],
    cols: usize,
    c0: usize,
    rows: usize,
    xq: &[f64],
    acc: &mut [f64],
) {
    let mut a = [0.0f64; W];
    for (r, &xr) in xq.iter().enumerate().take(rows) {
        let row = &g[r * cols + c0..r * cols + c0 + W];
        for j in 0..W {
            a[j] = xr.mul_add(row[j], a[j]);
        }
    }
    for j in 0..W {
        acc[c0 + j] += a[j];
    }
}

/// Sub-8-column tail of the weighted accumulation (masked walk).
fn axpy_tail_walk(g: &[f64], cols: usize, c0: usize, mask: &[u64], xq: &[f64], acc: &mut [f64]) {
    let w = cols - c0;
    let mut a = [0.0f64; 8];
    for_each_set_row(mask, |r| {
        let xr = xq[r];
        let row = &g[r * cols + c0..r * cols + cols];
        for j in 0..w {
            a[j] = xr.mul_add(row[j], a[j]);
        }
    });
    for j in 0..w {
        acc[c0 + j] += a[j];
    }
}

/// Walk→dense switch: the branch-free full-row sweep overtakes the bit
/// walk once roughly ⅜ of rows are active (measured on the reference
/// host). Both paths are bit-identical, so this is purely a performance
/// choice.
#[inline]
fn use_dense(active: usize, rows: usize) -> bool {
    active * 8 >= rows * 3
}

/// `acc[c] += xq[r] · g[r][c]` over the set rows of `mask`, panelled, with
/// an adaptive dense/sparse row strategy. Ascending row order per column.
fn axpy_masked_rows(
    g: &[f64],
    rows: usize,
    cols: usize,
    mask: &[u64],
    xq: &[f64],
    acc: &mut [f64],
) {
    let active: u32 = mask.iter().map(|w| w.count_ones()).sum();
    let dense = use_dense(active as usize, rows);
    let mut c0 = 0;
    // A 64-column panel needs 8 accumulator vectors; only AVX-512's 32
    // registers hold them without spilling (compile-time check, so the
    // branch is dead code on other targets). One pass instead of two
    // halves the conductance-matrix traffic of wide arrays, whose working
    // set exceeds L1.
    if cfg!(target_feature = "avx512f") {
        while cols - c0 >= 64 {
            if dense {
                axpy_panel_dense::<64>(g, cols, c0, rows, xq, acc);
            } else {
                axpy_panel_walk::<64>(g, cols, c0, mask, xq, acc);
            }
            c0 += 64;
        }
    }
    while cols - c0 >= 32 {
        if dense {
            axpy_panel_dense::<32>(g, cols, c0, rows, xq, acc);
        } else {
            axpy_panel_walk::<32>(g, cols, c0, mask, xq, acc);
        }
        c0 += 32;
    }
    if cols - c0 >= 16 {
        if dense {
            axpy_panel_dense::<16>(g, cols, c0, rows, xq, acc);
        } else {
            axpy_panel_walk::<16>(g, cols, c0, mask, xq, acc);
        }
        c0 += 16;
    }
    if cols - c0 >= 8 {
        if dense {
            axpy_panel_dense::<8>(g, cols, c0, rows, xq, acc);
        } else {
            axpy_panel_walk::<8>(g, cols, c0, mask, xq, acc);
        }
        c0 += 8;
    }
    if c0 < cols {
        axpy_tail_walk(g, cols, c0, mask, xq, acc);
    }
}

/// Patches per batched parallel-DAC evaluation (see [`dac_packed_batch`]):
/// four independent accumulator chains hide FP-add latency, and each
/// conductance row loaded from L2 is used four times.
pub const DAC_BATCH: usize = 4;

/// Calls `f(r)` for every set row of `mask` with `r0 <= r < r1`, in
/// ascending row order (the row-blocked batch walk).
#[inline]
#[allow(clippy::needless_range_loop)] // w is a word *index*; rows derive from it
fn for_each_set_row_range(mask: &[u64], r0: usize, r1: usize, mut f: impl FnMut(usize)) {
    let w1 = r1.div_ceil(64);
    for w in r0 >> 6..w1 {
        let mut bits = mask[w];
        if w == r0 >> 6 {
            bits &= !0u64 << (r0 & 63);
        }
        let hi = r1 - (w << 6); // ≥ 1 because w·64 < r1
        if hi < 64 {
            bits &= !0u64 >> (64 - hi);
        }
        while bits != 0 {
            let r = (w << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            f(r);
        }
    }
}

/// One `W`-column panel of `acc[p][c] += xq[p][r] · g[r][c]` for
/// [`DAC_BATCH`] patches over the set rows of the *union* mask within the
/// row block `r0..r1`, ascending row order.
///
/// A union row that patch `p` did not select carries `xq[p][r] == ±0.0`
/// (the DAC wrote the quantized zero there), so by the signed-zero
/// argument on [`axpy_panel_dense`] its adds leave patch `p`\'s
/// accumulators bit-identical to a walk of `p`\'s own mask.
///
/// The local accumulators are **loaded from and stored back to `acc`**
/// (not summed in fresh at zero): each block strictly continues the same
/// left-fold, so row-blocking never re-associates a column\'s sum.
#[inline]
#[allow(clippy::too_many_arguments)] // flat hot-loop ABI, mirrors the tail walk
fn axpy_panel_batch_walk<const W: usize>(
    g: &[f64],
    cols: usize,
    c0: usize,
    (r0, r1): (usize, usize),
    umask: &[u64],
    xq: &[f64],
    rows: usize,
    acc: &mut [f64],
    stride: usize,
) {
    let mut a = [[0.0f64; W]; DAC_BATCH];
    for (p, ap) in a.iter_mut().enumerate() {
        ap.copy_from_slice(&acc[p * stride + c0..p * stride + c0 + W]);
    }
    for_each_set_row_range(umask, r0, r1, |r| {
        let row = &g[r * cols + c0..r * cols + c0 + W];
        for (p, ap) in a.iter_mut().enumerate() {
            let xr = xq[p * rows + r];
            for j in 0..W {
                ap[j] = xr.mul_add(row[j], ap[j]);
            }
        }
    });
    for (p, ap) in a.iter().enumerate() {
        acc[p * stride + c0..p * stride + c0 + W].copy_from_slice(ap);
    }
}

/// Dense variant of [`axpy_panel_batch_walk`]: sweeps *all* rows of the
/// block branch-free (same signed-zero argument, applied per patch).
#[inline]
#[allow(clippy::too_many_arguments)] // flat hot-loop ABI, mirrors the tail walk
fn axpy_panel_batch_dense<const W: usize>(
    g: &[f64],
    cols: usize,
    c0: usize,
    (r0, r1): (usize, usize),
    xq: &[f64],
    rows: usize,
    acc: &mut [f64],
    stride: usize,
) {
    let mut a = [[0.0f64; W]; DAC_BATCH];
    for (p, ap) in a.iter_mut().enumerate() {
        ap.copy_from_slice(&acc[p * stride + c0..p * stride + c0 + W]);
    }
    for r in r0..r1 {
        let row = &g[r * cols + c0..r * cols + c0 + W];
        for (p, ap) in a.iter_mut().enumerate() {
            let xr = xq[p * rows + r];
            for j in 0..W {
                ap[j] = xr.mul_add(row[j], ap[j]);
            }
        }
    }
    for (p, ap) in a.iter().enumerate() {
        acc[p * stride + c0..p * stride + c0 + W].copy_from_slice(ap);
    }
}

/// Sub-8-column batched tail (masked walk over the union, row-blocked).
#[allow(clippy::too_many_arguments)]
fn axpy_tail_batch_walk(
    g: &[f64],
    cols: usize,
    c0: usize,
    (r0, r1): (usize, usize),
    umask: &[u64],
    xq: &[f64],
    rows: usize,
    acc: &mut [f64],
    stride: usize,
) {
    let w = cols - c0;
    let mut a = [[0.0f64; 8]; DAC_BATCH];
    for (p, ap) in a.iter_mut().enumerate() {
        ap[..w].copy_from_slice(&acc[p * stride + c0..p * stride + cols]);
    }
    for_each_set_row_range(umask, r0, r1, |r| {
        let row = &g[r * cols + c0..r * cols + cols];
        for (p, ap) in a.iter_mut().enumerate() {
            let xr = xq[p * rows + r];
            for j in 0..w {
                ap[j] = xr.mul_add(row[j], ap[j]);
            }
        }
    });
    for (p, ap) in a.iter().enumerate() {
        acc[p * stride + c0..p * stride + cols].copy_from_slice(&ap[..w]);
    }
}

/// Rows per block of the batched accumulation: 48 rows of a 64-column
/// array are 24 KiB of conductances — resident in L1 while every column
/// panel of the block sweeps them, so wide arrays stream out of L2 once
/// per *batch* instead of once per panel.
const ROW_BLOCK: usize = 48;

/// Batched `acc[p][c] += xq[p][r] · g[r][c]`, panelled and row-blocked,
/// with the adaptive dense/sparse switch driven by the union mask\'s
/// density. Per patch and column, rows are visited in ascending order and
/// every block continues the previous block\'s fold exactly (accumulators
/// reload from `acc`) — bit-identical to [`axpy_masked_rows`] on each
/// patch alone.
fn axpy_masked_rows_batch(
    g: &[f64],
    rows: usize,
    cols: usize,
    umask: &[u64],
    xq: &[f64],
    acc: &mut [f64],
    stride: usize,
) {
    let active: u32 = umask.iter().map(|w| w.count_ones()).sum();
    let dense = use_dense(active as usize, rows);
    // Row-blocking only pays when the conductance matrix overflows L1;
    // small arrays take a single full-height block.
    let block = if rows * cols * 8 <= 40 * 1024 {
        rows
    } else {
        ROW_BLOCK
    };
    let mut r0 = 0;
    while r0 < rows {
        let rb = (r0, (r0 + block).min(rows));
        let mut c0 = 0;
        // Panels are capped at 16 columns: DAC_BATCH × 16 is already 8
        // wide accumulator vectors, and a 32-column batch panel measurably
        // spills.
        while cols - c0 >= 16 {
            if dense {
                axpy_panel_batch_dense::<16>(g, cols, c0, rb, xq, rows, acc, stride);
            } else {
                axpy_panel_batch_walk::<16>(g, cols, c0, rb, umask, xq, rows, acc, stride);
            }
            c0 += 16;
        }
        if cols - c0 >= 8 {
            if dense {
                axpy_panel_batch_dense::<8>(g, cols, c0, rb, xq, rows, acc, stride);
            } else {
                axpy_panel_batch_walk::<8>(g, cols, c0, rb, umask, xq, rows, acc, stride);
            }
            c0 += 8;
        }
        if c0 < cols {
            axpy_tail_batch_walk(g, cols, c0, rb, umask, xq, rows, acc, stride);
        }
        r0 = rb.1;
    }
}

/// One `W`-column panel of `acc[c] += g[r][c]` over the set rows of `mask`
/// (unweighted plane sum), ascending row order.
#[inline]
fn sum_panel_walk<const W: usize>(
    g: &[f64],
    cols: usize,
    c0: usize,
    mask: &[u64],
    acc: &mut [f64],
) {
    let mut a = [0.0f64; W];
    for_each_set_row(mask, |r| {
        let row = &g[r * cols + c0..r * cols + c0 + W];
        for j in 0..W {
            a[j] += row[j];
        }
    });
    for j in 0..W {
        acc[c0 + j] += a[j];
    }
}

/// `acc[c] += g[r][c]` over the set rows of `mask` (unweighted plane sum),
/// panelled, ascending row order per column. Bit-serial planes are sparse
/// by construction (each plane holds one magnitude bit of one sign), so
/// there is no dense variant: without a per-row weight, inactive rows
/// cannot be neutralized by a `·0.0`.
fn sum_masked_rows(g: &[f64], cols: usize, mask: &[u64], acc: &mut [f64]) {
    let mut c0 = 0;
    if cfg!(target_feature = "avx512f") {
        while cols - c0 >= 64 {
            sum_panel_walk::<64>(g, cols, c0, mask, acc);
            c0 += 64;
        }
    }
    while cols - c0 >= 32 {
        sum_panel_walk::<32>(g, cols, c0, mask, acc);
        c0 += 32;
    }
    if cols - c0 >= 16 {
        sum_panel_walk::<16>(g, cols, c0, mask, acc);
        c0 += 16;
    }
    if cols - c0 >= 8 {
        sum_panel_walk::<8>(g, cols, c0, mask, acc);
        c0 += 8;
    }
    if c0 < cols {
        let w = cols - c0;
        let mut a = [0.0f64; 8];
        for_each_set_row(mask, |r| {
            let row = &g[r * cols + c0..r * cols + cols];
            for j in 0..w {
                a[j] += row[j];
            }
        });
        for j in 0..w {
            acc[c0 + j] += a[j];
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel-DAC kernels
// ---------------------------------------------------------------------------

/// Packed parallel-DAC evaluation (the production hot path).
///
/// Bit-identical to [`dac_reference`]; see the module docs for why.
pub(crate) fn dac_packed(
    xb: &Crossbar,
    x: &[f32],
    out: &mut [f32],
    invocation: u64,
    scratch: &mut MvmScratch,
) {
    let rows = xb.rows_used();
    let cols = xb.cols_used();
    debug_assert_eq!(x.len(), rows);
    debug_assert_eq!(out.len(), cols);
    let cfg = xb.config();

    // --- DAC stage: quantize once, pack the nonzero-row mask ------------
    let dac_levels = ((1u64 << cfg.dac_bits) - 1) as f64 / 2.0; // per polarity
    let inv_dac_levels = 1.0 / dac_levels;
    let clip = cfg.x_clip;
    let x_scale = dac_scale(x);
    let inv_x_scale = 1.0 / x_scale;
    scratch.prepare_dac(rows);
    let MvmScratch { xq, acc, mask, .. } = scratch;
    let acc = aligned_view(acc, cols);
    acc.fill(0.0);
    // Fused quantize + mask build, one 64-element chunk per mask word so
    // the bit inserts stay branchless in a scalar register.
    for ((xc, qc), m) in x.chunks(64).zip(xq.chunks_mut(64)).zip(mask.iter_mut()) {
        // Quantize first (vectorizes cleanly), then gather the nonzero
        // bits; the serialized variable shift would otherwise keep the
        // converter loop scalar.
        for (&xi, q) in xc.iter().zip(qc.iter_mut()) {
            *q = dac_quantize(xi as f64, inv_x_scale, clip, dac_levels, inv_dac_levels);
        }
        let mut bits = 0u64;
        for (j, &q) in qc.iter().enumerate() {
            // `q != 0.0` excludes -0.0 too, matching the reference's skip.
            bits |= ((q != 0.0) as u64) << j;
        }
        *m = bits;
    }

    // --- Analog accumulation: masked row walk ----------------------------
    axpy_masked_rows(xb.g_all(), rows, cols, mask, xq, acc);

    // --- Read noise (per bit line, scales with sqrt(active rows)) --------
    if cfg.read_noise_sigma > 0.0 {
        let rng = StdRng::seed_from_u64(stream::derive(xb.noise_seed(), invocation));
        let mut gs = GaussianStream::new(rng);
        let sigma = cfg.read_noise_sigma * (rows as f64).sqrt();
        for a in acc.iter_mut() {
            *a += gs.next(sigma);
        }
    }

    // --- ADC stage --------------------------------------------------------
    let fs = cfg.adc_headroom * rows as f64 * clip;
    let adc_levels = ((1u64 << cfg.adc_bits.min(31)) - 1) as f64 / 2.0;
    let (to_code, from_code) = (adc_levels / fs, fs / adc_levels);
    let back_scale = xb.weight_scale() * x_scale;
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = adc_readout(a, fs, to_code, from_code, back_scale);
    }
}

/// Batched packed parallel-DAC evaluation: `k` patches against the same
/// array, each **bit-identical** to a [`dac_packed`] call with the same
/// patch and invocation index.
///
/// `xs` holds `k` row-vectors back to back (`k · rows_used`), `out` the
/// `k` results (`k · cols_used`); `invocations[p]` tags patch `p`'s noise
/// stream exactly as the single-patch call would.
///
/// The win over `k` single calls is arithmetic intensity: patches are
/// grouped [`DAC_BATCH`] at a time and accumulated in lock-step over the
/// union of their row masks, so every conductance row fetched from cache
/// feeds four independent FP-add chains (hiding add latency, and cutting
/// the `g` traffic of L2-resident arrays fourfold). Quantization, read
/// noise, and ADC readout stay strictly per patch — per-patch input
/// scales, per-patch counter-derived noise streams in column order —
/// which is what keeps the batch a pure reassociation-free regrouping of
/// the single-patch kernels. A `k % DAC_BATCH` remainder falls back to
/// [`dac_packed`] per patch.
pub(crate) fn dac_packed_batch(
    xb: &Crossbar,
    xs: &[f32],
    out: &mut [f32],
    invocations: &[u64],
    scratch: &mut MvmScratch,
) {
    let rows = xb.rows_used();
    let cols = xb.cols_used();
    let k = invocations.len();
    debug_assert_eq!(xs.len(), k * rows);
    debug_assert_eq!(out.len(), k * cols);
    let cfg = xb.config();

    let dac_levels = ((1u64 << cfg.dac_bits) - 1) as f64 / 2.0; // per polarity
    let inv_dac_levels = 1.0 / dac_levels;
    let clip = cfg.x_clip;
    let words = rows.div_ceil(64);
    let stride = cols.next_multiple_of(8);

    let quads = k / DAC_BATCH * DAC_BATCH;
    let mut q0 = 0;
    while q0 < quads {
        scratch.prepare_dac_batch(rows);
        let MvmScratch {
            xq,
            acc,
            mask,
            umask,
            ..
        } = scratch;
        let acc = aligned_view(acc, DAC_BATCH * stride);
        acc.fill(0.0);

        // --- DAC stage, per patch (same helpers, same element order) ----
        let mut x_scales = [0.0f64; DAC_BATCH];
        for p in 0..DAC_BATCH {
            let x = &xs[(q0 + p) * rows..(q0 + p + 1) * rows];
            let x_scale = dac_scale(x);
            x_scales[p] = x_scale;
            let inv_x_scale = 1.0 / x_scale;
            let xq = &mut xq[p * rows..(p + 1) * rows];
            let mask = &mut mask[p * words..(p + 1) * words];
            for ((xc, qc), m) in x.chunks(64).zip(xq.chunks_mut(64)).zip(mask.iter_mut()) {
                // Quantize first (vectorizes cleanly), then gather the
                // nonzero bits; the serialized variable shift would
                // otherwise keep the converter loop scalar.
                for (&xi, q) in xc.iter().zip(qc.iter_mut()) {
                    *q = dac_quantize(xi as f64, inv_x_scale, clip, dac_levels, inv_dac_levels);
                }
                let mut bits = 0u64;
                for (j, &q) in qc.iter().enumerate() {
                    // `q != 0.0` excludes -0.0 too, matching the reference's skip.
                    bits |= ((q != 0.0) as u64) << j;
                }
                *m = bits;
            }
        }
        for (w, u) in umask.iter_mut().enumerate() {
            *u = (0..DAC_BATCH).fold(0u64, |acc, p| acc | mask[p * words + w]);
        }

        // --- Lock-step accumulation over the union mask ------------------
        axpy_masked_rows_batch(xb.g_all(), rows, cols, umask, xq, acc, stride);

        // --- Read noise + ADC, strictly per patch ------------------------
        let fs = cfg.adc_headroom * rows as f64 * clip;
        let adc_levels = ((1u64 << cfg.adc_bits.min(31)) - 1) as f64 / 2.0;
        let (to_code, from_code) = (adc_levels / fs, fs / adc_levels);
        for p in 0..DAC_BATCH {
            let acc = &mut acc[p * stride..p * stride + cols];
            if cfg.read_noise_sigma > 0.0 {
                let seed = stream::derive(xb.noise_seed(), invocations[q0 + p]);
                let mut gs = GaussianStream::new(StdRng::seed_from_u64(seed));
                let sigma = cfg.read_noise_sigma * (rows as f64).sqrt();
                for a in acc.iter_mut() {
                    *a += gs.next(sigma);
                }
            }
            let back_scale = xb.weight_scale() * x_scales[p];
            let out = &mut out[(q0 + p) * cols..(q0 + p + 1) * cols];
            for (o, &a) in out.iter_mut().zip(acc.iter()) {
                *o = adc_readout(a, fs, to_code, from_code, back_scale);
            }
        }
        q0 += DAC_BATCH;
    }

    for p in quads..k {
        dac_packed(
            xb,
            &xs[p * rows..(p + 1) * rows],
            &mut out[p * cols..(p + 1) * cols],
            invocations[p],
            scratch,
        );
    }
}

/// Scalar reference for the parallel-DAC chain — the pre-packing row loop,
/// kept as the equivalence oracle for proptests and the `mvm_kernels`
/// bench. Allocates per call (that is part of what it measures).
pub(crate) fn dac_reference(xb: &Crossbar, x: &[f32], out: &mut [f32], invocation: u64) {
    let rows = xb.rows_used();
    let cols = xb.cols_used();
    let cfg = xb.config();

    let dac_levels = ((1u64 << cfg.dac_bits) - 1) as f64 / 2.0;
    let inv_dac_levels = 1.0 / dac_levels;
    let clip = cfg.x_clip;
    let x_scale = dac_scale(x);
    let inv_x_scale = 1.0 / x_scale;
    let mut xq = Vec::with_capacity(x.len());
    for &xi in x {
        xq.push(dac_quantize(
            xi as f64,
            inv_x_scale,
            clip,
            dac_levels,
            inv_dac_levels,
        ));
    }

    let mut acc = vec![0.0f64; cols];
    for (r, &xr) in xq.iter().enumerate() {
        if xr == 0.0 {
            continue;
        }
        let row = &xb.g_all()[r * cols..(r + 1) * cols];
        for (c, &g) in row.iter().enumerate() {
            acc[c] = xr.mul_add(g, acc[c]);
        }
    }

    if cfg.read_noise_sigma > 0.0 {
        let rng = StdRng::seed_from_u64(stream::derive(xb.noise_seed(), invocation));
        let mut gs = GaussianStream::new(rng);
        let sigma = cfg.read_noise_sigma * (rows as f64).sqrt();
        for a in acc.iter_mut() {
            *a += gs.next(sigma);
        }
    }

    let fs = cfg.adc_headroom * rows as f64 * clip;
    let adc_levels = ((1u64 << cfg.adc_bits.min(31)) - 1) as f64 / 2.0;
    let (to_code, from_code) = (adc_levels / fs, fs / adc_levels);
    let back_scale = xb.weight_scale() * x_scale;
    for (c, &a) in acc.iter().enumerate() {
        out[c] = adc_readout(a, fs, to_code, from_code, back_scale);
    }
}

// ---------------------------------------------------------------------------
// Bit-serial kernels
// ---------------------------------------------------------------------------

/// Packed bit-serial evaluation (the production hot path).
///
/// Bit-identical to [`bit_serial_reference`]; see the module docs for why
/// mask packing, popcount silence checks, and plane-sum reuse preserve
/// every bit.
pub(crate) fn bit_serial_packed(
    xb: &Crossbar,
    x: &[f32],
    n_bits: u32,
    out: &mut [f32],
    invocation: u64,
    scratch: &mut MvmScratch,
) {
    let rows = xb.rows_used();
    let cols = xb.cols_used();
    debug_assert_eq!(x.len(), rows);
    debug_assert_eq!(out.len(), cols);
    let cfg = xb.config();

    // --- Quantize once, scatter magnitude bits into plane masks ----------
    let x_scale = bit_serial_scale(x);
    let inv_x_scale = 1.0 / x_scale;
    let levels = (1i64 << (n_bits - 1)) - 1;
    let levels_f = levels as f64;
    let nb1 = (n_bits - 1) as usize;
    let n_planes = 2 * nb1;
    let words = rows.div_ceil(64);
    scratch.prepare_bit_serial(rows, n_planes, words);
    let MvmScratch {
        qint,
        acc,
        plane_masks,
        plane_sums,
        eval_ids,
        ..
    } = scratch;
    let acc = aligned_view(acc, cols);
    acc.fill(0.0);
    // Cache-line-aligned plane-sum slots: stride rounds cols up so every
    // plane's slot starts on a 64-byte boundary.
    let stride = cols.next_multiple_of(8);
    let plane_sums = aligned_view(plane_sums, n_planes * stride);
    for (r, &v) in x.iter().enumerate() {
        let q = signed_quantize(v as f64, inv_x_scale, levels_f);
        qint.push(q);
        let (mag, pi) = if q >= 0 {
            (q as u64, 0)
        } else {
            (-q as u64, 1)
        };
        let (word, bit) = (r >> 6, 1u64 << (r & 63));
        let mut m = mag; // |q| ≤ levels < 2^(n_bits-1): every set bit has a plane
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            plane_masks[(b * 2 + pi) * words + word] |= bit;
        }
    }

    // --- Shift-accumulate planes, noise in (bit, phase, column) order ----
    let rng = StdRng::seed_from_u64(stream::derive(xb.noise_seed(), invocation));
    let mut gs = GaussianStream::new(rng);
    let sigma = cfg.read_noise_sigma * (rows as f64).sqrt();
    let g = xb.g_all();
    for b in 0..nb1 {
        let weight = (1i64 << b) as f64;
        for (pi, phase) in [(0usize, 1.0f64), (1, -1.0)] {
            let p = b * 2 + pi;
            // Silent-plane scan over packed words (no pulse, no noise).
            if plane_masks[p * words..(p + 1) * words]
                .iter()
                .all(|&w| w == 0)
            {
                continue;
            }
            // Mask-sharing reuse: identical row mask ⇒ identical rows in
            // identical ascending order ⇒ bit-identical noiseless sum.
            let src = eval_ids
                .iter()
                .copied()
                .find(|&e| {
                    plane_masks[e * words..(e + 1) * words]
                        == plane_masks[p * words..(p + 1) * words]
                })
                .unwrap_or_else(|| {
                    let sums = &mut plane_sums[p * stride..p * stride + cols];
                    sums.fill(0.0);
                    sum_masked_rows(g, cols, &plane_masks[p * words..(p + 1) * words], sums);
                    eval_ids.push(p);
                    p
                });
            // Noise is drawn per plane even when the sum is reused.
            let sums = &plane_sums[src * stride..src * stride + cols];
            for (a, &pv) in acc.iter_mut().zip(sums) {
                let noisy = pv + gs.next(sigma);
                *a += phase * weight * noisy;
            }
        }
    }

    // Fold scales back: weights (w_scale) × activations (x_scale/levels).
    let back = xb.weight_scale() * x_scale / levels as f64;
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = (a * back) as f32;
    }
}

/// Scalar reference for the bit-serial chain — the pre-packing per-plane
/// predicate loop, kept as the equivalence oracle.
pub(crate) fn bit_serial_reference(
    xb: &Crossbar,
    x: &[f32],
    n_bits: u32,
    invocation: u64,
) -> Vec<f32> {
    let cols = xb.cols_used();
    let rows = xb.rows_used();
    let cfg = xb.config();

    let x_scale = bit_serial_scale(x);
    let inv_x_scale = 1.0 / x_scale;
    let levels = (1i64 << (n_bits - 1)) - 1;
    let xq: Vec<i64> = x
        .iter()
        .map(|&v| signed_quantize(v as f64, inv_x_scale, levels as f64))
        .collect();

    let rng = StdRng::seed_from_u64(stream::derive(xb.noise_seed(), invocation));
    let mut gs = GaussianStream::new(rng);
    let mut acc = vec![0.0f64; cols];
    let sigma = cfg.read_noise_sigma * (rows as f64).sqrt();
    for bit in 0..(n_bits - 1) {
        let weight = (1i64 << bit) as f64;
        for phase in [1i64, -1] {
            // Skip silent planes entirely (no pulse, no noise).
            let any = xq
                .iter()
                .any(|&q| q.signum() == phase && (q.abs() >> bit) & 1 == 1);
            if !any {
                continue;
            }
            let mut plane = vec![0.0f64; cols];
            for (r, &q) in xq.iter().enumerate() {
                if q.signum() == phase && (q.abs() >> bit) & 1 == 1 {
                    let row = &xb.g_all()[r * cols..(r + 1) * cols];
                    for (c, g) in row.iter().enumerate() {
                        plane[c] += g;
                    }
                }
            }
            for (c, p) in plane.iter().enumerate() {
                let noisy = p + gs.next(sigma);
                acc[c] += phase as f64 * weight * noisy;
            }
        }
    }

    let back = xb.weight_scale() * x_scale / levels as f64;
    acc.iter().map(|&a| (a * back) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- rounding pins for the audited quantize helpers ------------------

    #[test]
    fn dac_quantize_rounds_half_away_from_zero() {
        // 2-bit DAC: 1.5 levels per polarity. 1/3 · 1.5 = 0.5 exactly.
        let l = 1.5;
        let inv = 1.0 / l;
        assert_eq!(dac_quantize(1.0 / 3.0, 1.0, 1.0, l, inv), inv);
        assert_eq!(dac_quantize(-1.0 / 3.0, 1.0, 1.0, l, inv), -inv);
        // 1.0·1.5 = 1.5 rounds *away from zero* to 2 — the fractional
        // per-polarity grid overshoots ±1 at the extremes (historical
        // behavior, pinned here).
        assert_eq!(dac_quantize(1.0, 1.0, 1.0, l, inv), 2.0 * inv);
        assert_eq!(dac_quantize(-1.0, 1.0, 1.0, l, inv), -2.0 * inv);
    }

    #[test]
    fn dac_quantize_clips_before_rounding() {
        let l = 127.5;
        let inv = 1.0 / l;
        // Clamp to ±1, then 127.5 rounds to 128: top code is 128·(1/127.5).
        assert_eq!(dac_quantize(5.0, 1.0, 1.0, l, inv), 128.0 * inv);
        assert_eq!(dac_quantize(-5.0, 1.0, 1.0, l, inv), -128.0 * inv);
        // Tighter analog clip applies after normalization.
        assert_eq!(dac_quantize(1.0, 1.0, 0.5, l, inv), 64.0 * inv);
    }

    #[test]
    fn signed_quantize_rounds_half_away_from_zero_and_saturates() {
        assert_eq!(signed_quantize(0.5, 1.0, 127.0), 64); // 63.5 → 64
        assert_eq!(signed_quantize(-0.5, 1.0, 127.0), -64);
        assert_eq!(signed_quantize(2.0, 1.0, 127.0), 127); // clipped
        assert_eq!(signed_quantize(-2.0, 1.0, 127.0), -127);
        assert_eq!(signed_quantize(0.0, 1.0, 127.0), 0);
    }

    #[test]
    fn scales_handle_zero_vectors() {
        assert_eq!(dac_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(dac_scale(&[]), 1.0);
        assert_eq!(bit_serial_scale(&[0.0]), 1e-30);
        assert_eq!(dac_scale(&[-0.5, 0.25]), 0.5);
        assert_eq!(bit_serial_scale(&[-0.5, 0.25]), 0.5);
    }

    #[test]
    fn adc_readout_clips_and_quantizes() {
        // fs 2.0, 1.5 levels, unit back-scale.
        let (fs, levels) = (2.0, 1.5);
        let (to, from) = (levels / fs, fs / levels);
        // Full-scale input clips to fs, then code 1.5 rounds away from
        // zero to 2: top readout is 2·(fs/levels).
        assert_eq!(adc_readout(10.0, fs, to, from, 1.0), (2.0 * from) as f32);
        assert_eq!(adc_readout(-10.0, fs, to, from, 1.0), (-2.0 * from) as f32);
        // 0.5·(1.5/2.0) = 0.375 → code 0 → 0.0
        assert_eq!(adc_readout(0.5, fs, to, from, 1.0), 0.0);
        // 1.0·(1.5/2.0) = 0.75 → code 1 → 2/1.5 = 4/3
        assert!((adc_readout(1.0, fs, to, from, 1.0) - 4.0 / 3.0).abs() < 1e-7);
    }

    // -- packed row walk ---------------------------------------------------

    #[test]
    fn set_row_walk_is_ascending_and_complete() {
        let mask = [0b1010_0001u64, 0, 1 << 63, 0b11];
        let mut seen = Vec::new();
        for_each_set_row(&mask, |r| seen.push(r));
        assert_eq!(seen, vec![0, 5, 7, 191, 192, 193]);
        let sorted = {
            let mut s = seen.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seen, sorted, "walk must be ascending");
    }

    #[test]
    fn panelled_axpy_matches_flat_loop_across_panel_widths() {
        // 61 = 32 + 16 + 8 + 5 exercises every panel width plus the tail.
        let rows = 5;
        let cols = 61;
        let g: Vec<f64> = (0..rows * cols).map(|i| (i as f64).sin()).collect();
        // Kernel invariant: a masked-out row carries xq == 0.0.
        let mut xq: Vec<f64> = (0..rows).map(|r| r as f64 - 1.5).collect();
        xq[3] = 0.0;
        let mask = [0b10111u64];
        let mut packed = vec![0.0; cols];
        axpy_masked_rows(&g, rows, cols, &mask, &xq, &mut packed);
        let mut flat = vec![0.0; cols];
        for r in [0usize, 1, 2, 4] {
            for c in 0..cols {
                flat[c] = xq[r].mul_add(g[r * cols + c], flat[c]);
            }
        }
        assert_eq!(packed, flat);
    }

    #[test]
    fn batched_dac_is_bit_identical_to_single_calls() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cfg = crate::XbarConfig::hermes_256();
        let mut rng = StdRng::seed_from_u64(2024);
        let (rows, cols) = (70, 21); // straddles a mask word, odd tail
        let w: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xb = Crossbar::program(&cfg, &w, rows, cols, &mut rng).unwrap();
        // 6 patches = one quad + a 2-patch remainder; patch 2 all-zero,
        // patch 3 dense (exercises the union dense switch).
        let k = 6;
        let mut xs = vec![0.0f32; k * rows];
        for (p, patch) in xs.chunks_mut(rows).enumerate() {
            if p == 2 {
                continue;
            }
            for v in patch.iter_mut() {
                let r: f32 = rng.gen_range(-1.0..1.0);
                *v = if p != 3 && r < 0.0 { 0.0 } else { r };
            }
        }
        let invocations: Vec<u64> = (0..k as u64).map(|p| 91 + 13 * p).collect();
        let mut batch = vec![0.0f32; k * cols];
        let mut scratch = MvmScratch::new();
        xb.mvm_batch_into_with(&xs, &mut batch, &invocations, &mut scratch)
            .unwrap();
        for p in 0..k {
            let mut single = vec![0.0f32; cols];
            xb.mvm_into_with(
                &xs[p * rows..(p + 1) * rows],
                &mut single,
                invocations[p],
                &mut scratch,
            )
            .unwrap();
            for (a, b) in single.iter().zip(&batch[p * cols..(p + 1) * cols]) {
                assert_eq!(a.to_bits(), b.to_bits(), "patch {p}");
            }
        }
    }

    #[test]
    fn dense_and_walk_axpy_are_bit_identical() {
        // Straddle the density threshold from both sides by calling the
        // panel kernels directly: a masked-out row carries xq == 0.0, so
        // the dense sweep must reproduce the walk bit for bit.
        let rows = 70; // > one mask word
        let cols = 48; // 32 + 16
        let g: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 2654435761usize % 1000) as f64 - 500.0) / 250.0)
            .collect();
        let mut xq = vec![0.0f64; rows];
        let mut mask = [0u64; 2];
        for r in (0..rows).step_by(3) {
            xq[r] = (r as f64 - 30.0) / 7.0;
            if xq[r] != 0.0 {
                mask[r / 64] |= 1 << (r % 64);
            }
        }
        let mut walk = vec![0.0; cols];
        axpy_panel_walk::<32>(&g, cols, 0, &mask, &xq, &mut walk);
        axpy_panel_walk::<16>(&g, cols, 32, &mask, &xq, &mut walk);
        let mut dense = vec![0.0; cols];
        axpy_panel_dense::<32>(&g, cols, 0, rows, &xq, &mut dense);
        axpy_panel_dense::<16>(&g, cols, 32, rows, &xq, &mut dense);
        for (a, b) in walk.iter().zip(&dense) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
