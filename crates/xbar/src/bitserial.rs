//! Bit-serial input evaluation (ISAAC/PUMA style).
//!
//! Instead of converting each activation once through a multi-bit DAC, the
//! input vector is applied one *bit plane* at a time: `n_bits` binary
//! word-line pulses, each producing a partial bit-line sum that is ADC-read
//! and shift-accumulated digitally. The paper's platform uses the parallel
//! 8-bit-DAC scheme of HERMES (Table I), but its related work (ISAAC,
//! Shafiee et al.; PUMA, Ankit et al.) is bit-serial — this module lets the
//! benches compare the two regimes on identical arrays:
//!
//! * per-MVM latency multiplies by the bit count;
//! * DAC nonlinearity disappears (pulses are binary);
//! * read noise is drawn once per bit plane and accumulates through the
//!   shift-add, weighted by each plane's significance.

use crate::crossbar::{Crossbar, XbarError};
use crate::kernel::{self, MvmScratch};

impl Crossbar {
    /// Evaluates `y = Wᵀx` bit-serially with `n_bits` input bit planes.
    ///
    /// The input is normalized to the vector's max-abs (like the parallel
    /// path), quantized to a *signed* `n_bits`-bit integer, and applied as
    /// binary pulses from MSB-1 planes down; negative values use two-phase
    /// (subtractive) evaluation, as memristive designs do.
    ///
    /// Read noise follows the same per-call stream model as
    /// [`Crossbar::mvm`]: this convenience draws the next internal
    /// invocation index (one bit-serial evaluation counts as one MVM for
    /// accounting); [`Crossbar::mvm_bit_serial_at`] takes the index
    /// explicitly for order-independent parallel execution.
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] on dimension mismatch, or
    /// [`XbarError::BadConfig`] if `n_bits` is not in `1..=16`.
    pub fn mvm_bit_serial(&self, x: &[f32], n_bits: u32) -> Result<Vec<f32>, XbarError> {
        // Validate before claiming an invocation: rejected calls must not
        // count as evaluations nor shift later calls' noise streams.
        self.check_bit_serial_args(x, n_bits)?;
        let invocation = self.next_invocation();
        Ok(self.bit_serial_core(x, n_bits, invocation))
    }

    /// [`Crossbar::mvm_bit_serial`] with a caller-chosen invocation index
    /// selecting the read-noise stream.
    ///
    /// # Errors
    /// Same conditions as [`Crossbar::mvm_bit_serial`].
    pub fn mvm_bit_serial_at(
        &self,
        x: &[f32],
        n_bits: u32,
        invocation: u64,
    ) -> Result<Vec<f32>, XbarError> {
        self.check_bit_serial_args(x, n_bits)?;
        self.next_invocation();
        Ok(self.bit_serial_core(x, n_bits, invocation))
    }

    fn check_bit_serial_args(&self, x: &[f32], n_bits: u32) -> Result<(), XbarError> {
        if !(1..=16).contains(&n_bits) {
            return Err(XbarError::BadConfig(format!(
                "bit-serial input bits {n_bits} out of range 1..=16"
            )));
        }
        if x.len() != self.rows_used() {
            return Err(XbarError::InputLength {
                got: x.len(),
                expected: self.rows_used(),
            });
        }
        Ok(())
    }

    /// Pre-validated bit-serial evaluation through the packed kernel with
    /// this thread's fallback scratch (see [`crate::kernel`]).
    fn bit_serial_core(&self, x: &[f32], n_bits: u32, invocation: u64) -> Vec<f32> {
        let mut y = vec![0.0f32; self.cols_used()];
        kernel::with_thread_scratch(|s| {
            kernel::bit_serial_packed(self, x, n_bits, &mut y, invocation, s)
        });
        y
    }

    /// Like [`Crossbar::mvm_bit_serial_at`] but writing into a caller
    /// buffer and reusing a caller-owned [`MvmScratch`] — the
    /// zero-allocation bit-serial hot path.
    ///
    /// Results are bit-identical to the other bit-serial entry points for
    /// the same invocation index.
    ///
    /// # Errors
    /// Same conditions as [`Crossbar::mvm_bit_serial`], plus
    /// [`XbarError::InputLength`] if `out` is not `cols_used` long.
    pub fn mvm_bit_serial_into_with(
        &self,
        x: &[f32],
        n_bits: u32,
        out: &mut [f32],
        invocation: u64,
        scratch: &mut MvmScratch,
    ) -> Result<(), XbarError> {
        self.check_bit_serial_args(x, n_bits)?;
        if out.len() != self.cols_used() {
            return Err(XbarError::InputLength {
                got: out.len(),
                expected: self.cols_used(),
            });
        }
        self.next_invocation();
        kernel::bit_serial_packed(self, x, n_bits, out, invocation, scratch);
        Ok(())
    }

    /// Scalar reference bit-serial evaluation at an explicit invocation
    /// index — the pre-packing per-plane predicate loop kept as the
    /// equivalence oracle for the `kernel_equivalence` proptests and the
    /// `mvm_kernels` bench.
    ///
    /// Returns results bit-identical to [`Crossbar::mvm_bit_serial_at`]
    /// for the same `invocation`; it is slower and allocates per plane.
    ///
    /// # Errors
    /// Same conditions as [`Crossbar::mvm_bit_serial`].
    pub fn mvm_bit_serial_reference_at(
        &self,
        x: &[f32],
        n_bits: u32,
        invocation: u64,
    ) -> Result<Vec<f32>, XbarError> {
        self.check_bit_serial_args(x, n_bits)?;
        self.next_invocation();
        Ok(kernel::bit_serial_reference(self, x, n_bits, invocation))
    }

    /// Latency of a bit-serial MVM: one array evaluation per bit plane (two
    /// phases share a plane's evaluation slot in pipelined designs).
    pub fn bit_serial_latency_ns(&self, n_bits: u32) -> f64 {
        self.config().mvm_latency_ns / 8.0 * n_bits.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XbarConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn ref_mvm(w: &[f32], rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                y[c] += w[r * cols + c] * x[r];
            }
        }
        y
    }

    #[test]
    fn bit_serial_matches_reference_on_ideal_array() {
        let mut rng = rng();
        let rows = 24;
        let cols = 6;
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 31 % 97) as f32 - 48.0) / 48.0)
            .collect();
        let x: Vec<f32> = (0..rows)
            .map(|i| ((i * 7 % 15) as f32 - 7.0) / 7.0)
            .collect();
        let xb =
            Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let y = xb.mvm_bit_serial(&x, 12).unwrap();
        let yref = ref_mvm(&w, rows, cols, &x);
        for (a, b) in y.iter().zip(&yref) {
            // 11 magnitude bits over sums of 24 terms.
            assert!(
                (a - b).abs() < 0.02 * rows as f32 / 24.0 + 0.02,
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn bit_serial_agrees_with_parallel_path() {
        let mut rng = rng();
        let rows = 16;
        let cols = 4;
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i % 9) as f32 - 4.0) / 4.0)
            .collect();
        let x: Vec<f32> = (0..rows).map(|i| ((i % 5) as f32 - 2.0) / 2.0).collect();
        let xb =
            Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let par = xb.mvm(&x).unwrap();
        let ser = xb.mvm_bit_serial(&x, 16).unwrap();
        for (a, b) in par.iter().zip(&ser) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn read_noise_propagates_through_planes() {
        // Per-plane read noise reaches the output through the shift-add, but
        // each plane's contribution is scaled by its significance over the
        // quantization levels, so the net noise is *comparable* to the
        // single-evaluation parallel path (dominated by the MSB planes),
        // not n_bits times larger.
        let mut cfg = XbarConfig::ideal(32, 2);
        cfg.read_noise_sigma = 0.02;
        let mut rng = rng();
        let w = vec![0.3f32; 64];
        let x: Vec<f32> = (0..32).map(|i| (i as f32 % 7.0) / 7.0).collect();
        let xb = Crossbar::program(&cfg, &w, 32, 2, &mut rng).unwrap();
        // Each evaluation draws a fresh invocation stream, so variance
        // across repeated calls measures the read-noise magnitude.
        let spread = |f: &mut dyn FnMut() -> f32| {
            let vals: Vec<f32> = (0..60).map(|_| f()).collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32
        };
        let var_par = spread(&mut || xb.mvm(&x).unwrap()[0]);
        let var_ser = spread(&mut || xb.mvm_bit_serial(&x, 8).unwrap()[0]);
        assert!(var_ser > 0.0, "bit-serial output must be noisy");
        assert!(var_par > 0.0, "parallel output must be noisy");
        let ratio = var_ser / var_par;
        assert!(
            (0.05..20.0).contains(&ratio),
            "noise regimes should be comparable: ratio {ratio}"
        );
    }

    #[test]
    fn latency_scales_with_bits() {
        let mut rng = rng();
        let xb = Crossbar::program(&XbarConfig::hermes_256(), &[0.1; 16], 4, 4, &mut rng).unwrap();
        let l8 = xb.bit_serial_latency_ns(8);
        let l16 = xb.bit_serial_latency_ns(16);
        assert!((l8 - 130.0).abs() < 1e-9, "8-bit serial ≈ parallel: {l8}");
        assert!((l16 - 260.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_bit_counts_and_lengths() {
        let mut rng = rng();
        let xb = Crossbar::program(&XbarConfig::ideal(4, 4), &[0.1; 16], 4, 4, &mut rng).unwrap();
        assert!(matches!(
            xb.mvm_bit_serial(&[0.0; 4], 0),
            Err(XbarError::BadConfig(_))
        ));
        assert!(matches!(
            xb.mvm_bit_serial(&[0.0; 4], 17),
            Err(XbarError::BadConfig(_))
        ));
        assert!(matches!(
            xb.mvm_bit_serial(&[0.0; 3], 8),
            Err(XbarError::InputLength { .. })
        ));
    }

    #[test]
    fn zero_input_is_silent() {
        let mut cfg = XbarConfig::ideal(8, 2);
        cfg.read_noise_sigma = 0.1; // would be loud if planes fired
        let mut rng = rng();
        let xb = Crossbar::program(&cfg, &[0.5; 16], 8, 2, &mut rng).unwrap();
        let y = xb.mvm_bit_serial(&[0.0; 8], 8).unwrap();
        assert!(y.iter().all(|&v| v == 0.0), "{y:?}");
    }
}
