//! Counter-based RNG stream derivation for deterministic parallel noise.
//!
//! The crossbar models need randomness in two places — programming noise
//! (once, at deployment) and read noise (every MVM). Threading one shared
//! `&mut StdRng` through both makes every sample depend on global call
//! order, which serializes the whole simulator: two tiles cannot evaluate
//! concurrently without changing the numbers.
//!
//! This module replaces the shared stream with *derived* streams, in the
//! spirit of counter-based RNGs (Salmon et al., "Parallel random numbers:
//! as easy as 1, 2, 3"): every independent sampling site gets its own seed,
//! computed as a hash of where it sits in the deployment —
//!
//! ```text
//! tile stream  = stream_seed(root_seed, layer_id, tile_index)
//! call stream  = derive(tile_stream, invocation)
//! ```
//!
//! — and a fresh `StdRng` is seeded from that hash at each sampling site.
//! Two properties follow:
//!
//! 1. **Order independence.** A tile's noise depends only on `(root seed,
//!    layer, tile, invocation)`, never on what other tiles or threads did
//!    first. Serial and N-thread execution are bit-identical.
//! 2. **Statistical independence.** Seeds are decorrelated by SplitMix64
//!    (an avalanche-complete finalizer), so neighbouring `(layer, tile,
//!    invocation)` triples yield unrelated streams.
//!
//! The hash is **stable**: it is part of the reproducibility contract (a
//! stored seed must replay the same noise forever), so it must not change
//! across versions.
//!
//! Invocation tags are full-width `u64`s with no internal structure
//! assumed: the executors pass `image_index · patches_per_layer + patch`,
//! where `image_index` is a *global stream coordinate* assigned by the
//! serving layer. A long-lived server can push that product far beyond
//! 2^40 — [`derive`] is a bijective mix composed with XOR, so distinct
//! tags can only collide through the XOR of two finalized values, which
//! the neighbourhood audits in `tests/proptests.rs` check at
//! serving-scale bases.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit value
/// (Steele et al., the seed expander `rand` itself uses in
/// `seed_from_u64`).
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a child stream seed from a parent seed and a tag (layer id,
/// tile index, invocation counter, …). Chainable:
/// `derive(derive(root, layer), tile)`.
#[inline]
pub fn derive(seed: u64, tag: u64) -> u64 {
    // Mix the tag through the finalizer before combining so that small
    // consecutive tags (0, 1, 2, …) land far apart, then finalize again.
    splitmix64(seed ^ splitmix64(tag))
}

/// The per-tile stream seed for tile `tile` of layer `layer` under the
/// deployment root seed — the `(seed, layer, tile)` coordinate of the
/// determinism contract.
#[inline]
pub fn stream_seed(root: u64, layer: u64, tile: u64) -> u64 {
    derive(derive(root, layer), tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(stream_seed(42, 3, 7), stream_seed(42, 3, 7));
        assert_eq!(derive(1, 2), derive(1, 2));
    }

    #[test]
    fn coordinates_are_decorrelated() {
        // All coordinates in a small neighbourhood must give distinct seeds.
        let mut seen = HashSet::new();
        for root in 0..4u64 {
            for layer in 0..8u64 {
                for tile in 0..16u64 {
                    assert!(seen.insert(stream_seed(root, layer, tile)));
                }
            }
        }
    }

    #[test]
    fn derive_separates_consecutive_invocations() {
        let s = stream_seed(7, 0, 0);
        let a = derive(s, 0);
        let b = derive(s, 1);
        assert_ne!(a, b);
        // Avalanche: roughly half the bits flip between consecutive calls.
        let flips = (a ^ b).count_ones();
        assert!((8..=56).contains(&flips), "{flips} bits flipped");
    }

    #[test]
    fn layer_and_tile_axes_are_not_interchangeable() {
        assert_ne!(stream_seed(1, 2, 3), stream_seed(1, 3, 2));
    }

    #[test]
    fn splitmix_is_the_published_sequence() {
        // First outputs of SplitMix64 from seed 0 (cross-checked against the
        // reference implementation) — guards the stability contract.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }
}
