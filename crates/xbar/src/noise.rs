//! Minimal Gaussian sampling (Box–Muller), so the device models need only the
//! base `rand` crate from the offline allowlist.

use rand::Rng;

/// Draws one sample from `N(0, sigma²)` using the Box–Muller transform.
///
/// Returns exactly `0.0` when `sigma == 0`, so noiseless configurations are
/// bit-exact and consume no randomness.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = aimc_xbar::noise::gaussian(&mut rng, 1.0);
/// assert!(x.is_finite());
/// assert_eq!(aimc_xbar::noise::gaussian(&mut rng, 0.0), 0.0);
/// ```
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 0.0;
    }
    // u1 ∈ (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    sigma * mag * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_exactly_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut rng, 0.0), 0.0);
        }
    }

    #[test]
    fn moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let sigma = 2.5;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = gaussian(&mut rng, sigma);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(gaussian(&mut rng, 10.0).is_finite());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..16).map(|_| gaussian(&mut r, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..16).map(|_| gaussian(&mut r, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
