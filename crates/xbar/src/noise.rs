//! Minimal Gaussian sampling (Box–Muller), so the device models need only the
//! base `rand` crate from the offline allowlist.

use rand::Rng;

/// Draws one sample from `N(0, sigma²)` using the Box–Muller transform.
///
/// Returns exactly `0.0` when `sigma == 0`, so noiseless configurations are
/// bit-exact and consume no randomness.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = aimc_xbar::noise::gaussian(&mut rng, 1.0);
/// assert!(x.is_finite());
/// assert_eq!(aimc_xbar::noise::gaussian(&mut rng, 0.0), 0.0);
/// ```
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 0.0;
    }
    // u1 ∈ (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    let mag = (-2.0 * u1.ln()).sqrt();
    sigma * mag * (std::f64::consts::TAU * u2).cos()
}

/// Layer count of the ziggurat tables (one u8 of the raw draw).
const ZIG_LAYERS: usize = 256;
/// Tail boundary `R` of the 256-layer Gaussian ziggurat.
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Per-layer area `V` of the 256-layer Gaussian ziggurat.
const ZIG_V: f64 = 0.004_928_673_233_974_655;
/// Mantissa scale: layer offsets use 53 uniform bits.
const ZIG_M: f64 = 9_007_199_254_740_992.0; // 2^53

/// Precomputed ziggurat tables (Marsaglia & Tsang, 256 layers).
#[derive(Debug)]
struct ZigTables {
    /// Acceptance thresholds: `j < kn[i]` lies inside layer `i`'s rectangle.
    kn: [u64; ZIG_LAYERS],
    /// Layer scale: `x = j · wn[i]`.
    wn: [f64; ZIG_LAYERS],
    /// Density at the layer boundaries, `fx[i] = exp(-x_i²/2)`.
    fx: [f64; ZIG_LAYERS],
}

/// Builds the tables with the canonical downward recurrence
/// `x_{i-1} = sqrt(-2 ln(V/x_i + exp(-x_i²/2)))` from `x_255 = R`.
fn zig_tables() -> ZigTables {
    let mut kn = [0u64; ZIG_LAYERS];
    let mut wn = [0.0f64; ZIG_LAYERS];
    let mut fx = [0.0f64; ZIG_LAYERS];
    let mut dn = ZIG_R;
    let mut tn = ZIG_R;
    let q = ZIG_V / (-0.5 * dn * dn).exp();
    kn[0] = ((dn / q) * ZIG_M) as u64;
    kn[1] = 0;
    wn[0] = q / ZIG_M;
    wn[ZIG_LAYERS - 1] = dn / ZIG_M;
    fx[0] = 1.0;
    fx[ZIG_LAYERS - 1] = (-0.5 * dn * dn).exp();
    for i in (1..ZIG_LAYERS - 1).rev() {
        dn = (-2.0 * (ZIG_V / dn + (-0.5 * dn * dn).exp()).ln()).sqrt();
        kn[i + 1] = ((dn / tn) * ZIG_M) as u64;
        tn = dn;
        fx[i] = (-0.5 * dn * dn).exp();
        wn[i] = dn / ZIG_M;
    }
    ZigTables { kn, wn, fx }
}

/// Lazily-initialized shared tables (6 KiB, no per-stream state).
static ZIG: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();

/// Streaming Gaussian sampler using the Marsaglia–Tsang **ziggurat**
/// method — exact `N(0, σ²)` samples at roughly one raw RNG draw, one
/// table compare, and one multiply each.
///
/// This is the read-noise sampler of the packed MVM kernels (see
/// [`crate::kernel`]): the hot loop draws one sample per bit line per
/// evaluation, and with the accumulation loops panelled the sampler is
/// what remains on the profile. The ziggurat covers the density with 256
/// horizontal layers; ~99 % of draws land inside a layer's rectangle and
/// need no transcendental at all, while edge wedges and the `|z| > R`
/// tail fall back to exact rejection steps — an *exact* Gaussian sampler,
/// not an approximation (statistical tests below pin moments and tails).
///
/// The sample stream is a pure function of the wrapped RNG's stream, so
/// counter-based determinism (same seed ⇒ same noise) carries over
/// unchanged. It is **not** the same value stream as [`gaussian`] over the
/// same RNG — like the earlier Box–Muller → polar swap, adopting the
/// ziggurat is a version-scoped change to which variates a seed produces
/// (both remain `N(0, σ²)`), shared by the packed and reference kernels so
/// their bit-identity contract is unaffected.
///
/// Like [`gaussian`], `sigma == 0` returns exactly `0.0` and consumes no
/// randomness.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// let rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut gs = aimc_xbar::noise::GaussianStream::new(rng);
/// assert!(gs.next(1.0).is_finite());
/// assert_eq!(gs.next(0.0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianStream<R> {
    rng: R,
    /// Ziggurat tables, resolved once at construction — the hot loop
    /// draws one sample per bit line, and even the `OnceLock` acquire
    /// check per draw is measurable there.
    t: &'static ZigTables,
}

impl<R: Rng> GaussianStream<R> {
    /// Wraps `rng` as a Gaussian sample stream.
    pub fn new(rng: R) -> Self {
        GaussianStream {
            rng,
            t: ZIG.get_or_init(zig_tables),
        }
    }

    /// Draws one sample from `N(0, sigma²)`.
    #[inline]
    pub fn next(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        sigma * self.next_unit()
    }

    /// One unit-σ ziggurat sample. Bit layout of each raw draw: bits 0–7
    /// select the layer, bit 8 the sign, bits 11–63 the 53-bit offset.
    fn next_unit(&mut self) -> f64 {
        let t = self.t;
        loop {
            let u = self.rng.next_u64();
            let i = (u & 0xff) as usize;
            // Branchless sign: OR bit 8 into the f64 sign bit. `x` is
            // always `+0.0`-or-positive here, so this is exactly `±x` —
            // the 50/50 branch it replaces mispredicts half the time.
            let sign_bit = (u & 0x100) << 55;
            let j = u >> 11;
            let x = j as f64 * t.wn[i];
            if j < t.kn[i] {
                return f64::from_bits(x.to_bits() | sign_bit); // in-layer (~99 %)
            }
            if i == 0 {
                // |z| > R tail: exact exponential rejection (Marsaglia).
                loop {
                    let u1 = (self.rng.next_u64() >> 11) as f64 / ZIG_M;
                    let u2 = (self.rng.next_u64() >> 11) as f64 / ZIG_M;
                    let xt = -u1.ln() / ZIG_R;
                    let yt = -u2.ln();
                    if yt + yt > xt * xt {
                        return f64::from_bits((ZIG_R + xt).to_bits() | sign_bit);
                    }
                }
            }
            // Wedge between the rectangle and the density curve.
            let uw = (self.rng.next_u64() >> 11) as f64 / ZIG_M;
            if t.fx[i] + uw * (t.fx[i - 1] - t.fx[i]) < (-0.5 * x * x).exp() {
                return f64::from_bits(x.to_bits() | sign_bit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_exactly_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut rng, 0.0), 0.0);
        }
    }

    #[test]
    fn moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 200_000;
        let sigma = 2.5;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = gaussian(&mut rng, sigma);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(gaussian(&mut rng, 10.0).is_finite());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..16).map(|_| gaussian(&mut r, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..16).map(|_| gaussian(&mut r, 1.0)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn stream_zero_sigma_is_exact_and_consumes_nothing() {
        let mut gs = GaussianStream::new(StdRng::seed_from_u64(4));
        let first = gs.next(1.0);
        assert_eq!(gs.next(0.0), 0.0);
        // A zero-sigma draw must not consume randomness: the stream
        // continues identically to a run without the interleaved zero draw.
        let mut clean = GaussianStream::new(StdRng::seed_from_u64(4));
        assert_eq!(clean.next(1.0), first);
        assert_eq!(clean.next(1.0), gs.next(1.0));
    }

    #[test]
    fn stream_is_deterministic_for_seed() {
        let draw = |n: usize| -> Vec<f64> {
            let mut gs = GaussianStream::new(StdRng::seed_from_u64(17));
            (0..n).map(|_| gs.next(2.0)).collect()
        };
        assert_eq!(draw(33), draw(33));
    }

    #[test]
    fn stream_moments_are_plausible() {
        let mut gs = GaussianStream::new(StdRng::seed_from_u64(123));
        let n = 200_000;
        let sigma = 1.5;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = gs.next(sigma);
            assert!(x.is_finite());
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn stream_quantiles_match_the_normal_cdf() {
        // Sharper than the moment test: the ziggurat's layer bookkeeping
        // would shift these central masses if kn/wn/fx disagreed.
        let mut gs = GaussianStream::new(StdRng::seed_from_u64(31));
        let n = 400_000;
        let (mut in1, mut in2, mut in3) = (0u32, 0u32, 0u32);
        for _ in 0..n {
            let z = gs.next(1.0).abs();
            in1 += u32::from(z < 1.0);
            in2 += u32::from(z < 2.0);
            in3 += u32::from(z < 3.0);
        }
        let f = |c: u32| c as f64 / n as f64;
        assert!((f(in1) - 0.682_69).abs() < 0.005, "P(|z|<1) {}", f(in1));
        assert!((f(in2) - 0.954_50).abs() < 0.003, "P(|z|<2) {}", f(in2));
        assert!((f(in3) - 0.997_30).abs() < 0.002, "P(|z|<3) {}", f(in3));
    }

    #[test]
    fn stream_tails_reach_out() {
        // A correct Gaussian must produce |z| > 3σ at roughly the 0.27%
        // rate; a broken polar rejection (e.g. clamped to the unit disk
        // radius) would truncate the tails entirely.
        let mut gs = GaussianStream::new(StdRng::seed_from_u64(9));
        let n = 100_000;
        let tail = (0..n).filter(|_| gs.next(1.0).abs() > 3.0).count();
        assert!((50..=500).contains(&tail), "3σ tail count {tail}");
    }
}
