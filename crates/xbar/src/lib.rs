//! # aimc-xbar — analog PCM crossbar model
//!
//! Functional + statistical model of the non-volatile analog in-memory
//! computing core ("IMA computational memory") of the paper: a 2-D PCM array
//! with word-line DACs and bit-line ADCs that evaluates matrix-vector
//! products in the analog domain in a fixed 130 ns (Table I, after
//! Khaddam-Aljameh et al., HERMES).
//!
//! Three concerns are modeled:
//!
//! 1. **Function** — [`Crossbar::mvm`] computes `y = Wᵀx` through the full
//!    signal chain: DAC clipping/quantization → differential-conductance
//!    weights with programming noise → Kirchhoff accumulation → bit-line read
//!    noise → ADC clipping/quantization. With [`XbarConfig::ideal`] the chain
//!    collapses to an exact mat-vec (validated by tests and property tests).
//! 2. **Timing** — a constant per-MVM latency ([`XbarConfig::mvm_latency_ns`]),
//!    consumed by the cluster-level IMA subsystem in `aimc-cluster`.
//! 3. **Energy** — a per-MVM energy ([`XbarConfig::mvm_energy_nj`]), consumed
//!    by the platform power model in `aimc-runtime`.
//!
//! ## Determinism and concurrency
//!
//! Evaluation is `&self` and thread-safe: read noise is drawn from
//! counter-based per-call streams ([`stream`]) derived from a noise seed
//! fixed at programming time plus an invocation index, and the MVM counter
//! is atomic. The same seed therefore produces bit-identical results
//! whether tiles are evaluated serially or concurrently — the invariant the
//! `aimc-parallel` execution engine is built on.
//!
//! ## Example
//! ```
//! use aimc_xbar::{Crossbar, XbarConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), aimc_xbar::XbarError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // A 3x2 weight block in a 256x256 array (partial occupancy is the norm —
//! // it is the "local mapping" inefficiency of Fig. 6).
//! let weights = vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5];
//! let xbar = Crossbar::program(&XbarConfig::hermes_256(), &weights, 3, 2, &mut rng)?;
//! let y = xbar.mvm(&[1.0, 0.5, -0.25])?;
//! assert_eq!(y.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitserial;
mod config;
mod crossbar;
pub mod kernel;
pub mod noise;
mod programming;
pub mod stream;

pub use config::XbarConfig;
pub use crossbar::{Crossbar, XbarError};
pub use kernel::{MvmScratch, DAC_BATCH};
pub use programming::{ProgrammingCost, ProgrammingModel};
