//! Weight-programming (deployment) cost model.
//!
//! The paper's entire computational model rests on *static* mapping because
//! non-volatile memories write slowly (Sec. I: "the limited writing access
//! speed of nvIMC devices introduces the need for a static mapping
//! strategy"). This module quantifies that one-time cost: PCM cells are
//! written by iterative program-and-verify — a few SET/RESET pulses of
//! ~100 ns each plus a verify read per iteration — and only
//! `cells_in_parallel` cells (one word-line slice) program at once.

/// Programming-cost parameters for one array.
///
/// Defaults follow published PCM program-and-verify schemes (≈8 iterations
/// average to hit 8-bit-equivalent precision, ~500 ns per
/// program+verify iteration, one 256-cell row slice at a time, ~50 pJ per
/// programming pulse).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammingModel {
    /// Average program-and-verify iterations per cell.
    pub avg_iterations: f64,
    /// Time per iteration (pulse + verify read) in ns.
    pub iteration_ns: f64,
    /// Cells programmed in parallel (one row slice).
    pub cells_in_parallel: usize,
    /// Energy per programming pulse in pJ.
    pub pulse_energy_pj: f64,
}

impl Default for ProgrammingModel {
    fn default() -> Self {
        ProgrammingModel {
            avg_iterations: 8.0,
            iteration_ns: 500.0,
            cells_in_parallel: 256,
            pulse_energy_pj: 50.0,
        }
    }
}

/// Deployment cost summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgrammingCost {
    /// Cells written.
    pub cells: u64,
    /// Total wall-clock programming time in milliseconds (arrays program in
    /// parallel across clusters; this is the slowest array's time when
    /// `parallel_arrays` > 1).
    pub time_ms: f64,
    /// Total programming energy in millijoules.
    pub energy_mj: f64,
}

impl ProgrammingModel {
    /// Cost of programming `cells` weights into one array.
    pub fn array_cost(&self, cells: u64) -> ProgrammingCost {
        let slices = (cells as f64 / self.cells_in_parallel as f64).ceil();
        let time_ns = slices * self.avg_iterations * self.iteration_ns;
        let energy_pj = cells as f64 * self.avg_iterations * self.pulse_energy_pj;
        ProgrammingCost {
            cells,
            time_ms: time_ns / 1e6,
            energy_mj: energy_pj / 1e9,
        }
    }

    /// Cost of deploying a whole network: `per_array_cells` lists the
    /// occupied cells of every programmed array. Arrays program in parallel
    /// (each cluster drives its own IMA), so wall-clock time is the slowest
    /// array; energy sums.
    ///
    /// # Examples
    /// ```
    /// use aimc_xbar::ProgrammingModel;
    /// let m = ProgrammingModel::default();
    /// let cost = m.deployment_cost(&[65_536, 12_288]);
    /// assert!(cost.time_ms > 0.9); // full array: 256 slices × 8 × 500 ns
    /// assert_eq!(cost.cells, 77_824);
    /// ```
    pub fn deployment_cost(&self, per_array_cells: &[u64]) -> ProgrammingCost {
        let mut total_cells = 0u64;
        let mut max_time = 0.0f64;
        let mut energy = 0.0f64;
        for &cells in per_array_cells {
            let c = self.array_cost(cells);
            total_cells += cells;
            max_time = max_time.max(c.time_ms);
            energy += c.energy_mj;
        }
        ProgrammingCost {
            cells: total_cells,
            time_ms: max_time,
            energy_mj: energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_array_takes_about_a_millisecond() {
        let m = ProgrammingModel::default();
        let c = m.array_cost(65_536);
        // 256 slices × 8 iterations × 500 ns = 1.024 ms.
        assert!((c.time_ms - 1.024).abs() < 1e-9, "{}", c.time_ms);
        // 65536 cells × 8 × 50 pJ ≈ 26 µJ.
        assert!((c.energy_mj - 0.0262).abs() < 0.001);
    }

    #[test]
    fn programming_dwarfs_inference_time() {
        // The static-mapping motivation: writing one array (~1 ms) costs as
        // much time as ~7900 MVMs (130 ns each) — reprogramming per layer
        // at runtime would be absurd.
        let m = ProgrammingModel::default();
        let c = m.array_cost(65_536);
        let mvms_equiv = c.time_ms * 1e6 / 130.0;
        assert!(mvms_equiv > 5000.0, "{mvms_equiv}");
    }

    #[test]
    fn deployment_parallelism_takes_the_max() {
        let m = ProgrammingModel::default();
        let d = m.deployment_cost(&[65_536, 1_000, 100]);
        let solo = m.array_cost(65_536);
        assert_eq!(d.time_ms, solo.time_ms);
        assert_eq!(d.cells, 66_636);
        assert!(d.energy_mj > solo.energy_mj);
    }

    #[test]
    fn empty_deployment_is_free() {
        let m = ProgrammingModel::default();
        let d = m.deployment_cost(&[]);
        assert_eq!(d.cells, 0);
        assert_eq!(d.time_ms, 0.0);
        assert_eq!(d.energy_mj, 0.0);
        let z = m.array_cost(0);
        assert_eq!(z.time_ms, 0.0);
    }

    #[test]
    fn cost_scales_with_iterations() {
        let mut m = ProgrammingModel::default();
        let base = m.array_cost(1000);
        m.avg_iterations *= 2.0;
        let double = m.array_cost(1000);
        assert!((double.time_ms - 2.0 * base.time_ms).abs() < 1e-12);
        assert!((double.energy_mj - 2.0 * base.energy_mj).abs() < 1e-12);
    }
}
