//! The programmed crossbar: weight → conductance mapping, analog MVM with
//! device noise and converter quantization, and conductance drift.
//!
//! ## Model
//!
//! Each signed weight `w` is stored as a *differential* pair of PCM
//! conductances `(g⁺, g⁻)` so that the effective weight is `g⁺ − g⁻`. We map
//! the weight range `[-w_max, +w_max]` linearly onto `[-g_max, +g_max]` with
//! `g_max = 1` in normalized units, quantize to the `weight_bits` target
//! levels reachable by iterative programming, and perturb each device with
//! Gaussian programming noise (`prog_noise_sigma · g_max`).
//!
//! An MVM clips and quantizes the input vector through the DACs, accumulates
//! `Σ xᵢ·gᵢⱼ` per bit line (physically Kirchhoff current summation — exact in
//! the analog domain, so we use f64 accumulation), adds per-bit-line read
//! noise that grows with the number of active rows (uncorrelated per-device
//! noise adds in quadrature), and finally clips + quantizes through the ADCs.

use crate::config::XbarConfig;
use crate::noise::gaussian;
use core::fmt;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors returned by crossbar programming and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XbarError {
    /// The weight matrix does not fit the configured array.
    DoesNotFit {
        /// Requested rows.
        rows: usize,
        /// Requested cols.
        cols: usize,
        /// Available rows.
        max_rows: usize,
        /// Available cols.
        max_cols: usize,
    },
    /// The flat weight slice length is not `rows * cols`.
    LengthMismatch {
        /// Provided length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// The input vector length does not match the programmed rows.
    InputLength {
        /// Provided length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// The configuration failed validation.
    BadConfig(String),
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::DoesNotFit {
                rows,
                cols,
                max_rows,
                max_cols,
            } => write!(
                f,
                "weight block {rows}x{cols} does not fit {max_rows}x{max_cols} array"
            ),
            XbarError::LengthMismatch { got, expected } => {
                write!(f, "weight slice has {got} elements, expected {expected}")
            }
            XbarError::InputLength { got, expected } => {
                write!(f, "input vector has {got} elements, expected {expected}")
            }
            XbarError::BadConfig(msg) => write!(f, "invalid crossbar config: {msg}"),
        }
    }
}

impl std::error::Error for XbarError {}

/// A crossbar array with weights programmed into (differential) conductances.
///
/// Construct with [`Crossbar::program`]; evaluate with [`Crossbar::mvm`].
/// The stored state is the *noisy, quantized* conductance image — exactly
/// what a real array would hold after program-and-verify.
///
/// ## Read-noise streams and thread safety
///
/// Evaluation takes `&self` and is `Sync`: read noise is *not* drawn from a
/// caller-threaded RNG but from a per-call stream derived as
/// `derive(noise_seed, invocation)` (see [`crate::stream`]), where
/// `noise_seed` is fixed at programming time and `invocation` is either an
/// explicit index ([`Crossbar::mvm_into_at`] — what the parallel executors
/// use) or an internal atomic counter ([`Crossbar::mvm`]). Noise therefore
/// depends only on *which* evaluation this is, never on what other tiles or
/// threads did first — concurrent tile evaluation is bit-identical to
/// serial.
///
/// # Examples
/// ```
/// use aimc_xbar::{Crossbar, XbarConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let w = vec![1.0, -0.5, 0.25, 0.125]; // 2x2 row-major
/// let xb = Crossbar::program(&XbarConfig::ideal(2, 2), &w, 2, 2, &mut rng)?;
/// let y = xb.mvm(&[1.0, 1.0])?;
/// assert!((y[0] - 1.25).abs() < 1e-3);
/// assert!((y[1] - (-0.375)).abs() < 1e-3);
/// # Ok::<(), aimc_xbar::XbarError>(())
/// ```
#[derive(Debug)]
pub struct Crossbar {
    cfg: XbarConfig,
    /// Effective conductances `g⁺ − g⁻`, row-major `rows_used × cols_used`,
    /// in normalized units (`g_max = 1`), preceded by `g_off` zero pads
    /// chosen at programming time so the data starts 64-byte aligned (the
    /// MVM kernels stream this as SIMD loads).
    g_eff: Vec<f64>,
    /// Leading pad length of `g_eff` (see above). Kept as a plain offset so
    /// clones — whose fresh allocation may land elsewhere — stay correct,
    /// merely losing the alignment guarantee.
    g_off: usize,
    rows_used: usize,
    cols_used: usize,
    /// Weight scale: `w = g_eff * w_scale`.
    w_scale: f64,
    /// Root of this array's read-noise streams (fixed at program time).
    noise_seed: u64,
    /// Evaluations so far — atomic so `mvm` is `&self` and tiles can be
    /// evaluated concurrently without losing energy-accounting counts.
    mvm_count: AtomicU64,
}

impl Clone for Crossbar {
    fn clone(&self) -> Self {
        Crossbar {
            cfg: self.cfg.clone(),
            g_eff: self.g_eff.clone(),
            g_off: self.g_off,
            rows_used: self.rows_used,
            cols_used: self.cols_used,
            w_scale: self.w_scale,
            noise_seed: self.noise_seed,
            mvm_count: AtomicU64::new(self.mvm_count.load(Ordering::Relaxed)),
        }
    }
}

impl Crossbar {
    /// Programs a `rows × cols` row-major weight block into the array.
    ///
    /// The weight scale is chosen per-array as `max |w|` (symmetric, as the
    /// paper's int8 deployment would); pass weights already scaled per layer
    /// if a shared scale across multiple arrays is needed.
    ///
    /// # Errors
    /// Returns [`XbarError`] if the block exceeds the array geometry, the
    /// slice length is inconsistent, or the config is invalid.
    pub fn program<R: Rng>(
        cfg: &XbarConfig,
        weights: &[f32],
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> Result<Self, XbarError> {
        cfg.validate().map_err(XbarError::BadConfig)?;
        if rows > cfg.rows || cols > cfg.cols {
            return Err(XbarError::DoesNotFit {
                rows,
                cols,
                max_rows: cfg.rows,
                max_cols: cfg.cols,
            });
        }
        if weights.len() != rows * cols {
            return Err(XbarError::LengthMismatch {
                got: weights.len(),
                expected: rows * cols,
            });
        }

        // The read-noise stream root is drawn from the programming RNG, so a
        // tile's entire noise behaviour — programming *and* read — derives
        // from the one seed its programming RNG was built from.
        let noise_seed = rng.next_u64();

        let w_max = weights.iter().fold(0.0f64, |m, &w| m.max(w.abs() as f64));
        let w_scale = if w_max > 0.0 { w_max } else { 1.0 };

        let levels = (1u64 << cfg.weight_bits) - 1; // per polarity

        // Capacity covers data plus the worst-case alignment pad, so the
        // pointer (and with it the alignment) never moves after this.
        let mut g_eff: Vec<f64> = Vec::with_capacity(rows * cols + 7);
        let g_off = g_eff.as_ptr().align_offset(64).min(7);
        g_eff.resize(g_off, 0.0);
        for &w in weights {
            let target = (w as f64 / w_scale).clamp(-1.0, 1.0);
            // Differential mapping: only one device of the pair carries the
            // weight magnitude, the other is RESET (g ≈ 0).
            let mag = target.abs();
            let q = (mag * levels as f64).round() / levels as f64;
            let mut g = q.copysign(target);
            if cfg.prog_noise_sigma > 0.0 {
                // Both devices of the pair contribute programming error.
                g += gaussian(rng, cfg.prog_noise_sigma) + gaussian(rng, cfg.prog_noise_sigma);
            }
            g_eff.push(g.clamp(-1.0, 1.0));
        }

        Ok(Crossbar {
            cfg: cfg.clone(),
            g_eff,
            g_off,
            rows_used: rows,
            cols_used: cols,
            w_scale,
            noise_seed,
            mvm_count: AtomicU64::new(0),
        })
    }

    /// The configuration this array was programmed with.
    pub fn config(&self) -> &XbarConfig {
        &self.cfg
    }

    /// Rows actually occupied by weights.
    pub fn rows_used(&self) -> usize {
        self.rows_used
    }

    /// Columns actually occupied by weights.
    pub fn cols_used(&self) -> usize {
        self.cols_used
    }

    /// Fraction of cross points holding useful weights — the "local mapping"
    /// utilization of Fig. 6.
    pub fn utilization(&self) -> f64 {
        (self.rows_used * self.cols_used) as f64 / (self.cfg.rows * self.cfg.cols) as f64
    }

    /// The weight scale such that `w = g_eff · w_scale`.
    pub fn weight_scale(&self) -> f64 {
        self.w_scale
    }

    /// Number of MVMs evaluated so far (for energy accounting).
    pub fn mvm_count(&self) -> u64 {
        self.mvm_count.load(Ordering::Relaxed)
    }

    /// The root seed of this array's read-noise streams (fixed at program
    /// time; exposed for diagnostics and replay tooling).
    pub fn noise_seed(&self) -> u64 {
        self.noise_seed
    }

    /// Performs one analog matrix-vector multiplication `y = Wᵀ·x`.
    ///
    /// `x` must have `rows_used` elements, in the same normalized units used
    /// at programming time. The result is returned in weight·activation
    /// units (the scales are folded back in, as the digital requantization
    /// step after the ADC would).
    ///
    /// Read noise comes from the stream of the *next* invocation index (an
    /// internal atomic counter) — repeated calls decorrelate exactly as
    /// repeated reads of a physical array would. For explicit, replayable
    /// indices use [`Crossbar::mvm_at`].
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] on a dimension mismatch.
    pub fn mvm(&self, x: &[f32]) -> Result<Vec<f32>, XbarError> {
        let mut y = vec![0.0f32; self.cols_used];
        self.mvm_into(x, &mut y)?;
        Ok(y)
    }

    /// [`Crossbar::mvm`] with an explicit invocation index (see
    /// [`Crossbar::mvm_into_at`]).
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] on a dimension mismatch.
    pub fn mvm_at(&self, x: &[f32], invocation: u64) -> Result<Vec<f32>, XbarError> {
        let mut y = vec![0.0f32; self.cols_used];
        self.mvm_into_at(x, &mut y, invocation)?;
        Ok(y)
    }

    /// Like [`Crossbar::mvm`] but writing into a caller-provided buffer
    /// (hot path for the functional executor).
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] if `x` or `out` have wrong lengths.
    pub fn mvm_into(&self, x: &[f32], out: &mut [f32]) -> Result<(), XbarError> {
        // Validate before claiming an invocation: a rejected call must not
        // count as an evaluation nor shift later calls' noise streams.
        self.check_dims(x.len(), out.len())?;
        let invocation = self.mvm_count.fetch_add(1, Ordering::Relaxed);
        self.mvm_core(x, out, invocation);
        Ok(())
    }

    /// Like [`Crossbar::mvm_into`] but with a caller-chosen invocation
    /// index selecting the read-noise stream.
    ///
    /// This is the parallel executors' entry point: they pass
    /// `image_index · patches_per_image + patch_index`, so the noise of
    /// every single MVM is pinned to its place in the workload and the
    /// schedule (thread count, tile interleaving, batch splits) cannot
    /// change any result. The internal counter still advances — it counts
    /// evaluations for energy accounting, it does not select noise here.
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] if `x` or `out` have wrong lengths.
    pub fn mvm_into_at(
        &self,
        x: &[f32],
        out: &mut [f32],
        invocation: u64,
    ) -> Result<(), XbarError> {
        self.check_dims(x.len(), out.len())?;
        self.mvm_count.fetch_add(1, Ordering::Relaxed);
        self.mvm_core(x, out, invocation);
        Ok(())
    }

    /// Like [`Crossbar::mvm_into_at`] but reusing a caller-owned
    /// [`crate::MvmScratch`] — the zero-allocation hot path for executors
    /// that keep per-worker scratch (see `InferScratch` in `aimc-dnn`).
    ///
    /// Results are bit-identical to every other evaluation entry point for
    /// the same invocation index.
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] if `x` or `out` have wrong lengths.
    pub fn mvm_into_with(
        &self,
        x: &[f32],
        out: &mut [f32],
        invocation: u64,
        scratch: &mut crate::kernel::MvmScratch,
    ) -> Result<(), XbarError> {
        self.check_dims(x.len(), out.len())?;
        self.mvm_count.fetch_add(1, Ordering::Relaxed);
        crate::kernel::dac_packed(self, x, out, invocation, scratch);
        Ok(())
    }

    /// Batched parallel-DAC evaluation: `invocations.len()` patches
    /// against this array in one call, each **bit-identical** to a
    /// [`Crossbar::mvm_into_with`] call with the same patch and
    /// invocation index (see [`crate::kernel`] on why the lock-step
    /// accumulation preserves every bit).
    ///
    /// `xs` holds the patches back to back (`k · rows_used`), `out`
    /// receives the results back to back (`k · cols_used`). Batching
    /// raises arithmetic intensity — each conductance row fetched from
    /// cache feeds [`crate::kernel::DAC_BATCH`] accumulator chains — so
    /// the executors' convolution loops prefer this call whenever several
    /// patches target the same tile.
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] if `xs` or `out` is not `k`
    /// patches long.
    pub fn mvm_batch_into_with(
        &self,
        xs: &[f32],
        out: &mut [f32],
        invocations: &[u64],
        scratch: &mut crate::kernel::MvmScratch,
    ) -> Result<(), XbarError> {
        let k = invocations.len();
        if xs.len() != k * self.rows_used {
            return Err(XbarError::InputLength {
                got: xs.len(),
                expected: k * self.rows_used,
            });
        }
        if out.len() != k * self.cols_used {
            return Err(XbarError::InputLength {
                got: out.len(),
                expected: k * self.cols_used,
            });
        }
        self.mvm_count.fetch_add(k as u64, Ordering::Relaxed);
        crate::kernel::dac_packed_batch(self, xs, out, invocations, scratch);
        Ok(())
    }

    /// Scalar reference evaluation at an explicit invocation index — the
    /// pre-packing row loop kept as the equivalence oracle for the
    /// `kernel_equivalence` proptests and the `mvm_kernels` bench.
    ///
    /// Returns results bit-identical to [`Crossbar::mvm_into_at`] /
    /// [`Crossbar::mvm_into_with`] for the same `invocation`; it is slower
    /// and allocates per call.
    ///
    /// # Errors
    /// Returns [`XbarError::InputLength`] on a dimension mismatch.
    pub fn mvm_reference_at(&self, x: &[f32], invocation: u64) -> Result<Vec<f32>, XbarError> {
        let mut y = vec![0.0f32; self.cols_used];
        self.check_dims(x.len(), y.len())?;
        self.mvm_count.fetch_add(1, Ordering::Relaxed);
        crate::kernel::dac_reference(self, x, &mut y, invocation);
        Ok(y)
    }

    /// Rejects mismatched input/output lengths (before any counter or
    /// stream state is touched).
    fn check_dims(&self, x_len: usize, out_len: usize) -> Result<(), XbarError> {
        if x_len != self.rows_used {
            return Err(XbarError::InputLength {
                got: x_len,
                expected: self.rows_used,
            });
        }
        if out_len != self.cols_used {
            return Err(XbarError::InputLength {
                got: out_len,
                expected: self.cols_used,
            });
        }
        Ok(())
    }

    /// The full DAC → analog → ADC signal chain for one pre-validated
    /// evaluation, with read noise drawn from
    /// `derive(noise_seed, invocation)`.
    ///
    /// Delegates to the packed kernel ([`crate::kernel`]) with this
    /// thread's fallback scratch; callers that hold their own scratch use
    /// [`Crossbar::mvm_into_with`] instead.
    fn mvm_core(&self, x: &[f32], out: &mut [f32], invocation: u64) {
        debug_assert_eq!(x.len(), self.rows_used);
        debug_assert_eq!(out.len(), self.cols_used);
        crate::kernel::with_thread_scratch(|s| {
            crate::kernel::dac_packed(self, x, out, invocation, s)
        });
    }

    /// Applies conductance drift for `t_hours` of elapsed time since
    /// programming: `g ← g · (t/t₀)^(−ν)` with `t₀ = 1 h`.
    ///
    /// Drift is deterministic and affects magnitude only; `t_hours ≤ 1`
    /// leaves the state unchanged.
    pub fn apply_drift(&mut self, t_hours: f64) {
        if t_hours <= 1.0 || self.cfg.drift_nu == 0.0 {
            return;
        }
        let factor = t_hours.powf(-self.cfg.drift_nu);
        for g in self.g_eff.iter_mut() {
            *g *= factor;
        }
    }

    /// Claims the next internal invocation index (counter-based evaluation
    /// paths; also keeps the energy-accounting count).
    pub(crate) fn next_invocation(&self) -> u64 {
        self.mvm_count.fetch_add(1, Ordering::Relaxed)
    }

    /// The full effective conductance image, row-major
    /// `rows_used × cols_used` (the packed kernels' working set).
    pub(crate) fn g_all(&self) -> &[f64] {
        &self.g_eff[self.g_off..]
    }

    /// Reads back the effective stored weight at `(row, col)` (diagnostics,
    /// weight-map dumps).
    ///
    /// # Panics
    /// Panics if the indices are out of the programmed block.
    pub fn stored_weight(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows_used && col < self.cols_used,
            "index out of programmed block"
        );
        (self.g_eff[self.g_off + row * self.cols_used + col] * self.w_scale) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// Exact reference mat-vec for comparison.
    fn ref_mvm(w: &[f32], rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                y[c] += w[r * cols + c] * x[r];
            }
        }
        y
    }

    #[test]
    fn ideal_array_matches_reference() {
        let mut rng = rng();
        let rows = 16;
        let cols = 8;
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 37 % 64) as f32 - 32.0) / 32.0)
            .collect();
        let xb =
            Crossbar::program(&XbarConfig::ideal(rows, cols), &w, rows, cols, &mut rng).unwrap();
        let x: Vec<f32> = (0..rows).map(|i| ((i % 8) as f32 - 4.0) / 4.0).collect();
        let y = xb.mvm(&x).unwrap();
        let yref = ref_mvm(&w, rows, cols, &x);
        for (a, b) in y.iter().zip(&yref) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn partial_block_in_bigger_array() {
        let mut rng = rng();
        let cfg = XbarConfig::ideal(256, 256);
        let w = vec![0.5f32; 10 * 3];
        let xb = Crossbar::program(&cfg, &w, 10, 3, &mut rng).unwrap();
        assert_eq!(xb.rows_used(), 10);
        assert_eq!(xb.cols_used(), 3);
        assert!((xb.utilization() - 30.0 / 65536.0).abs() < 1e-12);
        let y = xb.mvm(&[1.0; 10]).unwrap();
        assert_eq!(y.len(), 3);
        for v in y {
            assert!((v - 5.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rejects_oversized_blocks() {
        let mut rng = rng();
        let cfg = XbarConfig::ideal(4, 4);
        let w = vec![0.0f32; 5 * 4];
        let err = Crossbar::program(&cfg, &w, 5, 4, &mut rng).unwrap_err();
        assert!(matches!(err, XbarError::DoesNotFit { .. }));
    }

    #[test]
    fn rejects_wrong_weight_length() {
        let mut rng = rng();
        let cfg = XbarConfig::ideal(4, 4);
        let err = Crossbar::program(&cfg, &[0.0; 3], 2, 2, &mut rng).unwrap_err();
        assert_eq!(
            err,
            XbarError::LengthMismatch {
                got: 3,
                expected: 4
            }
        );
    }

    #[test]
    fn rejects_wrong_input_length() {
        let mut rng = rng();
        let cfg = XbarConfig::ideal(4, 2);
        let xb = Crossbar::program(&cfg, &[0.1; 8], 4, 2, &mut rng).unwrap();
        let err = xb.mvm(&[0.0; 3]).unwrap_err();
        assert_eq!(
            err,
            XbarError::InputLength {
                got: 3,
                expected: 4
            }
        );
    }

    #[test]
    fn programming_noise_perturbs_but_tracks_weights() {
        let mut rng = rng();
        let mut cfg = XbarConfig::hermes_256();
        cfg.prog_noise_sigma = 0.03;
        let rows = 64;
        let cols = 64;
        let w: Vec<f32> = (0..rows * cols)
            .map(|i| (((i * 13) % 128) as f32 - 64.0) / 64.0)
            .collect();
        let xb = Crossbar::program(&cfg, &w, rows, cols, &mut rng).unwrap();
        let mut err_acc = 0.0f64;
        for r in 0..rows {
            for c in 0..cols {
                let e = (xb.stored_weight(r, c) - w[r * cols + c]).abs() as f64;
                err_acc += e;
            }
        }
        let mean_err = err_acc / (rows * cols) as f64;
        // Mean |error| of two σ=0.03 devices ≈ 0.034 in weight units (scale 1);
        // must be visible but bounded.
        assert!(mean_err > 0.005, "noise not applied: {mean_err}");
        assert!(mean_err < 0.1, "noise too large: {mean_err}");
    }

    #[test]
    fn read_noise_varies_between_evaluations() {
        let mut rng = rng();
        let mut cfg = XbarConfig::hermes_256();
        cfg.read_noise_sigma = 0.02;
        cfg.adc_bits = 16; // fine quantization so noise is not rounded away
        cfg.adc_headroom = 1.0; // stay far from full-scale clipping
                                // Alternating-sign weights keep column sums near zero (no clipping).
        let w: Vec<f32> = (0..32 * 4)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let xb = Crossbar::program(&cfg, &w, 32, 4, &mut rng).unwrap();
        let x = vec![0.8f32; 32];
        let y1 = xb.mvm(&x).unwrap();
        let y2 = xb.mvm(&x).unwrap();
        assert_ne!(y1, y2, "read noise should decorrelate repeated MVMs");
        assert_eq!(xb.mvm_count(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = XbarConfig::hermes_256();
        let w: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 32.0).collect();
        let run = || {
            let mut r = StdRng::seed_from_u64(123);
            let xb = Crossbar::program(&cfg, &w, 8, 8, &mut r).unwrap();
            xb.mvm(&[0.5; 8]).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adc_clips_large_sums() {
        let mut rng = rng();
        let mut cfg = XbarConfig::ideal(64, 1);
        cfg.adc_headroom = 0.05; // FS = 0.05 * 64 = 3.2 normalized units
        let xb = Crossbar::program(&cfg, &[1.0; 64], 64, 1, &mut rng).unwrap();
        let y = xb.mvm(&[1.0; 64]).unwrap();
        // True sum is 64, but the ADC full-scale clamps it to 3.2.
        assert!(y[0] < 4.0, "ADC clipping not applied: {}", y[0]);
    }

    #[test]
    fn drift_shrinks_magnitudes() {
        let mut rng = rng();
        let cfg = XbarConfig::hermes_256();
        let mut xb = Crossbar::program(&cfg, &[0.8; 16], 4, 4, &mut rng).unwrap();
        let before = xb.stored_weight(0, 0).abs();
        xb.apply_drift(1000.0);
        let after = xb.stored_weight(0, 0).abs();
        assert!(after < before, "drift must reduce conductance");
        // ν=0.05 over 1000h → factor 1000^-0.05 ≈ 0.708
        assert!((after / before - 1000.0f32.powf(-0.05)).abs() < 1e-3);
    }

    #[test]
    fn drift_noop_within_first_hour() {
        let mut rng = rng();
        let cfg = XbarConfig::hermes_256();
        let mut xb = Crossbar::program(&cfg, &[0.8; 16], 4, 4, &mut rng).unwrap();
        let before = xb.stored_weight(2, 2);
        xb.apply_drift(0.5);
        assert_eq!(xb.stored_weight(2, 2), before);
    }

    #[test]
    fn crossbar_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Crossbar>();
    }

    #[test]
    fn explicit_invocation_replays_exact_stream() {
        let mut rng = rng();
        let mut cfg = XbarConfig::hermes_256();
        cfg.read_noise_sigma = 0.02;
        cfg.adc_bits = 16; // fine quantization so noise is not rounded away
        cfg.adc_headroom = 1.0; // stay far from full-scale clipping
        let w: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let xb = Crossbar::program(&cfg, &w, 8, 8, &mut rng).unwrap();
        let x = [0.7f32; 8];
        let a = xb.mvm_at(&x, 5).unwrap();
        let b = xb.mvm_at(&x, 5).unwrap();
        assert_eq!(a, b, "same invocation must replay the same noise");
        let c = xb.mvm_at(&x, 6).unwrap();
        assert_ne!(a, c, "different invocations must decorrelate");
        // Explicit indices still count evaluations for energy accounting.
        assert_eq!(xb.mvm_count(), 3);
    }

    #[test]
    fn rejected_calls_consume_no_count_and_no_stream() {
        let mut cfg = XbarConfig::hermes_256();
        cfg.read_noise_sigma = 0.02;
        cfg.adc_bits = 16;
        cfg.adc_headroom = 1.0;
        let w: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let program = || {
            let mut r = StdRng::seed_from_u64(77);
            Crossbar::program(&cfg, &w, 8, 8, &mut r).unwrap()
        };
        let x = [0.7f32; 8];
        let clean = program();
        let want = clean.mvm(&x).unwrap();
        let tainted = program();
        assert!(tainted.mvm(&[0.0; 3]).is_err());
        assert!(tainted.mvm_at(&[0.0; 5], 9).is_err());
        assert!(tainted.mvm_bit_serial(&x, 0).is_err());
        // Failed calls neither count as evaluations nor shift the streams.
        assert_eq!(tainted.mvm_count(), 0);
        assert_eq!(tainted.mvm(&x).unwrap(), want);
    }

    #[test]
    fn counter_calls_match_explicit_indices() {
        // The internal counter and explicit indices address the same
        // streams: call k of a fresh array == invocation index k.
        let mut cfg = XbarConfig::hermes_256();
        cfg.read_noise_sigma = 0.02;
        cfg.adc_bits = 16;
        cfg.adc_headroom = 1.0;
        let w: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let program = || {
            let mut r = StdRng::seed_from_u64(77);
            Crossbar::program(&cfg, &w, 8, 8, &mut r).unwrap()
        };
        let x = [0.7f32; 8];
        let a = program();
        let counted: Vec<Vec<f32>> = (0..4).map(|_| a.mvm(&x).unwrap()).collect();
        let b = program();
        let explicit: Vec<Vec<f32>> = (0..4).map(|i| b.mvm_at(&x, i).unwrap()).collect();
        assert_eq!(counted, explicit);
    }

    #[test]
    fn concurrent_evaluations_are_counted_and_order_independent() {
        let mut rng = rng();
        let mut cfg = XbarConfig::hermes_256();
        cfg.read_noise_sigma = 0.02;
        cfg.adc_bits = 16;
        cfg.adc_headroom = 1.0;
        let w: Vec<f32> = (0..64)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let xb = Crossbar::program(&cfg, &w, 8, 8, &mut rng).unwrap();
        let x = [0.7f32; 8];
        let reference: Vec<Vec<f32>> = (0..16).map(|i| xb.mvm_at(&x, i).unwrap()).collect();
        let threaded: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let xb = &xb;
                    let x = &x;
                    s.spawn(move || {
                        (0..4)
                            .map(|i| xb.mvm_at(x, (t * 4 + i) as u64).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(reference, threaded);
        // 16 serial + 16 threaded evaluations, none lost to races.
        assert_eq!(xb.mvm_count(), 32);
    }

    #[test]
    fn zero_weights_program_cleanly() {
        let mut rng = rng();
        let cfg = XbarConfig::ideal(8, 8);
        let xb = Crossbar::program(&cfg, &[0.0; 64], 8, 8, &mut rng).unwrap();
        let y = xb.mvm(&[1.0; 8]).unwrap();
        assert!(y.iter().all(|&v| v.abs() < 1e-6));
    }
}
