//! Crossbar configuration: geometry, converter resolutions, device
//! non-idealities, and the timing/energy figures of Table I.

use core::fmt;

/// Static configuration of an analog in-memory-computing crossbar.
///
/// The defaults ([`XbarConfig::hermes_256`]) model the 256×256 PCM array the
/// paper assumes (HERMES-class device, 130 ns per matrix-vector product,
/// 8-bit-equivalent cells).
///
/// # Examples
/// ```
/// use aimc_xbar::XbarConfig;
/// let cfg = XbarConfig::hermes_256();
/// assert_eq!((cfg.rows, cfg.cols), (256, 256));
/// assert_eq!(cfg.capacity_weights(), 65_536);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct XbarConfig {
    /// Number of word lines (input dimension).
    pub rows: usize,
    /// Number of bit lines (output dimension).
    pub cols: usize,
    /// Equivalent bits per stored weight (differential pair), ≤ 8 for PCM.
    pub weight_bits: u32,
    /// Input DAC resolution in bits.
    pub dac_bits: u32,
    /// Output ADC resolution in bits.
    pub adc_bits: u32,
    /// Relative (multiplicative) programming-noise sigma per device.
    /// Typical iterative-program-and-verify PCM: ~2–4 % of `g_max`.
    pub prog_noise_sigma: f64,
    /// Relative read-noise sigma per device per MVM (1/f + telegraph noise).
    pub read_noise_sigma: f64,
    /// Conductance-drift exponent ν in `g(t) = g₀ (t/t₀)^(−ν)`; PCM ≈ 0.05.
    pub drift_nu: f64,
    /// Input clipping range: activations are clipped to `[-x_clip, x_clip]`
    /// before DAC conversion (in normalized activation units).
    pub x_clip: f64,
    /// ADC full-scale expressed as a fraction of the worst-case bit-line sum
    /// (`rows · x_clip · 1.0`). Real arrays never see the worst case, so the
    /// full-scale is provisioned for a small multiple of the typical column
    /// sum; 0.1 means FS = 10 % of worst case.
    pub adc_headroom: f64,
    /// Latency of one complete MVM (DAC + analog evaluation + ADC), in ns.
    /// Table I / Khaddam-Aljameh et al.: 130 ns.
    pub mvm_latency_ns: f64,
    /// Energy of one complete MVM in nJ (array + converters). The default is
    /// calibrated so the full ResNet-18 batch lands at ≈15 mJ (Sec. VI).
    pub mvm_energy_nj: f64,
}

impl XbarConfig {
    /// The paper's baseline device: 256×256, 8-bit cells, 130 ns MVM.
    pub fn hermes_256() -> Self {
        XbarConfig {
            rows: 256,
            cols: 256,
            weight_bits: 8,
            dac_bits: 8,
            adc_bits: 8,
            prog_noise_sigma: 0.03,
            read_noise_sigma: 0.01,
            drift_nu: 0.05,
            x_clip: 1.0,
            adc_headroom: 0.125,
            mvm_latency_ns: 130.0,
            mvm_energy_nj: 3.8,
        }
    }

    /// A noiseless, high-resolution configuration for numerical testing:
    /// the MVM must match an exact floating-point mat-vec to tight tolerance.
    pub fn ideal(rows: usize, cols: usize) -> Self {
        XbarConfig {
            rows,
            cols,
            weight_bits: 16,
            dac_bits: 16,
            adc_bits: 24,
            prog_noise_sigma: 0.0,
            read_noise_sigma: 0.0,
            drift_nu: 0.0,
            x_clip: 1.0,
            adc_headroom: 1.0,
            mvm_latency_ns: 130.0,
            mvm_energy_nj: 3.8,
        }
    }

    /// Returns a copy with a different geometry (used by the architecture
    /// ablation benches that sweep crossbar sizes).
    pub fn with_size(mut self, rows: usize, cols: usize) -> Self {
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Number of weights the array can store (one weight per cross point;
    /// the differential pair shares the cross point in our accounting, as in
    /// the paper's "64 K parameters per 256×256 IMA").
    pub fn capacity_weights(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak throughput in operations/second: 2 ops (MAC) per cell per MVM.
    ///
    /// For the default device: 2·256·256 / 130 ns ≈ 1.008 TOPS, which times
    /// 512 clusters gives the ≈516 TOPS "ideal" bar of Fig. 6.
    pub fn peak_ops_per_s(&self) -> f64 {
        (2 * self.rows * self.cols) as f64 / (self.mvm_latency_ns * 1e-9)
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("crossbar must have non-zero rows and cols".into());
        }
        if self.weight_bits == 0 || self.weight_bits > 16 {
            return Err(format!(
                "weight_bits {} out of range 1..=16",
                self.weight_bits
            ));
        }
        if self.dac_bits == 0 || self.dac_bits > 24 || self.adc_bits == 0 || self.adc_bits > 32 {
            return Err("converter resolution out of range".into());
        }
        let noise_ok = |x: f64| x.is_finite() && x >= 0.0;
        if !noise_ok(self.prog_noise_sigma) || !noise_ok(self.read_noise_sigma) {
            return Err("noise sigmas must be non-negative".into());
        }
        let range_ok = |x: f64| x.is_finite() && x > 0.0;
        if !range_ok(self.x_clip) || !range_ok(self.adc_headroom) {
            return Err("clipping ranges must be positive".into());
        }
        if !(self.mvm_latency_ns.is_finite()) || self.mvm_latency_ns <= 0.0 {
            return Err("mvm latency must be positive".into());
        }
        Ok(())
    }
}

impl Default for XbarConfig {
    fn default() -> Self {
        Self::hermes_256()
    }
}

impl fmt::Display for XbarConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} xbar, {}b cells, DAC {}b / ADC {}b, {} ns/MVM",
            self.rows,
            self.cols,
            self.weight_bits,
            self.dac_bits,
            self.adc_bits,
            self.mvm_latency_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermes_defaults_match_table1() {
        let c = XbarConfig::hermes_256();
        assert_eq!(c.rows, 256);
        assert_eq!(c.cols, 256);
        assert_eq!(c.mvm_latency_ns, 130.0);
        assert_eq!(c.capacity_weights(), 64 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn peak_throughput_matches_paper_ideal() {
        let per_ima = XbarConfig::hermes_256().peak_ops_per_s();
        let ideal_512 = 512.0 * per_ima / 1e12;
        // Fig. 6 "ideal" bar is ≈516 TOPS.
        assert!((ideal_512 - 516.0).abs() < 1.0, "got {ideal_512} TOPS");
    }

    #[test]
    fn ideal_config_is_noiseless() {
        let c = XbarConfig::ideal(64, 32);
        assert_eq!(c.prog_noise_sigma, 0.0);
        assert_eq!(c.read_noise_sigma, 0.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = XbarConfig::hermes_256();
        c.rows = 0;
        assert!(c.validate().is_err());
        let mut c = XbarConfig::hermes_256();
        c.weight_bits = 0;
        assert!(c.validate().is_err());
        let mut c = XbarConfig::hermes_256();
        c.prog_noise_sigma = -1.0;
        assert!(c.validate().is_err());
        let mut c = XbarConfig::hermes_256();
        c.adc_headroom = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_size_changes_geometry_only() {
        let c = XbarConfig::hermes_256().with_size(512, 512);
        assert_eq!(c.rows, 512);
        assert_eq!(c.weight_bits, 8);
    }

    #[test]
    fn display_is_informative() {
        let s = XbarConfig::hermes_256().to_string();
        assert!(s.contains("256x256"));
        assert!(s.contains("130"));
    }
}
