//! Energy and area models (calibration constants of DESIGN.md §6).
//!
//! The paper obtains physical numbers from a 22 nm FDX implementation of the
//! cluster (Synopsys DC / Innovus / PrimeTime) scaled to 5 nm. We cannot run
//! those flows; instead the constants below are chosen so that the paper's
//! *own system-level anchors* hold on the paper's workload:
//!
//! * 512 clusters ≈ 480 mm² (Sec. VI)  → 0.9375 mm²/cluster;
//! * ideal throughput ≈ 516 TOPS (Fig. 6) — follows from Table I alone;
//! * ≈15 mJ for a 16-image batch, ≈6.5 TOPS/W (Sec. VI) — sets the energy
//!   split between analog MVMs, digital cores, interconnect and leakage.
//!
//! Every derived figure (Fig. 6 waterfall, Fig. 7 GOPS/mm², headline
//! TOPS/W) consumes the anchors only through these constants.

/// Energy model constants (all per-event, in the units stated).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per analog MVM in nJ (array + DAC/ADC + streamers). The
    /// HERMES-class measurements put complete-MVM energy at a few nJ for
    /// 256×256; 3.8 nJ lands total analog energy at ≈6 mJ/batch.
    pub mvm_nj: f64,
    /// Energy per active core cycle in pJ (RV32 + DSP extensions, 5 nm).
    pub core_cycle_pj: f64,
    /// Interconnect energy per byte per tree level crossed, in pJ.
    pub noc_byte_hop_pj: f64,
    /// HBM access energy per byte, in pJ.
    pub hbm_byte_pj: f64,
    /// Static (leakage + clock tree) power per *active* cluster in mW;
    /// unused clusters are power-gated (Sec. VI: "each cluster can be easily
    /// clock and power gated").
    pub cluster_static_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mvm_nj: 3.8,
            core_cycle_pj: 18.0,
            noc_byte_hop_pj: 0.8,
            hbm_byte_pj: 6.0,
            cluster_static_mw: 7.0,
        }
    }
}

/// Tallies of energy-relevant activity collected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyTallies {
    /// Total analog MVMs executed (summed over all crossbars).
    pub mvms: u64,
    /// Total active core cycles (summed over all clusters).
    pub core_cycles: u64,
    /// Total byte·level-crossings on the interconnect.
    pub noc_byte_hops: u64,
    /// Total bytes through the HBM controller.
    pub hbm_bytes: u64,
    /// Active clusters × seconds (for static power).
    pub cluster_seconds: f64,
}

/// Energy breakdown in millijoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Analog arrays + converters.
    pub analog_mj: f64,
    /// Digital cores.
    pub digital_mj: f64,
    /// On-chip interconnect.
    pub noc_mj: f64,
    /// HBM channel.
    pub hbm_mj: f64,
    /// Static power of active clusters.
    pub static_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in mJ.
    pub fn total_mj(&self) -> f64 {
        self.analog_mj + self.digital_mj + self.noc_mj + self.hbm_mj + self.static_mj
    }
}

impl EnergyModel {
    /// Converts activity tallies to an energy breakdown.
    pub fn breakdown(&self, t: &EnergyTallies) -> EnergyBreakdown {
        EnergyBreakdown {
            analog_mj: t.mvms as f64 * self.mvm_nj * 1e-6,
            digital_mj: t.core_cycles as f64 * self.core_cycle_pj * 1e-9,
            noc_mj: t.noc_byte_hops as f64 * self.noc_byte_hop_pj * 1e-9,
            hbm_mj: t.hbm_bytes as f64 * self.hbm_byte_pj * 1e-9,
            static_mj: t.cluster_seconds * self.cluster_static_mw,
        }
    }
}

/// Area model in mm² (5 nm-scaled, DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One IMA (PCM macro + 256 ADC/DAC lanes + streamers).
    pub ima_mm2: f64,
    /// 16 RISC-V cores + instruction cache + event unit.
    pub cores_mm2: f64,
    /// 1 MB multi-banked L1 TCDM.
    pub l1_mm2: f64,
    /// Cluster periphery: DMA, crossbar interconnect, clocking.
    pub periphery_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            ima_mm2: 0.26,
            cores_mm2: 0.30,
            l1_mm2: 0.31,
            periphery_mm2: 0.0675,
        }
    }
}

/// The heterogeneous cluster variants the paper proposes in Sec. VI to
/// mitigate the "local mapping" inefficiency: *"integrate heterogeneous
/// clusters configured to fit better all the possibilities, such as IMA and
/// a single CORE (i.e., analog clusters) or 16 CORES without IMA (i.e.,
/// digital clusters)"*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterVariant {
    /// The baseline homogeneous cluster: IMA + 16 cores + L1.
    Full,
    /// IMA + one control core + L1 (analog-dominated stages).
    Analog,
    /// 16 cores + L1, no IMA (digital and reduction stages).
    Digital,
    /// L1 + DMA only (residual storage clusters).
    Memory,
}

impl AreaModel {
    /// Area of one baseline cluster.
    pub fn cluster_mm2(&self) -> f64 {
        self.variant_mm2(ClusterVariant::Full)
    }

    /// Area of one cluster of the given variant. The single control core of
    /// an analog cluster is 1/16 of the core complex; every variant keeps
    /// the L1 (tiles must still be buffered) and the periphery.
    pub fn variant_mm2(&self, v: ClusterVariant) -> f64 {
        match v {
            ClusterVariant::Full => {
                self.ima_mm2 + self.cores_mm2 + self.l1_mm2 + self.periphery_mm2
            }
            ClusterVariant::Analog => {
                self.ima_mm2 + self.cores_mm2 / 16.0 + self.l1_mm2 + self.periphery_mm2
            }
            ClusterVariant::Digital => self.cores_mm2 + self.l1_mm2 + self.periphery_mm2,
            ClusterVariant::Memory => self.l1_mm2 + self.periphery_mm2,
        }
    }

    /// Area of `n` baseline clusters (the paper's 480 mm² for 512).
    pub fn platform_mm2(&self, n_clusters: usize) -> f64 {
        self.cluster_mm2() * n_clusters as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_areas_are_ordered() {
        let a = AreaModel::default();
        let full = a.variant_mm2(ClusterVariant::Full);
        let analog = a.variant_mm2(ClusterVariant::Analog);
        let digital = a.variant_mm2(ClusterVariant::Digital);
        let memory = a.variant_mm2(ClusterVariant::Memory);
        assert!(full > analog, "dropping 15 cores must save area");
        assert!(full > digital, "dropping the IMA must save area");
        assert!(digital > memory);
        assert!(analog > memory);
        // Sanity: analog cluster keeps the IMA.
        assert!(analog > a.ima_mm2);
    }

    #[test]
    fn cluster_area_matches_paper_anchor() {
        let a = AreaModel::default();
        assert!((a.cluster_mm2() - 0.9375).abs() < 1e-9);
        assert!((a.platform_mm2(512) - 480.0).abs() < 0.01);
    }

    #[test]
    fn batch_energy_lands_near_15_mj() {
        // DESIGN.md §6 back-of-envelope for the final ResNet-18 mapping:
        // 1.62M MVMs, ~160M core cycles, ~400M byte-hops, ~3 MB HBM,
        // ~336 clusters × 2.5 ms.
        let e = EnergyModel::default();
        let b = e.breakdown(&EnergyTallies {
            mvms: 1_620_000,
            core_cycles: 160_000_000,
            noc_byte_hops: 400_000_000,
            hbm_bytes: 3_200_000,
            cluster_seconds: 336.0 * 2.5e-3,
        });
        let total = b.total_mj();
        assert!((10.0..20.0).contains(&total), "total {total} mJ");
        // Analog should dominate, static second.
        assert!(b.analog_mj > b.digital_mj);
        assert!(b.analog_mj > b.noc_mj);
    }

    #[test]
    fn breakdown_components_are_linear() {
        let e = EnergyModel::default();
        let t1 = EnergyTallies {
            mvms: 100,
            core_cycles: 100,
            noc_byte_hops: 100,
            hbm_bytes: 100,
            cluster_seconds: 1.0,
        };
        let t2 = EnergyTallies {
            mvms: 200,
            core_cycles: 200,
            noc_byte_hops: 200,
            hbm_bytes: 200,
            cluster_seconds: 2.0,
        };
        let b1 = e.breakdown(&t1).total_mj();
        let b2 = e.breakdown(&t2).total_mj();
        assert!((b2 - 2.0 * b1).abs() < 1e-12);
    }

    #[test]
    fn zero_activity_zero_energy() {
        let e = EnergyModel::default();
        assert_eq!(e.breakdown(&EnergyTallies::default()).total_mj(), 0.0);
    }
}
