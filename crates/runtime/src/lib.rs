//! # aimc-runtime — pipelined platform execution and analyses
//!
//! Executes a compiled [`aimc_core::SystemMapping`] on the event-driven
//! platform simulator: per-lane self-timed actors (Sec. IV-5), DMA traffic
//! through the contention-modeled NoC, residual staging (Sec. V-4), and the
//! measurement machinery behind every figure of the paper —
//! per-cluster activity breakdowns (Fig. 5B/C/D), the inefficiency
//! waterfall (Fig. 6), per-group area efficiency (Fig. 7), and the headline
//! TOPS / TOPS/W / GOPS/mm² numbers (Sec. VI).
//!
//! This crate is the *timing layer*: most users should drive it through
//! the `aimc-platform` facade — `Platform::builder()...build()?.session()`
//! compiles the mapping once and `Session::run`/`Session::headline` wrap
//! [`simulate`] and [`Headline::compute`] with per-batch caching and the
//! unified error type. The free functions below remain the layer API the
//! facade (and anything embedding just this layer) is built on.
//!
//! ## Example (layer-level API)
//! ```no_run
//! use aimc_core::{map_network, ArchConfig, MappingStrategy};
//! use aimc_dnn::resnet18;
//! use aimc_runtime::{simulate, AreaModel, EnergyModel, Headline};
//!
//! let graph = resnet18(256, 256, 1000);
//! let arch = ArchConfig::paper();
//! let mapping = map_network(&graph, &arch, MappingStrategy::OnChipResiduals).unwrap();
//! let report = simulate(&graph, &mapping, &arch, 16).unwrap();
//! let headline = Headline::compute(
//!     &mapping, &arch, &report,
//!     &EnergyModel::default(), &AreaModel::default(),
//! );
//! println!("{}", headline.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod pipeline;
mod power;
pub mod report;
pub mod trace;

pub use analysis::{
    group_area_efficiency, link_loads, GroupEfficiency, Headline, LinkLoad, Waterfall,
};
pub use pipeline::{simulate, simulate_with, ClusterBreakdown, FireRecord, RunReport, SimError};
pub use power::{AreaModel, ClusterVariant, EnergyBreakdown, EnergyModel, EnergyTallies};
