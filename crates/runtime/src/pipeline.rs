//! Self-timed pipelined execution of a [`SystemMapping`] on the event-driven
//! platform simulator (Sec. IV-3/5 of the paper).
//!
//! ## Execution semantics
//!
//! The unit of flow is the *chunk* (a W-slice of one image, Sec. IV-4);
//! a batch of `B` images is a stream of `B × chunks_per_image` chunks per
//! stage. Every stage lane (replication copy) is an actor that fires its
//! next owned chunk when — exactly the three conditions of Sec. IV-5 —
//!
//! 1. all inputs for the chunk have been DMA-delivered to its L1,
//! 2. its consumers have buffer credit (it may run at most two chunks ahead
//!    of demand; skip edges get a two-image residual window),
//! 3. its IMA/CORES are free (the previous chunk's *service* is done —
//!    IMA and CORES overlap across chunks, so service is their max while
//!    chunk latency is their sum).
//!
//! Completed chunks are pushed to consumers as DMA bursts over the
//! contention-modeled NoC; skip (residual) tensors take two legs through
//! their assigned storage (HBM or a spare cluster's L1, Sec. V-4), with the
//! read leg issued on demand as the consuming chunk's main input lands.

use crate::power::EnergyTallies;
use aimc_core::{stage_chunk_timing, ArchConfig, EdgeKind, ResidualRoute, SystemMapping};
use aimc_dnn::Graph;
use aimc_noc::{Endpoint, Noc, TxnKind};
use aimc_sim::{
    stats::{Activity, ActivityTracker},
    Cycles, EventQueue, SimTime,
};

/// Extra per-chunk orchestration cycles (DMA descriptor programming + event
/// waits) on top of the kernel-internal setup costs.
const CHUNK_SYNC_CYCLES: u64 = 100;
/// Skip-edge credit in *consumer images* (the residual storage window).
const SKIP_SLACK_IMAGES: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    TryFire { stage: u32, lane: u32 },
    ChunkDone { stage: u32, lane: u32, chunk: u64 },
    Delivered { stage: u32, edge: u32, pchunk: u64 },
    SkipStored { stage: u32, edge: u32, pchunk: u64 },
    SkipReadDone { stage: u32, edge: u32, cchunk: u64 },
    FinalDelivered { chunk: u64 },
}

struct EdgeRt {
    from: usize,
    bytes_per_cchunk: usize,
    transfers: usize,
    halo: u64,
    kind: EdgeKind,
    cp: u64, // producer chunks/image
    cc: u64, // consumer chunks/image
    /// Stream credit window in consumer chunks: two buffered tiles per lane
    /// on both sides of the edge.
    slack: u64,
    /// Byte amplification of HBM staging for skip edges: a W-slice tile of a
    /// CHW-layout tensor is non-contiguous in DRAM (one `tile_w`-byte run
    /// per (c, h) pair), so the channel moves whole 64 B beats per run —
    /// `min(64, W) / tile_w` more bytes than the tile holds. Spare-cluster
    /// staging packs tiles contiguously (amp = 1), which is precisely the
    /// Sec. V-4 advantage.
    hbm_amp: usize,
    delivered: Vec<bool>,
    watermark: i64,
    // Skip-edge state:
    stored: Vec<bool>,
    stored_watermark: i64,
    skip_delivered: Vec<bool>,
    next_skip_request: u64,
}

impl EdgeRt {
    /// Highest producer chunk (global) the consumer chunk `c` depends on.
    fn required(&self, cchunk: u64) -> u64 {
        let img = cchunk / self.cc;
        let jl = cchunk % self.cc;
        let r = (((jl + 1) * self.cp).div_ceil(self.cc) - 1 + self.halo).min(self.cp - 1);
        img * self.cp + r
    }

    fn stream_ready(&self, cchunk: u64) -> bool {
        self.watermark >= self.required(cchunk) as i64
    }

    fn advance(marks: &mut [bool], watermark: &mut i64, chunk: u64) {
        if (chunk as usize) < marks.len() {
            marks[chunk as usize] = true;
        }
        while ((*watermark + 1) as usize) < marks.len() && marks[(*watermark + 1) as usize] {
            *watermark += 1;
        }
    }
}

struct LaneRt {
    next_chunk: u64,
    free_at: SimTime,
    last_busy_end: SimTime,
    fired_any: bool,
    analog_busy: SimTime,
    digital_busy: SimTime,
}

struct StageRt {
    lanes: Vec<LaneRt>,
    edges: Vec<EdgeRt>,
    consumers: Vec<(usize, usize)>, // (consumer stage, edge index there)
    total_chunks: u64,
    next_fire: u64,
    service: SimTime,
    latency: SimTime,
    analog_time: SimTime,
    digital_time: SimTime,
    sync_display: SimTime,
    core_cycles_per_chunk: u64,
    /// Expected DMA time of one chunk's inputs (bytes over the 64 B/cycle
    /// links plus per-hop latency): the cap on how much of an input-wait is
    /// attributed to *communication*; anything beyond is upstream starvation
    /// or backpressure and counts as *sleep* (the paper's head/tail idling).
    expected_comm_per_chunk: SimTime,
}

/// Per-cluster execution-time breakdown row (Fig. 5B/C/D).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBreakdown {
    /// Physical cluster id (pipeline order).
    pub cluster: usize,
    /// Stage the cluster belongs to.
    pub stage_name: String,
    /// Fig. 7 layer group.
    pub group: usize,
    /// Time computing (IMA and/or CORES).
    pub compute: SimTime,
    /// Time blocked on data movement.
    pub communication: SimTime,
    /// Per-chunk orchestration time.
    pub synchronization: SimTime,
    /// Idle (head/tail of pipeline, backpressure).
    pub sleep: SimTime,
    /// Whether the cluster's compute is analog-dominated (green vs red bars
    /// in Fig. 5).
    pub analog_bound: bool,
}

/// One chunk execution, for timeline reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireRecord {
    /// Stage id in the mapping.
    pub stage: u32,
    /// Lane within the stage.
    pub lane: u32,
    /// Global chunk index (image-major).
    pub chunk: u64,
    /// Service start.
    pub start: SimTime,
    /// Service end (lane free again).
    pub end: SimTime,
}

/// Results of one pipelined batch execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Images in the batch.
    pub batch: usize,
    /// End-to-end makespan (first input chunk to last output at HBM).
    pub makespan: SimTime,
    /// Completion time of each image at the network output.
    pub image_completions: Vec<SimTime>,
    /// Median steady-state inter-image interval.
    pub steady_interval: SimTime,
    /// Nominal DNN operations executed (2×MACs × batch).
    pub nominal_ops: u64,
    /// Useful crossbar operations (occupied cells only).
    pub useful_ops: u64,
    /// Executed crossbar operations (full arrays, incl. idle cells).
    pub executed_ops: u64,
    /// Per-cluster activity breakdown, pipeline order.
    pub clusters: Vec<ClusterBreakdown>,
    /// Energy-relevant activity tallies.
    pub tallies: EnergyTallies,
    /// Busy time of the HBM controller.
    pub hbm_busy: SimTime,
    /// Bytes through the HBM controller.
    pub hbm_bytes: u64,
    /// Simulator events processed (cost metric).
    pub events: u64,
    /// Every chunk execution, in fire order (timeline reconstruction).
    pub fires: Vec<FireRecord>,
}

impl RunReport {
    /// Nominal throughput in TOPS over the makespan.
    pub fn tops(&self) -> f64 {
        self.nominal_ops as f64 / self.makespan.as_s_f64() / 1e12
    }

    /// Steady-state images per second (1 / median inter-image interval).
    pub fn images_per_s(&self) -> f64 {
        if self.steady_interval == SimTime::ZERO {
            self.batch as f64 / self.makespan.as_s_f64()
        } else {
            1.0 / self.steady_interval.as_s_f64()
        }
    }

    /// Crossbar-executed TOPS (full-array ops over makespan) — the
    /// device-centric convention discussed in DESIGN.md §7.
    pub fn tops_executed(&self) -> f64 {
        self.executed_ops as f64 / self.makespan.as_s_f64() / 1e12
    }
}

/// Simulates one batch through the mapped pipeline.
///
/// # Panics
/// Panics if `batch == 0` or the mapping/graph disagree.
pub fn simulate(
    graph: &Graph,
    mapping: &SystemMapping,
    arch: &ArchConfig,
    batch: usize,
) -> RunReport {
    assert!(batch > 0, "batch must be positive");
    let n_stages = mapping.stages.len();
    let mut noc = Noc::new(arch.noc.clone());
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let freq = arch.frequency;
    let sync_extra = freq.cycles_to_time(Cycles(CHUNK_SYNC_CYCLES));

    // ---- Build runtime state -------------------------------------------------
    let mut stages: Vec<StageRt> = Vec::with_capacity(n_stages);
    for s in mapping.stages() {
        let t = stage_chunk_timing(s, arch);
        let total_chunks = (batch * s.tiling.chunks_per_image) as u64;
        let edges = s
            .producers
            .iter()
            .map(|e| {
                let ptiling = &mapping.stages[e.from].tiling;
                let cp = ptiling.chunks_per_image as u64;
                let cc = s.tiling.chunks_per_image as u64;
                let total_p = (cp * batch as u64) as usize;
                let is_skip = matches!(e.kind, EdgeKind::Skip { .. });
                let hbm_amp =
                    (ptiling.ofm.w.min(arch.noc.hbm.width_bytes) / ptiling.out_tile_w).max(1);
                EdgeRt {
                    from: e.from,
                    bytes_per_cchunk: e.bytes_per_chunk,
                    transfers: e.transfers,
                    halo: e.halo_chunks as u64,
                    kind: e.kind,
                    cp,
                    cc,
                    slack: 2 * s.lanes as u64 + 2 * mapping.stages[e.from].lanes as u64,
                    hbm_amp,
                    delivered: vec![false; total_p],
                    watermark: -1,
                    stored: if is_skip {
                        vec![false; total_p]
                    } else {
                        vec![]
                    },
                    stored_watermark: -1,
                    skip_delivered: if is_skip {
                        vec![false; total_chunks as usize]
                    } else {
                        vec![]
                    },
                    next_skip_request: 0,
                }
            })
            .collect();
        let sync_display = if s.digital_per_chunk.is_empty() {
            sync_extra
        } else {
            sync_extra + freq.cycles_to_time(Cycles(arch.cluster.kernel_launch_cycles))
        };
        let comm_cycles: u64 = s
            .producers
            .iter()
            .map(|e| (e.bytes_per_chunk / 64) as u64 + 40)
            .sum();
        let expected_comm_per_chunk = freq.cycles_to_time(Cycles(comm_cycles));
        let core_cycles_per_chunk = if s.digital_per_chunk.is_empty() {
            0
        } else {
            aimc_cluster::DigitalEngine::new(
                arch.cluster.n_cores,
                arch.cluster.kernel_launch_cycles,
                freq,
            )
            .run_all(&s.digital_per_chunk)
            .core_cycles
        };
        stages.push(StageRt {
            lanes: (0..s.lanes)
                .map(|l| LaneRt {
                    next_chunk: l as u64,
                    free_at: SimTime::ZERO,
                    last_busy_end: SimTime::ZERO,
                    fired_any: false,
                    analog_busy: SimTime::ZERO,
                    digital_busy: SimTime::ZERO,
                })
                .collect(),
            edges,
            consumers: vec![],
            total_chunks,
            next_fire: 0,
            service: t.service + sync_extra,
            latency: t.latency + sync_extra,
            analog_time: t.analog,
            digital_time: t.digital,
            sync_display: sync_display.min(t.service + sync_extra),
            core_cycles_per_chunk,
            expected_comm_per_chunk,
        });
    }
    // Reverse edges.
    for sid in 0..n_stages {
        for (eidx, e) in mapping.stages[sid].producers.iter().enumerate() {
            stages[e.from].consumers.push((sid, eidx));
        }
    }

    // Activity trackers per physical cluster.
    let n_clusters = mapping.n_clusters_used;
    let mut trackers: Vec<ActivityTracker> = (0..n_clusters)
        .map(|_| ActivityTracker::new(SimTime::ZERO))
        .collect();

    let mut tallies = EnergyTallies::default();
    let final_stage = *mapping.node_final_stage.last().expect("mapping has nodes");
    let final_chunks_per_image = mapping.stages[final_stage].tiling.chunks_per_image as u64;
    let mut final_done_per_image = vec![0u64; batch];
    let mut image_completions = vec![SimTime::ZERO; batch];

    let mut fires: Vec<FireRecord> = Vec::new();

    // Kick off every lane.
    for (sid, s) in stages.iter().enumerate() {
        for l in 0..s.lanes.len() {
            queue.push(
                SimTime::ZERO,
                Ev::TryFire {
                    stage: sid as u32,
                    lane: l as u32,
                },
            );
        }
    }

    // ---- Helper closures as macros (borrow-checker friendly) -----------------
    macro_rules! lane_rep {
        ($mapping:expr, $sid:expr, $lane:expr) => {{
            let st = &$mapping.stages[$sid];
            if st.lane_clusters == 0 {
                None
            } else {
                Some(st.lane($lane % st.lanes)[0])
            }
        }};
    }

    // ---- Event loop -----------------------------------------------------------
    while let Some((now, ev)) = queue.pop() {
        match ev {
            Ev::TryFire { stage, lane } => {
                let sid = stage as usize;
                let l = lane as usize;
                // Structured as a breakable block: every arm exits after one
                // pass; continuation is always via a re-queued TryFire.
                #[allow(clippy::never_loop)]
                loop {
                    let k = stages[sid].lanes[l].next_chunk;
                    if k >= stages[sid].total_chunks {
                        break;
                    }
                    if stages[sid].lanes[l].free_at > now {
                        // Re-check when the lane frees up.
                        let at = stages[sid].lanes[l].free_at;
                        queue.push(at, Ev::TryFire { stage, lane });
                        break;
                    }
                    // Input readiness.
                    let mut input_ready = true;
                    for e in &stages[sid].edges {
                        let ok = match e.kind {
                            EdgeKind::Stream => e.stream_ready(k),
                            EdgeKind::Skip { .. } => e.skip_delivered[k as usize],
                        };
                        if !ok {
                            input_ready = false;
                            break;
                        }
                    }
                    if !input_ready {
                        break; // a Delivered event will retry us
                    }
                    // Consumer credit.
                    let mut credit = true;
                    for &(cid, eidx) in &stages[sid].consumers {
                        let cons = &stages[cid];
                        if cons.next_fire >= cons.total_chunks {
                            continue;
                        }
                        let e = &cons.edges[eidx];
                        let slack = match e.kind {
                            EdgeKind::Stream => e.slack,
                            EdgeKind::Skip { .. } => SKIP_SLACK_IMAGES * e.cc,
                        };
                        let horizon = (cons.next_fire + slack).min(cons.total_chunks - 1);
                        if k > e.required(horizon) {
                            credit = false;
                            break;
                        }
                    }
                    if !credit {
                        break; // a consumer fire will retry us
                    }

                    // ---- Fire chunk k on (sid, l) -----------------------------
                    let st = &mut stages[sid];
                    let service = st.service;
                    let latency = st.latency;
                    let sync_d = st.sync_display;
                    let comm_cap = st.expected_comm_per_chunk;
                    let n_lanes = st.lanes.len() as u64;
                    let ln = &mut st.lanes[l];
                    let start = now;
                    ln.free_at = start + service;
                    ln.next_chunk += n_lanes;
                    ln.fired_any = true;
                    ln.analog_busy += st.analog_time;
                    ln.digital_busy += st.digital_time;
                    let busy_end = start + service;
                    let prev_end = ln.last_busy_end;
                    ln.last_busy_end = busy_end;
                    st.next_fire = st.lanes.iter().map(|x| x.next_chunk).min().unwrap_or(0);
                    fires.push(FireRecord {
                        stage,
                        lane,
                        chunk: k,
                        start,
                        end: busy_end,
                    });
                    queue.push(
                        start + latency,
                        Ev::ChunkDone {
                            stage,
                            lane,
                            chunk: k,
                        },
                    );

                    // Activity attribution on the lane's clusters: waits are
                    // communication up to the expected DMA time of the
                    // chunk's inputs; the remainder is sleep (starvation or
                    // backpressure — the paper's head/tail idling).
                    let mstage = &mapping.stages[sid];
                    if mstage.lane_clusters > 0 {
                        let first_fire = prev_end == SimTime::ZERO && start > SimTime::ZERO;
                        for &c in mstage.lane(l) {
                            let tr = &mut trackers[c];
                            if !first_fire && start > prev_end {
                                let comm_start = start.saturating_sub(comm_cap).max(prev_end);
                                tr.set_state(comm_start, Activity::Communication);
                            }
                            tr.set_state(start, Activity::Synchronization);
                            tr.set_state(start + sync_d, Activity::Compute);
                            tr.set_state(busy_end, Activity::Sleep);
                        }
                    }

                    // Energy tallies: analog MVMs on every split cluster of
                    // the lane, serial core cycles from the kernel model.
                    if let Some(a) = &mstage.analog {
                        tallies.mvms += a.job.n_mvm * mstage.lane_clusters as u64;
                    }
                    tallies.core_cycles += st.core_cycles_per_chunk;

                    // Wake producers (credit freed).
                    for e in 0..stages[sid].edges.len() {
                        let from = stages[sid].edges[e].from;
                        for pl in 0..stages[from].lanes.len() {
                            queue.push(
                                now,
                                Ev::TryFire {
                                    stage: from as u32,
                                    lane: pl as u32,
                                },
                            );
                        }
                    }
                    //

                    // Loop again: the lane might have another ready chunk only
                    // after free_at; the scheduled TryFire handles it.
                    let at = stages[sid].lanes[l].free_at;
                    queue.push(at, Ev::TryFire { stage, lane });
                    break;
                }
            }

            Ev::ChunkDone { stage, lane, chunk } => {
                let sid = stage as usize;
                let consumers = stages[sid].consumers.clone();
                if consumers.is_empty() && sid == final_stage {
                    // Ship the network output to HBM.
                    let bytes = mapping.stages[sid].tiling.out_tile_bytes();
                    let src = lane_rep!(mapping, sid, lane as usize)
                        .map_or(Endpoint::Hbm, Endpoint::Cluster);
                    let done = noc.transfer(now, TxnKind::Write, src, Endpoint::Hbm, bytes);
                    queue.push(done, Ev::FinalDelivered { chunk });
                }
                for (cid, eidx) in consumers {
                    let e = &stages[cid].edges[eidx];
                    let cp = e.cp;
                    let cc = e.cc;
                    let bytes_pp = ((e.bytes_per_cchunk as u64 * cc).div_ceil(cp) as usize).max(1);
                    let transfers = e.transfers.max(1);
                    let kind = e.kind;
                    let src = lane_rep!(mapping, sid, lane as usize)
                        .map_or(Endpoint::Hbm, Endpoint::Cluster);
                    match kind {
                        EdgeKind::Stream => {
                            // Deliver to the consumer lane that will use it.
                            let j0 = (chunk * cc) / cp;
                            let cstage = &mapping.stages[cid];
                            let clane = (j0 % cstage.lanes as u64) as usize;
                            let per = bytes_pp.div_ceil(transfers);
                            let mut done = now;
                            for i in 0..transfers {
                                let dst = if cstage.lane_clusters == 0 {
                                    Endpoint::Hbm
                                } else {
                                    Endpoint::Cluster(cstage.lane(clane)[i % cstage.lane_clusters])
                                };
                                let t = noc.transfer(now, TxnKind::Write, src, dst, per);
                                done = done.max(t);
                            }
                            queue.push(
                                done,
                                Ev::Delivered {
                                    stage: cid as u32,
                                    edge: eidx as u32,
                                    pchunk: chunk,
                                },
                            );
                        }
                        EdgeKind::Skip { via } => {
                            // First leg: producer -> storage. HBM staging
                            // pays the CHW scatter amplification.
                            let (dst, amp) = match via {
                                ResidualRoute::Hbm => {
                                    (Endpoint::Hbm, stages[cid].edges[eidx].hbm_amp)
                                }
                                ResidualRoute::StorageCluster(c) => (Endpoint::Cluster(c), 1),
                            };
                            let done = noc.transfer(now, TxnKind::Write, src, dst, bytes_pp * amp);
                            queue.push(
                                done,
                                Ev::SkipStored {
                                    stage: cid as u32,
                                    edge: eidx as u32,
                                    pchunk: chunk,
                                },
                            );
                        }
                    }
                }
            }

            Ev::Delivered {
                stage,
                edge,
                pchunk,
            } => {
                let sid = stage as usize;
                {
                    let e = &mut stages[sid].edges[edge as usize];
                    let (marks, wm) = (&mut e.delivered, &mut e.watermark);
                    EdgeRt::advance(marks, wm, pchunk);
                }
                request_skip_reads(sid, &mut stages, mapping, &mut noc, &mut queue, now);
                for l in 0..stages[sid].lanes.len() {
                    queue.push(
                        now,
                        Ev::TryFire {
                            stage,
                            lane: l as u32,
                        },
                    );
                }
            }

            Ev::SkipStored {
                stage,
                edge,
                pchunk,
            } => {
                let sid = stage as usize;
                {
                    let e = &mut stages[sid].edges[edge as usize];
                    let (marks, wm) = (&mut e.stored, &mut e.stored_watermark);
                    EdgeRt::advance(marks, wm, pchunk);
                }
                request_skip_reads(sid, &mut stages, mapping, &mut noc, &mut queue, now);
            }

            Ev::SkipReadDone {
                stage,
                edge,
                cchunk,
            } => {
                let sid = stage as usize;
                stages[sid].edges[edge as usize].skip_delivered[cchunk as usize] = true;
                let lanes = stages[sid].lanes.len() as u64;
                queue.push(
                    now,
                    Ev::TryFire {
                        stage,
                        lane: (cchunk % lanes) as u32,
                    },
                );
            }

            Ev::FinalDelivered { chunk } => {
                let img = (chunk / final_chunks_per_image) as usize;
                final_done_per_image[img] += 1;
                if final_done_per_image[img] == final_chunks_per_image {
                    image_completions[img] = now;
                }
            }
        }
    }

    let makespan = queue.now();

    // Close activity trackers.
    for (sid, s) in mapping.stages().iter().enumerate() {
        for l in 0..s.lanes {
            let end = stages[sid].lanes[l].last_busy_end;
            if s.lane_clusters > 0 {
                for &c in s.lane(l) {
                    let tr = &mut trackers[c];
                    let _ = end; // state already Sleep after last chunk
                    let _ = tr;
                }
            }
        }
    }
    let mut clusters = Vec::with_capacity(n_clusters);
    for (sid, s) in mapping.stages().iter().enumerate() {
        for l in 0..s.lanes {
            if s.lane_clusters == 0 {
                continue;
            }
            let analog_bound = stages[sid].lanes[l].analog_busy
                >= stages[sid].lanes[l].digital_busy
                && stages[sid].lanes[l].analog_busy > SimTime::ZERO;
            for &c in s.lane(l) {
                let mut tr = trackers[c].clone();
                tr.finish(makespan);
                clusters.push(ClusterBreakdown {
                    cluster: c,
                    stage_name: s.name.clone(),
                    group: s.group,
                    compute: tr.time_in(Activity::Compute),
                    communication: tr.time_in(Activity::Communication),
                    synchronization: tr.time_in(Activity::Synchronization),
                    sleep: tr.time_in(Activity::Sleep),
                    analog_bound,
                });
            }
        }
    }
    for &c in &mapping.residuals.storage_clusters {
        let mut tr = trackers[c].clone();
        tr.finish(makespan);
        clusters.push(ClusterBreakdown {
            cluster: c,
            stage_name: "residual-storage".into(),
            group: 5,
            compute: tr.time_in(Activity::Compute),
            communication: tr.time_in(Activity::Communication),
            synchronization: tr.time_in(Activity::Synchronization),
            sleep: tr.time_in(Activity::Sleep),
            analog_bound: false,
        });
    }
    clusters.sort_by_key(|c| c.cluster);

    // Ops accounting.
    let mut useful_ops = 0u64;
    let mut executed_ops = 0u64;
    for (sid, s) in mapping.stages().iter().enumerate() {
        if let Some(a) = &s.analog {
            let fires: u64 = stages[sid]
                .lanes
                .iter()
                .map(|l| l.next_chunk / stages[sid].lanes.len().max(1) as u64)
                .sum::<u64>()
                .min(stages[sid].total_chunks);
            let per_chunk_useful =
                2 * (a.split.rows_total * a.split.cols_total) as u64 * a.job.n_mvm;
            let full = (arch.cluster.ima.xbar.rows * arch.cluster.ima.xbar.cols) as u64;
            let per_chunk_exec = 2 * full * a.job.n_mvm * a.split.imas() as u64;
            useful_ops += per_chunk_useful * fires;
            executed_ops += per_chunk_exec * fires;
        }
    }

    // Interconnect energy: bytes × levels crossed, plus HBM bytes.
    let mut byte_hops = 0u64;
    for level in 1..=arch.noc.n_levels() {
        byte_hops += noc_level_bytes(&noc, arch, level);
    }
    tallies.noc_byte_hops = byte_hops;
    tallies.hbm_bytes = noc.hbm_bytes();
    tallies.cluster_seconds = mapping.n_clusters_used as f64 * makespan.as_s_f64();

    // Steady-state interval: median of inter-image completion gaps.
    let mut comps = image_completions.clone();
    comps.sort();
    let mut gaps: Vec<u64> = comps
        .windows(2)
        .map(|w| (w[1].saturating_sub(w[0])).as_ps())
        .collect();
    gaps.sort_unstable();
    let steady = if gaps.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_ps(gaps[gaps.len() / 2])
    };

    RunReport {
        batch,
        makespan,
        image_completions,
        steady_interval: steady,
        nominal_ops: graph.total_ops() * batch as u64,
        useful_ops,
        executed_ops,
        clusters,
        tallies,
        hbm_busy: noc.hbm_busy(),
        hbm_bytes: noc.hbm_bytes(),
        events: queue.events_processed(),
        fires,
    }
}

/// Sums payload bytes over all links of one tree level.
fn noc_level_bytes(noc: &Noc, arch: &ArchConfig, level: usize) -> u64 {
    let entities = if level == 1 {
        arch.noc.n_clusters()
    } else {
        arch.noc.routers_at_level(level - 1)
    };
    let mut total = 0;
    for child in 0..entities {
        total += noc.link_stats(aimc_noc::LinkId::Up { level, child }).bytes;
        total += noc
            .link_stats(aimc_noc::LinkId::Down { level, child })
            .bytes;
    }
    total
}

/// Issues on-demand read legs for skip edges whose consumer chunks became
/// main-input-ready (Sec. V-4: residuals are fetched from storage just in
/// time for the joining chunk).
fn request_skip_reads(
    sid: usize,
    stages: &mut [StageRt],
    mapping: &SystemMapping,
    noc: &mut Noc,
    queue: &mut EventQueue<Ev>,
    now: SimTime,
) {
    let n_edges = stages[sid].edges.len();
    let has_skip = (0..n_edges).any(|e| {
        !stages[sid].edges[e].stored.is_empty()
            || matches!(stages[sid].edges[e].kind, EdgeKind::Skip { .. })
    });
    if !has_skip {
        return;
    }
    let total = stages[sid].total_chunks;
    let lanes = stages[sid].lanes.len() as u64;
    for eidx in 0..n_edges {
        let EdgeKind::Skip { via } = stages[sid].edges[eidx].kind else {
            continue;
        };
        loop {
            let j = stages[sid].edges[eidx].next_skip_request;
            if j >= total {
                break;
            }
            // Window: don't prefetch residuals more than the storage window
            // ahead of consumption.
            if j >= stages[sid].next_fire + SKIP_SLACK_IMAGES * stages[sid].edges[eidx].cc {
                break;
            }
            // All stream inputs for chunk j ready?
            let streams_ready = (0..n_edges).all(|k| {
                let e = &stages[sid].edges[k];
                match e.kind {
                    EdgeKind::Stream => e.stream_ready(j),
                    EdgeKind::Skip { .. } => true,
                }
            });
            if !streams_ready {
                break;
            }
            // First leg (store) complete for the required producer chunks?
            let e = &stages[sid].edges[eidx];
            if e.stored_watermark < e.required(j) as i64 {
                break;
            }
            // Issue the read leg.
            let cstage = &mapping.stages[sid];
            let clane = (j % lanes) as usize;
            let src = if cstage.lane_clusters == 0 {
                Endpoint::Hbm
            } else {
                Endpoint::Cluster(cstage.lane(clane)[0])
            };
            let (dst, amp) = match via {
                ResidualRoute::Hbm => (Endpoint::Hbm, stages[sid].edges[eidx].hbm_amp),
                ResidualRoute::StorageCluster(c) => (Endpoint::Cluster(c), 1),
            };
            let bytes = stages[sid].edges[eidx].bytes_per_cchunk * amp;
            let done = noc.transfer(now, TxnKind::Read, src, dst, bytes);
            queue.push(
                done,
                Ev::SkipReadDone {
                    stage: sid as u32,
                    edge: eidx as u32,
                    cchunk: j,
                },
            );
            stages[sid].edges[eidx].next_skip_request += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimc_core::{map_network, MappingStrategy};
    use aimc_dnn::{resnet18, ConvCfg, GraphBuilder, Shape};

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 32, 32));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 16, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(16, 16, 1));
        let r = b.residual("r", c1, c0, None);
        let p = b.global_avgpool("gap", r);
        let _ = b.linear("fc", p, 10);
        b.finish()
    }

    #[test]
    fn small_network_completes_all_images() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8); // 32 clusters
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 4);
        assert_eq!(r.image_completions.len(), 4);
        assert!(r.image_completions.iter().all(|&t| t > SimTime::ZERO));
        assert!(r.makespan >= *r.image_completions.iter().max().unwrap());
        assert!(r.events > 0);
    }

    #[test]
    fn image_completions_are_monotonic() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 6);
        for w in r.image_completions.windows(2) {
            assert!(
                w[1] >= w[0],
                "completions must be ordered: {:?}",
                r.image_completions
            );
        }
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r1 = simulate(&g, &m, &arch, 1);
        let r8 = simulate(&g, &m, &arch, 8);
        // The graph is dominated by one stage (c1 ≈ 134 of 157 µs), so the
        // steady-state bound is ≈ 8×134 µs; the pipeline must overlap the
        // remaining stages (strictly below 8× the single-image latency) and
        // must not be slower than serial.
        assert!(
            r8.makespan.as_ps() < (7.6 * r1.makespan.as_ps() as f64) as u64,
            "batch 8 {} vs 1 {}",
            r8.makespan,
            r1.makespan
        );
        assert!(r8.makespan.as_ps() > 4 * r1.makespan.as_ps());
    }

    #[test]
    fn deterministic() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let a = simulate(&g, &m, &arch, 3);
        let b = simulate(&g, &m, &arch, 3);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.image_completions, b.image_completions);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn breakdown_covers_makespan_per_cluster() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2);
        assert!(!r.clusters.is_empty());
        for c in &r.clusters {
            let sum = c.compute + c.communication + c.synchronization + c.sleep;
            assert_eq!(
                sum, r.makespan,
                "cluster {} breakdown does not cover makespan",
                c.cluster
            );
        }
    }

    #[test]
    fn ops_accounting_is_consistent() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2);
        assert_eq!(r.nominal_ops, g.total_ops() * 2);
        assert!(r.useful_ops > 0);
        assert!(r.executed_ops >= r.useful_ops);
        assert!(r.tops() > 0.0);
        assert!(r.tops_executed() >= r.tops() * 0.1);
    }

    #[test]
    fn hbm_sees_input_traffic() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2);
        // At least the two input images (3*32*32 each) cross the HBM.
        assert!(r.hbm_bytes >= 2 * 3 * 32 * 32, "hbm bytes {}", r.hbm_bytes);
        assert!(r.hbm_busy > SimTime::ZERO);
    }

    #[test]
    fn resnet18_batch2_runs_on_paper_platform() {
        let g = resnet18(256, 256, 1000);
        let arch = ArchConfig::paper();
        let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r = simulate(&g, &m, &arch, 2);
        assert_eq!(r.image_completions.len(), 2);
        assert!(r.image_completions[1] > SimTime::ZERO);
        // Two images through a balanced pipeline: single-digit milliseconds.
        assert!(
            r.makespan < SimTime::from_us(20_000),
            "makespan {}",
            r.makespan
        );
        assert!(r.tops() > 1.0, "tops {}", r.tops());
    }

    #[test]
    fn on_chip_residuals_outperform_hbm_residuals() {
        let g = resnet18(256, 256, 1000);
        let arch = ArchConfig::paper();
        let m_hbm = map_network(&g, &arch, MappingStrategy::Balanced).unwrap();
        let m_l1 = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r_hbm = simulate(&g, &m_hbm, &arch, 4);
        let r_l1 = simulate(&g, &m_l1, &arch, 4);
        assert!(
            r_l1.makespan < r_hbm.makespan,
            "on-chip {} vs HBM {}",
            r_l1.makespan,
            r_hbm.makespan
        );
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn rejects_zero_batch() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        simulate(&g, &m, &arch, 0);
    }
}
