//! Self-timed pipelined execution of a [`SystemMapping`] on the event-driven
//! platform simulator (Sec. IV-3/5 of the paper).
//!
//! ## Execution semantics
//!
//! The unit of flow is the *chunk* (a W-slice of one image, Sec. IV-4);
//! a batch of `B` images is a stream of `B × chunks_per_image` chunks per
//! stage. Every stage lane (replication copy) is an actor that fires its
//! next owned chunk when — exactly the three conditions of Sec. IV-5 —
//!
//! 1. all inputs for the chunk have been DMA-delivered to its L1,
//! 2. its consumers have buffer credit (it may run at most two chunks ahead
//!    of demand; skip edges get a two-image residual window),
//! 3. its IMA/CORES are free (the previous chunk's *service* is done —
//!    IMA and CORES overlap across chunks, so service is their max while
//!    chunk latency is their sum).
//!
//! Completed chunks are pushed to consumers as DMA bursts over the
//! hop-by-hop [`Fabric`]; skip (residual) tensors take two legs through
//! their assigned storage (HBM or a spare cluster's L1, Sec. V-4), with the
//! read leg issued on demand as the consuming chunk's main input lands.
//!
//! ## Sharded engine: conservative windows
//!
//! Each stage owns a private event queue and advances through global time in
//! lockstep *windows* of [`LOOKAHEAD_CYCLES`] cycles. Within a window a
//! stage touches only its own state plus immutable configuration and a
//! snapshot of every other stage's progress taken at the window barrier;
//! all cross-stage effects are buffered and applied at the barrier:
//!
//! * **DMA bursts** enter the [`Fabric`] one window after issue (the DMA
//!   descriptor-programming latency) and come back as exactly-timed
//!   delivery events;
//! * **credit wakes** (a consumer fired, freeing producer credit) land one
//!   window later (the credit-return latency), by which point the barrier
//!   snapshot already reflects the fire.
//!
//! Because stages never read each other's live state, the window's work
//! items are independent and can run on [`aimc_parallel`] workers — and the
//! merge (sorted transaction injection, sorted fire records, summed
//! tallies) is a pure function of per-stage results, so a run's
//! [`RunReport`] is **bit-identical** for any [`Parallelism`] choice.
//! `simulate` is the serial entry point; [`simulate_with`] picks the worker
//! pool. The window is not free fidelity-wise: issue and wake latencies
//! shift DMA traffic by 4 cycles versus a zero-lookahead engine, which is
//! both physically honest and well under the ~100-cycle chunk
//! synchronization overhead.

use crate::power::EnergyTallies;
use aimc_core::{stage_chunk_timing, ArchConfig, EdgeKind, ResidualRoute, SystemMapping};
use aimc_dnn::Graph;
use aimc_noc::{Endpoint, Fabric, FabricReport, TxnKind};
use aimc_parallel::Parallelism;
use aimc_sim::{
    stats::{Activity, ActivityTracker},
    Cycles, OrderedEventQueue, SimTime,
};
use std::fmt;
use std::sync::Mutex;

/// Extra per-chunk orchestration cycles (DMA descriptor programming + event
/// waits) on top of the kernel-internal setup costs.
const CHUNK_SYNC_CYCLES: u64 = 100;
/// Skip-edge credit in *consumer images* (the residual storage window).
const SKIP_SLACK_IMAGES: u64 = 2;
/// Conservative lookahead window in core cycles: the DMA-issue latency (a
/// completed chunk's burst enters the network this many cycles after the
/// descriptor is programmed) and the credit-return latency (a consumer's
/// progress becomes visible to producers after the same delay). Both are
/// physical pipeline latencies, and together they guarantee that nothing a
/// stage does inside a window can affect another stage within that same
/// window — the lookahead that makes per-window stage sharding exact.
const LOOKAHEAD_CYCLES: u64 = 4;

/// Per-stage events. The `Ord` implementation (variant order, then fields)
/// is part of the determinism contract: equal-time events drain in a fixed
/// order — deliveries and state updates first, completions next, fire
/// attempts last so they observe every update at their timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Delivered { edge: u32, pchunk: u64 },
    SkipStored { edge: u32, pchunk: u64 },
    SkipReadDone { edge: u32, cchunk: u64 },
    ChunkDone { lane: u32, chunk: u64 },
    TryFire { lane: u32 },
}

/// What to do when a fabric transaction (all its parts) completes.
#[derive(Debug, Clone, Copy)]
enum Deliver {
    /// Push `ev` into `stage`'s queue at the completion time.
    Edge { stage: u32, ev: Ev },
    /// A final output tile reached the HBM.
    Final { chunk: u64 },
}

/// A buffered DMA request: one logical transfer of `parts` bursts that
/// resolves to a single delivery event at the latest part completion.
#[derive(Debug)]
struct TxnReq {
    issue: SimTime,
    kind: TxnKind,
    src: Endpoint,
    parts: Vec<(Endpoint, usize)>,
    deliver: Deliver,
}

#[derive(Debug)]
struct Pending {
    remaining: u32,
    max_t: SimTime,
    deliver: Deliver,
}

/// Immutable per-edge configuration, readable from any stage's worker.
struct EdgeCfg {
    from: usize,
    bytes_per_cchunk: usize,
    transfers: usize,
    halo: u64,
    kind: EdgeKind,
    cp: u64, // producer chunks/image
    cc: u64, // consumer chunks/image
    /// Stream credit window in consumer chunks: two buffered tiles per lane
    /// on both sides of the edge.
    slack: u64,
    /// Byte amplification of HBM staging for skip edges: a W-slice tile of a
    /// CHW-layout tensor is non-contiguous in DRAM (one `tile_w`-byte run
    /// per (c, h) pair), so the channel moves whole 64 B beats per run —
    /// `min(64, W) / tile_w` more bytes than the tile holds. Spare-cluster
    /// staging packs tiles contiguously (amp = 1), which is precisely the
    /// Sec. V-4 advantage.
    hbm_amp: usize,
}

impl EdgeCfg {
    /// Highest producer chunk (global) the consumer chunk `c` depends on.
    fn required(&self, cchunk: u64) -> u64 {
        let img = cchunk / self.cc;
        let jl = cchunk % self.cc;
        let r = (((jl + 1) * self.cp).div_ceil(self.cc) - 1 + self.halo).min(self.cp - 1);
        img * self.cp + r
    }
}

/// Mutable per-edge state, owned by the consuming stage.
struct EdgeState {
    delivered: Vec<bool>,
    watermark: i64,
    // Skip-edge state:
    stored: Vec<bool>,
    stored_watermark: i64,
    skip_delivered: Vec<bool>,
    next_skip_request: u64,
}

impl EdgeState {
    fn advance(marks: &mut [bool], watermark: &mut i64, chunk: u64) {
        if (chunk as usize) < marks.len() {
            marks[chunk as usize] = true;
        }
        while ((*watermark + 1) as usize) < marks.len() && marks[(*watermark + 1) as usize] {
            *watermark += 1;
        }
    }
}

struct LaneRt {
    next_chunk: u64,
    free_at: SimTime,
    last_busy_end: SimTime,
    fired_any: bool,
    analog_busy: SimTime,
    digital_busy: SimTime,
}

/// Immutable per-stage configuration shared across all workers.
struct StageCfg {
    total_chunks: u64,
    n_lanes: usize,
    lane_clusters: usize,
    service: SimTime,
    latency: SimTime,
    analog_time: SimTime,
    digital_time: SimTime,
    sync_display: SimTime,
    core_cycles_per_chunk: u64,
    /// Analog MVMs tallied per fire (0 for digital-only stages).
    mvms_per_fire: u64,
    /// Expected DMA time of one chunk's inputs (bytes over the 64 B/cycle
    /// links plus per-hop latency): the cap on how much of an input-wait is
    /// attributed to *communication*; anything beyond is upstream starvation
    /// or backpressure and counts as *sleep* (the paper's head/tail idling).
    expected_comm_per_chunk: SimTime,
    edges: Vec<EdgeCfg>,
    consumers: Vec<(usize, usize)>, // (consumer stage, edge index there)
    /// Physical cluster ids in lane order (tracker slots align with this).
    clusters: Vec<usize>,
    /// Tracker slots of each lane's clusters.
    lane_slots: Vec<Vec<usize>>,
}

/// Mutable per-stage runtime state; exactly one worker touches it per
/// window.
struct StageState {
    queue: OrderedEventQueue<Ev>,
    lanes: Vec<LaneRt>,
    edges: Vec<EdgeState>,
    next_fire: u64,
    trackers: Vec<ActivityTracker>,
    fires: Vec<FireRecord>,
    mvms: u64,
    core_cycles: u64,
    /// Barrier-buffered DMA requests issued this window.
    txns: Vec<TxnReq>,
    /// Barrier-buffered credit wakes: `(wake time, producer stage)`.
    wakes: Vec<(SimTime, u32)>,
}

/// Per-cluster execution-time breakdown row (Fig. 5B/C/D).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBreakdown {
    /// Physical cluster id (pipeline order).
    pub cluster: usize,
    /// Stage the cluster belongs to.
    pub stage_name: String,
    /// Fig. 7 layer group.
    pub group: usize,
    /// Time computing (IMA and/or CORES).
    pub compute: SimTime,
    /// Time blocked on data movement.
    pub communication: SimTime,
    /// Per-chunk orchestration time.
    pub synchronization: SimTime,
    /// Idle (head/tail of pipeline, backpressure).
    pub sleep: SimTime,
    /// Whether the cluster's compute is analog-dominated (green vs red bars
    /// in Fig. 5).
    pub analog_bound: bool,
}

/// One chunk execution, for timeline reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireRecord {
    /// Stage id in the mapping.
    pub stage: u32,
    /// Lane within the stage.
    pub lane: u32,
    /// Global chunk index (image-major).
    pub chunk: u64,
    /// Service start.
    pub start: SimTime,
    /// Service end (lane free again).
    pub end: SimTime,
}

/// A run request the simulator cannot execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run was asked to simulate zero images.
    ZeroBatch,
    /// The mapping does not describe the graph it is being simulated with.
    MappingMismatch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroBatch => write!(f, "batch must be positive"),
            SimError::MappingMismatch(why) => write!(f, "mapping/graph mismatch: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Results of one pipelined batch execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Images in the batch.
    pub batch: usize,
    /// End-to-end makespan (first input chunk to last output at HBM).
    pub makespan: SimTime,
    /// Completion time of each image at the network output.
    pub image_completions: Vec<SimTime>,
    /// Median steady-state inter-image interval.
    pub steady_interval: SimTime,
    /// Nominal DNN operations executed (2×MACs × batch).
    pub nominal_ops: u64,
    /// Useful crossbar operations (occupied cells only).
    pub useful_ops: u64,
    /// Executed crossbar operations (full arrays, incl. idle cells).
    pub executed_ops: u64,
    /// Per-cluster activity breakdown, pipeline order.
    pub clusters: Vec<ClusterBreakdown>,
    /// Energy-relevant activity tallies.
    pub tallies: EnergyTallies,
    /// Busy time of the HBM controller.
    pub hbm_busy: SimTime,
    /// Bytes through the HBM controller.
    pub hbm_bytes: u64,
    /// Simulator events processed across all stage queues and the fabric
    /// (cost metric).
    pub events: u64,
    /// Every chunk execution, sorted by `(start, stage, chunk)` (timeline
    /// reconstruction).
    pub fires: Vec<FireRecord>,
    /// Per-link NoC utilization and peak demand.
    pub fabric: FabricReport,
}

impl RunReport {
    /// Nominal throughput in TOPS over the makespan.
    pub fn tops(&self) -> f64 {
        self.nominal_ops as f64 / self.makespan.as_s_f64() / 1e12
    }

    /// Steady-state images per second (1 / median inter-image interval).
    pub fn images_per_s(&self) -> f64 {
        if self.steady_interval == SimTime::ZERO {
            self.batch as f64 / self.makespan.as_s_f64()
        } else {
            1.0 / self.steady_interval.as_s_f64()
        }
    }

    /// Crossbar-executed TOPS (full-array ops over makespan) — the
    /// device-centric convention discussed in DESIGN.md §7.
    pub fn tops_executed(&self) -> f64 {
        self.executed_ops as f64 / self.makespan.as_s_f64() / 1e12
    }
}

/// Simulates one batch through the mapped pipeline on the calling thread.
///
/// Equivalent to [`simulate_with`] under [`Parallelism::Serial`]; any other
/// parallelism level produces a bit-identical [`RunReport`].
pub fn simulate(
    graph: &Graph,
    mapping: &SystemMapping,
    arch: &ArchConfig,
    batch: usize,
) -> Result<RunReport, SimError> {
    simulate_with(graph, mapping, arch, batch, Parallelism::Serial)
}

fn validate(graph: &Graph, mapping: &SystemMapping, batch: usize) -> Result<(), SimError> {
    if batch == 0 {
        return Err(SimError::ZeroBatch);
    }
    if mapping.stages.is_empty() || mapping.node_final_stage.is_empty() {
        return Err(SimError::MappingMismatch("mapping has no stages".into()));
    }
    if mapping.node_final_stage.len() != graph.len() {
        return Err(SimError::MappingMismatch(format!(
            "mapping covers {} graph nodes, graph has {}",
            mapping.node_final_stage.len(),
            graph.len()
        )));
    }
    let n_stages = mapping.stages.len();
    for (nid, &sid) in mapping.node_final_stage.iter().enumerate() {
        if sid >= n_stages {
            return Err(SimError::MappingMismatch(format!(
                "node {nid} maps to stage {sid} of {n_stages}"
            )));
        }
    }
    for (sid, s) in mapping.stages.iter().enumerate() {
        for e in &s.producers {
            if e.from >= n_stages {
                return Err(SimError::MappingMismatch(format!(
                    "stage {sid} consumes from stage {} of {n_stages}",
                    e.from
                )));
            }
        }
    }
    Ok(())
}

/// Simulates one batch through the mapped pipeline, sharding the per-window
/// stage work across `par` workers.
///
/// The report is a pure function of `(graph, mapping, arch, batch)`:
/// [`Parallelism::Serial`], [`Parallelism::Threads`] and
/// [`Parallelism::PinnedThreads`] at any width produce bit-identical
/// results (see the module docs for why).
pub fn simulate_with(
    graph: &Graph,
    mapping: &SystemMapping,
    arch: &ArchConfig,
    batch: usize,
    par: Parallelism,
) -> Result<RunReport, SimError> {
    validate(graph, mapping, batch)?;
    let n_stages = mapping.stages.len();
    let freq = arch.frequency;
    let sync_extra = freq.cycles_to_time(Cycles(CHUNK_SYNC_CYCLES));
    let window = freq.cycles_to_time(Cycles(LOOKAHEAD_CYCLES));
    let window_ps = window.as_ps().max(1);

    // ---- Build immutable configuration and per-stage state -------------------
    let mut cfgs: Vec<StageCfg> = Vec::with_capacity(n_stages);
    let mut states: Vec<Mutex<StageState>> = Vec::with_capacity(n_stages);
    for s in mapping.stages() {
        let t = stage_chunk_timing(s, arch);
        let total_chunks = (batch * s.tiling.chunks_per_image) as u64;
        let edges: Vec<EdgeCfg> = s
            .producers
            .iter()
            .map(|e| {
                let ptiling = &mapping.stages[e.from].tiling;
                let hbm_amp =
                    (ptiling.ofm.w.min(arch.noc.hbm.width_bytes) / ptiling.out_tile_w).max(1);
                EdgeCfg {
                    from: e.from,
                    bytes_per_cchunk: e.bytes_per_chunk,
                    transfers: e.transfers,
                    halo: e.halo_chunks as u64,
                    kind: e.kind,
                    cp: ptiling.chunks_per_image as u64,
                    cc: s.tiling.chunks_per_image as u64,
                    slack: 2 * s.lanes as u64 + 2 * mapping.stages[e.from].lanes as u64,
                    hbm_amp,
                }
            })
            .collect();
        let edge_states: Vec<EdgeState> = edges
            .iter()
            .map(|e| {
                let total_p = (e.cp * batch as u64) as usize;
                let is_skip = matches!(e.kind, EdgeKind::Skip { .. });
                EdgeState {
                    delivered: vec![false; total_p],
                    watermark: -1,
                    stored: if is_skip {
                        vec![false; total_p]
                    } else {
                        vec![]
                    },
                    stored_watermark: -1,
                    skip_delivered: if is_skip {
                        vec![false; total_chunks as usize]
                    } else {
                        vec![]
                    },
                    next_skip_request: 0,
                }
            })
            .collect();
        let sync_display = if s.digital_per_chunk.is_empty() {
            sync_extra
        } else {
            sync_extra + freq.cycles_to_time(Cycles(arch.cluster.kernel_launch_cycles))
        };
        let comm_cycles: u64 = s
            .producers
            .iter()
            .map(|e| (e.bytes_per_chunk / 64) as u64 + 40)
            .sum();
        let core_cycles_per_chunk = if s.digital_per_chunk.is_empty() {
            0
        } else {
            aimc_cluster::DigitalEngine::new(
                arch.cluster.n_cores,
                arch.cluster.kernel_launch_cycles,
                freq,
            )
            .run_all(&s.digital_per_chunk)
            .core_cycles
        };
        let mut clusters = Vec::new();
        let mut lane_slots = Vec::with_capacity(s.lanes);
        for l in 0..s.lanes {
            let mut slots = Vec::with_capacity(s.lane_clusters);
            if s.lane_clusters > 0 {
                for &c in s.lane(l) {
                    slots.push(clusters.len());
                    clusters.push(c);
                }
            }
            lane_slots.push(slots);
        }
        let trackers = clusters
            .iter()
            .map(|_| ActivityTracker::new(SimTime::ZERO))
            .collect();
        let mut queue = OrderedEventQueue::new();
        for l in 0..s.lanes {
            queue.push(SimTime::ZERO, Ev::TryFire { lane: l as u32 });
        }
        cfgs.push(StageCfg {
            total_chunks,
            n_lanes: s.lanes,
            lane_clusters: s.lane_clusters,
            service: t.service + sync_extra,
            latency: t.latency + sync_extra,
            analog_time: t.analog,
            digital_time: t.digital,
            sync_display: sync_display.min(t.service + sync_extra),
            core_cycles_per_chunk,
            mvms_per_fire: s
                .analog
                .as_ref()
                .map_or(0, |a| a.job.n_mvm * s.lane_clusters as u64),
            expected_comm_per_chunk: freq.cycles_to_time(Cycles(comm_cycles)),
            edges,
            consumers: vec![],
            clusters,
            lane_slots,
        });
        states.push(Mutex::new(StageState {
            queue,
            lanes: (0..s.lanes)
                .map(|l| LaneRt {
                    next_chunk: l as u64,
                    free_at: SimTime::ZERO,
                    last_busy_end: SimTime::ZERO,
                    fired_any: false,
                    analog_busy: SimTime::ZERO,
                    digital_busy: SimTime::ZERO,
                })
                .collect(),
            edges: edge_states,
            next_fire: 0,
            trackers: {
                let t: Vec<ActivityTracker> = trackers;
                t
            },
            fires: Vec::new(),
            mvms: 0,
            core_cycles: 0,
            txns: Vec::new(),
            wakes: Vec::new(),
        }));
    }
    // Reverse edges.
    for sid in 0..n_stages {
        for (eidx, e) in mapping.stages[sid].producers.iter().enumerate() {
            cfgs[e.from].consumers.push((sid, eidx));
        }
    }

    let final_stage = *mapping.node_final_stage.last().expect("mapping has nodes");
    let final_chunks_per_image = mapping.stages[final_stage].tiling.chunks_per_image as u64;
    let mut final_done_per_image = vec![0u64; batch];
    let mut image_completions = vec![SimTime::ZERO; batch];
    let mut final_max = SimTime::ZERO;

    let mut fabric = Fabric::new(arch.noc.clone());
    let mut pending: Vec<Pending> = Vec::new();
    let mut wake_buf: Vec<(SimTime, u32)> = Vec::new();

    // ---- Window loop ---------------------------------------------------------
    loop {
        // The next window is wherever the earliest pending work sits: a
        // stage event, a fabric event, or a buffered wake. Windows are
        // aligned to the lookahead grid; the choice is a pure function of
        // (deterministic) simulation state, never of worker scheduling.
        let mut t_min: Option<SimTime> = None;
        let mut fold = |t: Option<SimTime>| {
            if let Some(t) = t {
                t_min = Some(t_min.map_or(t, |m: SimTime| m.min(t)));
            }
        };
        for st in states.iter_mut() {
            fold(st.get_mut().expect("stage lock poisoned").queue.peek_time());
        }
        fold(fabric.next_event_time());
        for &(t, _) in &wake_buf {
            fold(Some(t));
        }
        let Some(t0) = t_min else { break };
        let horizon = SimTime::from_ps((t0.as_ps() / window_ps) * window_ps) + window;

        // Barrier, part 1: fly the fabric up to the horizon and deliver
        // completed transfers into their stages at exact completion times.
        for (t, tag) in fabric.advance_before(horizon) {
            let p = &mut pending[tag as usize];
            p.remaining -= 1;
            if t > p.max_t {
                p.max_t = t;
            }
            if p.remaining == 0 {
                match p.deliver {
                    Deliver::Edge { stage, ev } => states[stage as usize]
                        .get_mut()
                        .expect("stage lock poisoned")
                        .queue
                        .push(p.max_t, ev),
                    Deliver::Final { chunk } => {
                        let img = (chunk / final_chunks_per_image) as usize;
                        final_done_per_image[img] += 1;
                        if final_done_per_image[img] == final_chunks_per_image {
                            image_completions[img] = p.max_t;
                        }
                        if p.max_t > final_max {
                            final_max = p.max_t;
                        }
                    }
                }
            }
        }
        // Barrier, part 2: due credit wakes become TryFire events.
        let mut due = Vec::new();
        wake_buf.retain(|&(t, s)| {
            if t < horizon {
                due.push((t, s));
                false
            } else {
                true
            }
        });
        for (t, s) in due {
            let st = states[s as usize].get_mut().expect("stage lock poisoned");
            for l in 0..cfgs[s as usize].n_lanes {
                st.queue.push(t, Ev::TryFire { lane: l as u32 });
            }
        }

        // Barrier, part 3: snapshot every stage's progress for credit checks.
        let snaps: Vec<u64> = states
            .iter_mut()
            .map(|m| m.get_mut().expect("stage lock poisoned").next_fire)
            .collect();

        // Process the window: each active stage drains its own queue up to
        // the horizon, touching only its own state + shared config/snapshot.
        let mut active: Vec<usize> = Vec::new();
        for (i, m) in states.iter_mut().enumerate() {
            if m.get_mut()
                .expect("stage lock poisoned")
                .queue
                .peek_time()
                .is_some_and(|t| t < horizon)
            {
                active.push(i);
            }
        }
        let run = |sid: usize| {
            let mut st = states[sid].lock().expect("stage lock poisoned");
            process_stage(
                sid,
                &mut st,
                &cfgs,
                &snaps,
                mapping,
                horizon,
                window,
                final_stage,
            );
        };
        if par.is_parallel() && active.len() >= 2 {
            aimc_parallel::for_each_indexed(par, &active, |_, &sid| run(sid));
        } else {
            for &sid in &active {
                run(sid);
            }
        }

        // Barrier, part 4: merge the window's cross-stage effects. DMA
        // requests are injected in `(issue, stage, emission)` order so
        // fabric message ids — and therefore FIFO tie-breaks — are
        // scheduling-independent.
        let mut reqs: Vec<(SimTime, usize, usize, TxnReq)> = Vec::new();
        for (sid, m) in states.iter_mut().enumerate() {
            let st = m.get_mut().expect("stage lock poisoned");
            for (seq, r) in st.txns.drain(..).enumerate() {
                reqs.push((r.issue, sid, seq, r));
            }
            wake_buf.append(&mut st.wakes);
        }
        reqs.sort_by_key(|a| (a.0, a.1, a.2));
        for (_, _, _, r) in reqs {
            let pid = pending.len() as u64;
            pending.push(Pending {
                remaining: r.parts.len() as u32,
                max_t: SimTime::ZERO,
                deliver: r.deliver,
            });
            for (dst, bytes) in r.parts {
                fabric.inject(r.issue + window, r.kind, r.src, dst, bytes, pid);
            }
        }
        wake_buf.sort_unstable_by_key(|&(t, s)| (t, s));
        wake_buf.dedup();
    }
    debug_assert!(fabric.is_idle(), "fabric drained with the event loop");

    // ---- Collect -------------------------------------------------------------
    let mut states: Vec<StageState> = states
        .into_iter()
        .map(|m| m.into_inner().expect("stage lock poisoned"))
        .collect();
    let mut makespan = final_max;
    for st in &states {
        makespan = makespan.max(st.queue.now());
    }

    let mut fires: Vec<FireRecord> = Vec::new();
    let mut tallies = EnergyTallies::default();
    for st in &mut states {
        fires.append(&mut st.fires);
        tallies.mvms += st.mvms;
        tallies.core_cycles += st.core_cycles;
    }
    fires.sort_by_key(|f| (f.start, f.stage, f.chunk));

    let mut clusters = Vec::new();
    for (sid, s) in mapping.stages().iter().enumerate() {
        for l in 0..s.lanes {
            if s.lane_clusters == 0 {
                continue;
            }
            let analog_bound = states[sid].lanes[l].analog_busy
                >= states[sid].lanes[l].digital_busy
                && states[sid].lanes[l].analog_busy > SimTime::ZERO;
            for &slot in &cfgs[sid].lane_slots[l] {
                let mut tr = states[sid].trackers[slot].clone();
                tr.finish(makespan);
                clusters.push(ClusterBreakdown {
                    cluster: cfgs[sid].clusters[slot],
                    stage_name: s.name.clone(),
                    group: s.group,
                    compute: tr.time_in(Activity::Compute),
                    communication: tr.time_in(Activity::Communication),
                    synchronization: tr.time_in(Activity::Synchronization),
                    sleep: tr.time_in(Activity::Sleep),
                    analog_bound,
                });
            }
        }
    }
    for &c in &mapping.residuals.storage_clusters {
        let mut tr = ActivityTracker::new(SimTime::ZERO);
        tr.finish(makespan);
        clusters.push(ClusterBreakdown {
            cluster: c,
            stage_name: "residual-storage".into(),
            group: 5,
            compute: tr.time_in(Activity::Compute),
            communication: tr.time_in(Activity::Communication),
            synchronization: tr.time_in(Activity::Synchronization),
            sleep: tr.time_in(Activity::Sleep),
            analog_bound: false,
        });
    }
    clusters.sort_by_key(|c| c.cluster);

    // Ops accounting.
    let mut useful_ops = 0u64;
    let mut executed_ops = 0u64;
    for (sid, s) in mapping.stages().iter().enumerate() {
        if let Some(a) = &s.analog {
            let fired: u64 = states[sid]
                .lanes
                .iter()
                .map(|l| l.next_chunk / states[sid].lanes.len().max(1) as u64)
                .sum::<u64>()
                .min(cfgs[sid].total_chunks);
            let per_chunk_useful =
                2 * (a.split.rows_total * a.split.cols_total) as u64 * a.job.n_mvm;
            let full = (arch.cluster.ima.xbar.rows * arch.cluster.ima.xbar.cols) as u64;
            let per_chunk_exec = 2 * full * a.job.n_mvm * a.split.imas() as u64;
            useful_ops += per_chunk_useful * fired;
            executed_ops += per_chunk_exec * fired;
        }
    }

    let fabric_report = fabric.report();
    // Interconnect energy: bytes × levels crossed, plus HBM bytes.
    let mut byte_hops = 0u64;
    for level in 1..=arch.noc.n_levels() {
        byte_hops += fabric_report.level_bytes(level);
    }
    tallies.noc_byte_hops = byte_hops;
    tallies.hbm_bytes = fabric.hbm_bytes();
    tallies.cluster_seconds = mapping.n_clusters_used as f64 * makespan.as_s_f64();

    // Steady-state interval: median of inter-image completion gaps.
    let mut comps = image_completions.clone();
    comps.sort();
    let mut gaps: Vec<u64> = comps
        .windows(2)
        .map(|w| (w[1].saturating_sub(w[0])).as_ps())
        .collect();
    gaps.sort_unstable();
    let steady = if gaps.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_ps(gaps[gaps.len() / 2])
    };

    let events = states
        .iter()
        .map(|s| s.queue.events_processed())
        .sum::<u64>()
        + fabric_report.events;
    Ok(RunReport {
        batch,
        makespan,
        image_completions,
        steady_interval: steady,
        nominal_ops: graph.total_ops() * batch as u64,
        useful_ops,
        executed_ops,
        clusters,
        tallies,
        hbm_busy: fabric.hbm_busy(),
        hbm_bytes: fabric.hbm_bytes(),
        events,
        fires,
        fabric: fabric_report,
    })
}

/// Representative cluster of a stage lane (DMA endpoint), HBM for
/// cluster-less stages.
fn lane_endpoint(mapping: &SystemMapping, sid: usize, lane: usize) -> Endpoint {
    let st = &mapping.stages[sid];
    if st.lane_clusters == 0 {
        Endpoint::Hbm
    } else {
        Endpoint::Cluster(st.lane(lane % st.lanes)[0])
    }
}

/// Drains one stage's events up to `horizon`. Only `st` is mutated; every
/// cross-stage effect is buffered in `st.txns` / `st.wakes` for the merge.
#[allow(clippy::too_many_arguments)]
fn process_stage(
    sid: usize,
    st: &mut StageState,
    cfgs: &[StageCfg],
    snaps: &[u64],
    mapping: &SystemMapping,
    horizon: SimTime,
    window: SimTime,
    final_stage: usize,
) {
    let cfg = &cfgs[sid];
    while let Some((now, ev)) = st.queue.pop_before(horizon) {
        match ev {
            Ev::TryFire { lane } => {
                let l = lane as usize;
                // Structured as a breakable block: every arm exits after one
                // pass; continuation is always via a re-queued TryFire.
                #[allow(clippy::never_loop)]
                loop {
                    let k = st.lanes[l].next_chunk;
                    if k >= cfg.total_chunks {
                        break;
                    }
                    if st.lanes[l].free_at > now {
                        // Re-check when the lane frees up.
                        let at = st.lanes[l].free_at;
                        st.queue.push(at, Ev::TryFire { lane });
                        break;
                    }
                    // Input readiness.
                    let mut input_ready = true;
                    for (e, es) in cfg.edges.iter().zip(&st.edges) {
                        let ok = match e.kind {
                            EdgeKind::Stream => es.watermark >= e.required(k) as i64,
                            EdgeKind::Skip { .. } => es.skip_delivered[k as usize],
                        };
                        if !ok {
                            input_ready = false;
                            break;
                        }
                    }
                    if !input_ready {
                        break; // a Delivered event will retry us
                    }
                    // Consumer credit, against the window-barrier snapshot
                    // of each consumer's progress (stale by at most one
                    // lookahead window — strictly conservative, since
                    // `next_fire` only grows).
                    let mut credit = true;
                    for &(cid, eidx) in &cfg.consumers {
                        let ccfg = &cfgs[cid];
                        let cons_next = snaps[cid];
                        if cons_next >= ccfg.total_chunks {
                            continue;
                        }
                        let e = &ccfg.edges[eidx];
                        let slack = match e.kind {
                            EdgeKind::Stream => e.slack,
                            EdgeKind::Skip { .. } => SKIP_SLACK_IMAGES * e.cc,
                        };
                        let h = (cons_next + slack).min(ccfg.total_chunks - 1);
                        if k > e.required(h) {
                            credit = false;
                            break;
                        }
                    }
                    if !credit {
                        break; // a consumer fire will wake us
                    }

                    // ---- Fire chunk k on (sid, l) -----------------------------
                    let n_lanes = cfg.n_lanes as u64;
                    let ln = &mut st.lanes[l];
                    let start = now;
                    ln.free_at = start + cfg.service;
                    ln.next_chunk += n_lanes;
                    ln.fired_any = true;
                    ln.analog_busy += cfg.analog_time;
                    ln.digital_busy += cfg.digital_time;
                    let busy_end = start + cfg.service;
                    let prev_end = ln.last_busy_end;
                    ln.last_busy_end = busy_end;
                    st.next_fire = st.lanes.iter().map(|x| x.next_chunk).min().unwrap_or(0);
                    st.fires.push(FireRecord {
                        stage: sid as u32,
                        lane,
                        chunk: k,
                        start,
                        end: busy_end,
                    });
                    st.queue
                        .push(start + cfg.latency, Ev::ChunkDone { lane, chunk: k });

                    // Activity attribution on the lane's clusters: waits are
                    // communication up to the expected DMA time of the
                    // chunk's inputs; the remainder is sleep (starvation or
                    // backpressure — the paper's head/tail idling).
                    if cfg.lane_clusters > 0 {
                        let first_fire = prev_end == SimTime::ZERO && start > SimTime::ZERO;
                        for &slot in &cfg.lane_slots[l] {
                            let tr = &mut st.trackers[slot];
                            if !first_fire && start > prev_end {
                                let comm_start = start
                                    .saturating_sub(cfg.expected_comm_per_chunk)
                                    .max(prev_end);
                                tr.set_state(comm_start, Activity::Communication);
                            }
                            tr.set_state(start, Activity::Synchronization);
                            tr.set_state(start + cfg.sync_display, Activity::Compute);
                            tr.set_state(busy_end, Activity::Sleep);
                        }
                    }

                    // Energy tallies: analog MVMs on every split cluster of
                    // the lane, serial core cycles from the kernel model.
                    st.mvms += cfg.mvms_per_fire;
                    st.core_cycles += cfg.core_cycles_per_chunk;

                    // Wake producers one window out (credit freed; by then
                    // the barrier snapshot reflects this fire).
                    for e in &cfg.edges {
                        st.wakes.push((now + window, e.from as u32));
                    }
                    // Residual reads may be unblocked by our own progress.
                    request_skip_reads(sid, st, cfg, mapping, now);

                    // Loop again: the lane might have another ready chunk only
                    // after free_at; the scheduled TryFire handles it.
                    let at = st.lanes[l].free_at;
                    st.queue.push(at, Ev::TryFire { lane });
                    break;
                }
            }

            Ev::ChunkDone { lane, chunk } => {
                if cfg.consumers.is_empty() && sid == final_stage {
                    // Ship the network output to HBM.
                    let bytes = mapping.stages[sid].tiling.out_tile_bytes();
                    st.txns.push(TxnReq {
                        issue: now,
                        kind: TxnKind::Write,
                        src: lane_endpoint(mapping, sid, lane as usize),
                        parts: vec![(Endpoint::Hbm, bytes)],
                        deliver: Deliver::Final { chunk },
                    });
                }
                for &(cid, eidx) in &cfg.consumers {
                    let e = &cfgs[cid].edges[eidx];
                    let bytes_pp =
                        ((e.bytes_per_cchunk as u64 * e.cc).div_ceil(e.cp) as usize).max(1);
                    let transfers = e.transfers.max(1);
                    let src = lane_endpoint(mapping, sid, lane as usize);
                    match e.kind {
                        EdgeKind::Stream => {
                            // Deliver to the consumer lane that will use it.
                            let j0 = (chunk * e.cc) / e.cp;
                            let cstage = &mapping.stages[cid];
                            let clane = (j0 % cstage.lanes as u64) as usize;
                            let per = bytes_pp.div_ceil(transfers);
                            let parts = (0..transfers)
                                .map(|i| {
                                    let dst = if cstage.lane_clusters == 0 {
                                        Endpoint::Hbm
                                    } else {
                                        Endpoint::Cluster(
                                            cstage.lane(clane)[i % cstage.lane_clusters],
                                        )
                                    };
                                    (dst, per)
                                })
                                .collect();
                            st.txns.push(TxnReq {
                                issue: now,
                                kind: TxnKind::Write,
                                src,
                                parts,
                                deliver: Deliver::Edge {
                                    stage: cid as u32,
                                    ev: Ev::Delivered {
                                        edge: eidx as u32,
                                        pchunk: chunk,
                                    },
                                },
                            });
                        }
                        EdgeKind::Skip { via } => {
                            // First leg: producer -> storage. HBM staging
                            // pays the CHW scatter amplification.
                            let (dst, amp) = match via {
                                ResidualRoute::Hbm => (Endpoint::Hbm, e.hbm_amp),
                                ResidualRoute::StorageCluster(c) => (Endpoint::Cluster(c), 1),
                            };
                            st.txns.push(TxnReq {
                                issue: now,
                                kind: TxnKind::Write,
                                src,
                                parts: vec![(dst, bytes_pp * amp)],
                                deliver: Deliver::Edge {
                                    stage: cid as u32,
                                    ev: Ev::SkipStored {
                                        edge: eidx as u32,
                                        pchunk: chunk,
                                    },
                                },
                            });
                        }
                    }
                }
            }

            Ev::Delivered { edge, pchunk } => {
                {
                    let es = &mut st.edges[edge as usize];
                    let (marks, wm) = (&mut es.delivered, &mut es.watermark);
                    EdgeState::advance(marks, wm, pchunk);
                }
                request_skip_reads(sid, st, cfg, mapping, now);
                for l in 0..cfg.n_lanes {
                    st.queue.push(now, Ev::TryFire { lane: l as u32 });
                }
            }

            Ev::SkipStored { edge, pchunk } => {
                {
                    let es = &mut st.edges[edge as usize];
                    let (marks, wm) = (&mut es.stored, &mut es.stored_watermark);
                    EdgeState::advance(marks, wm, pchunk);
                }
                request_skip_reads(sid, st, cfg, mapping, now);
            }

            Ev::SkipReadDone { edge, cchunk } => {
                st.edges[edge as usize].skip_delivered[cchunk as usize] = true;
                st.queue.push(
                    now,
                    Ev::TryFire {
                        lane: (cchunk % cfg.n_lanes as u64) as u32,
                    },
                );
            }
        }
    }
}

/// Issues on-demand read legs for skip edges whose consumer chunks became
/// main-input-ready (Sec. V-4: residuals are fetched from storage just in
/// time for the joining chunk). The reads are buffered like any other DMA
/// request and resolve to `SkipReadDone` events.
fn request_skip_reads(
    sid: usize,
    st: &mut StageState,
    cfg: &StageCfg,
    mapping: &SystemMapping,
    now: SimTime,
) {
    let n_edges = cfg.edges.len();
    if !cfg
        .edges
        .iter()
        .any(|e| matches!(e.kind, EdgeKind::Skip { .. }))
    {
        return;
    }
    let lanes = cfg.n_lanes as u64;
    for eidx in 0..n_edges {
        let EdgeKind::Skip { via } = cfg.edges[eidx].kind else {
            continue;
        };
        loop {
            let j = st.edges[eidx].next_skip_request;
            if j >= cfg.total_chunks {
                break;
            }
            // Window: don't prefetch residuals more than the storage window
            // ahead of consumption.
            if j >= st.next_fire + SKIP_SLACK_IMAGES * cfg.edges[eidx].cc {
                break;
            }
            // All stream inputs for chunk j ready?
            let streams_ready = (0..n_edges).all(|k| match cfg.edges[k].kind {
                EdgeKind::Stream => st.edges[k].watermark >= cfg.edges[k].required(j) as i64,
                EdgeKind::Skip { .. } => true,
            });
            if !streams_ready {
                break;
            }
            // First leg (store) complete for the required producer chunks?
            if st.edges[eidx].stored_watermark < cfg.edges[eidx].required(j) as i64 {
                break;
            }
            // Issue the read leg.
            let clane = (j % lanes) as usize;
            let src = lane_endpoint(mapping, sid, clane);
            let (dst, amp) = match via {
                ResidualRoute::Hbm => (Endpoint::Hbm, cfg.edges[eidx].hbm_amp),
                ResidualRoute::StorageCluster(c) => (Endpoint::Cluster(c), 1),
            };
            let bytes = cfg.edges[eidx].bytes_per_cchunk * amp;
            st.txns.push(TxnReq {
                issue: now,
                kind: TxnKind::Read,
                src,
                parts: vec![(dst, bytes)],
                deliver: Deliver::Edge {
                    stage: sid as u32,
                    ev: Ev::SkipReadDone {
                        edge: eidx as u32,
                        cchunk: j,
                    },
                },
            });
            st.edges[eidx].next_skip_request += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimc_core::{map_network, MappingStrategy};
    use aimc_dnn::{resnet18, ConvCfg, GraphBuilder, Shape};

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 32, 32));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 16, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(16, 16, 1));
        let r = b.residual("r", c1, c0, None);
        let p = b.global_avgpool("gap", r);
        let _ = b.linear("fc", p, 10);
        b.finish()
    }

    #[test]
    fn small_network_completes_all_images() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8); // 32 clusters
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 4).unwrap();
        assert_eq!(r.image_completions.len(), 4);
        assert!(r.image_completions.iter().all(|&t| t > SimTime::ZERO));
        assert!(r.makespan >= *r.image_completions.iter().max().unwrap());
        assert!(r.events > 0);
    }

    #[test]
    fn image_completions_are_monotonic() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 6).unwrap();
        for w in r.image_completions.windows(2) {
            assert!(
                w[1] >= w[0],
                "completions must be ordered: {:?}",
                r.image_completions
            );
        }
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r1 = simulate(&g, &m, &arch, 1).unwrap();
        let r8 = simulate(&g, &m, &arch, 8).unwrap();
        // The graph is dominated by one stage (c1 ≈ 134 of 157 µs), so the
        // steady-state bound is ≈ 8×134 µs; the pipeline must overlap the
        // remaining stages (strictly below 8× the single-image latency) and
        // must not be slower than serial.
        assert!(
            r8.makespan.as_ps() < (7.6 * r1.makespan.as_ps() as f64) as u64,
            "batch 8 {} vs 1 {}",
            r8.makespan,
            r1.makespan
        );
        assert!(r8.makespan.as_ps() > 4 * r1.makespan.as_ps());
    }

    #[test]
    fn deterministic() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let a = simulate(&g, &m, &arch, 3).unwrap();
        let b = simulate(&g, &m, &arch, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_shards_are_bit_identical() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let serial = simulate(&g, &m, &arch, 3).unwrap();
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::PinnedThreads(2),
        ] {
            let sharded = simulate_with(&g, &m, &arch, 3, par).unwrap();
            assert_eq!(serial, sharded, "divergence under {par:?}");
        }
    }

    #[test]
    fn breakdown_covers_makespan_per_cluster() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2).unwrap();
        assert!(!r.clusters.is_empty());
        for c in &r.clusters {
            let sum = c.compute + c.communication + c.synchronization + c.sleep;
            assert_eq!(
                sum, r.makespan,
                "cluster {} breakdown does not cover makespan",
                c.cluster
            );
        }
    }

    #[test]
    fn ops_accounting_is_consistent() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2).unwrap();
        assert_eq!(r.nominal_ops, g.total_ops() * 2);
        assert!(r.useful_ops > 0);
        assert!(r.executed_ops >= r.useful_ops);
        assert!(r.tops() > 0.0);
        assert!(r.tops_executed() >= r.tops() * 0.1);
    }

    #[test]
    fn hbm_sees_input_traffic() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2).unwrap();
        // At least the two input images (3*32*32 each) cross the HBM.
        assert!(r.hbm_bytes >= 2 * 3 * 32 * 32, "hbm bytes {}", r.hbm_bytes);
        assert!(r.hbm_busy > SimTime::ZERO);
    }

    #[test]
    fn fabric_report_conserves_bytes() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 2).unwrap();
        assert_eq!(r.fabric.injected, r.fabric.completed);
        assert!(r.fabric.routed_bytes > 0);
        assert_eq!(
            r.fabric.routed_bytes, r.fabric.link_bytes,
            "per-link bytes must conserve the injected transaction bytes"
        );
    }

    #[test]
    fn resnet18_batch2_runs_on_paper_platform() {
        let g = resnet18(256, 256, 1000);
        let arch = ArchConfig::paper();
        let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r = simulate(&g, &m, &arch, 2).unwrap();
        assert_eq!(r.image_completions.len(), 2);
        assert!(r.image_completions[1] > SimTime::ZERO);
        // Two images through a balanced pipeline: single-digit milliseconds.
        assert!(
            r.makespan < SimTime::from_us(20_000),
            "makespan {}",
            r.makespan
        );
        assert!(r.tops() > 1.0, "tops {}", r.tops());
    }

    #[test]
    fn on_chip_residuals_outperform_hbm_residuals() {
        let g = resnet18(256, 256, 1000);
        let arch = ArchConfig::paper();
        let m_hbm = map_network(&g, &arch, MappingStrategy::Balanced).unwrap();
        let m_l1 = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r_hbm = simulate(&g, &m_hbm, &arch, 4).unwrap();
        let r_l1 = simulate(&g, &m_l1, &arch, 4).unwrap();
        assert!(
            r_l1.makespan < r_hbm.makespan,
            "on-chip {} vs HBM {}",
            r_l1.makespan,
            r_hbm.makespan
        );
    }

    #[test]
    fn rejects_zero_batch() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        assert_eq!(simulate(&g, &m, &arch, 0).unwrap_err(), SimError::ZeroBatch);
    }

    #[test]
    fn rejects_mismatched_mapping() {
        let g = small_graph();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        // A mapping built for the 5-node graph cannot simulate a different
        // network.
        let other = {
            let mut b = GraphBuilder::new(Shape::new(3, 32, 32));
            let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 16, 1));
            let _ = b.linear("fc", c0, 10);
            b.finish()
        };
        assert!(matches!(
            simulate(&other, &m, &arch, 1).unwrap_err(),
            SimError::MappingMismatch(_)
        ));
    }
}
