//! Derived analyses: the Fig. 6 inefficiency waterfall, the Fig. 7 per-group
//! area efficiency, and the Sec. VI headline metrics.

use crate::pipeline::RunReport;
use crate::power::{AreaModel, EnergyBreakdown, EnergyModel};
use aimc_core::{bottleneck_per_image, ArchConfig, SystemMapping};
use aimc_dnn::{group_label, Graph};
use aimc_noc::LinkId;

/// Utilization of one interconnect tier over a run — the per-link
/// attribution behind Fig. 6's "communication" bar: whether stalls come
/// from the HBM channel or from a specific tree level.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// Tier label: `"hbm-channel"` or `"tree-L<level>"`.
    pub label: String,
    /// Directed links in the tier.
    pub links: usize,
    /// Busy fraction of the tier's busiest link over the makespan.
    pub peak_util: f64,
    /// Mean busy fraction across the tier's links.
    pub mean_util: f64,
    /// Total bytes carried by the tier.
    pub bytes: u64,
    /// Worst per-link queue depth seen anywhere in the tier.
    pub peak_queued: u32,
}

/// Groups a run's per-link fabric statistics into interconnect tiers: the
/// HBM channel (the DRAM controller service) first, then each quadrant-tree
/// level from the leaves up.
pub fn link_loads(report: &RunReport) -> Vec<LinkLoad> {
    let span = report.makespan.as_ps().max(1) as f64;
    let mut out = Vec::new();
    // The HBM channel tier: the wrapper<->controller links plus the DRAM
    // controller service itself.
    let hbm: Vec<_> = report
        .fabric
        .links
        .iter()
        .filter(|l| matches!(l.id, LinkId::HbmUp | LinkId::HbmDown | LinkId::HbmCtrl))
        .collect();
    if !hbm.is_empty() {
        let peak = hbm.iter().map(|l| l.busy.as_ps()).max().unwrap_or(0);
        let total: u64 = hbm.iter().map(|l| l.busy.as_ps()).sum();
        out.push(LinkLoad {
            label: "hbm-channel".into(),
            links: hbm.len(),
            peak_util: peak as f64 / span,
            mean_util: total as f64 / span / hbm.len() as f64,
            bytes: hbm.iter().map(|l| l.bytes).sum(),
            peak_queued: hbm.iter().map(|l| l.peak_queued).max().unwrap_or(0),
        });
    }
    let n_levels = report
        .fabric
        .links
        .iter()
        .filter_map(|l| match l.id {
            LinkId::Up { level, .. } | LinkId::Down { level, .. } => Some(level),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    for level in 1..=n_levels {
        let rows: Vec<_> = report
            .fabric
            .links
            .iter()
            .filter(|l| {
                matches!(l.id,
                    LinkId::Up { level: lv, .. } | LinkId::Down { level: lv, .. } if lv == level)
            })
            .collect();
        let peak = rows.iter().map(|l| l.busy.as_ps()).max().unwrap_or(0);
        let total: u64 = rows.iter().map(|l| l.busy.as_ps()).sum();
        out.push(LinkLoad {
            label: format!("tree-L{level}"),
            links: rows.len(),
            peak_util: peak as f64 / span,
            mean_util: total as f64 / span / rows.len().max(1) as f64,
            bytes: rows.iter().map(|l| l.bytes).sum(),
            peak_queued: rows.iter().map(|l| l.peak_queued).max().unwrap_or(0),
        });
    }
    out
}

/// The five levels of Fig. 6, in TOPS (nominal-ops convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Waterfall {
    /// Every IMA fully occupied and busy (≈516 TOPS for Table I).
    pub ideal: f64,
    /// Only mapped clusters contribute ("global mapping").
    pub global_mapping: f64,
    /// Crossbar cells actually occupied ("local mapping").
    pub local_mapping: f64,
    /// Pipeline bound by its slowest stage, communication-free
    /// ("intra-layer unbalance").
    pub intra_layer_unbalance: f64,
    /// Measured steady-state throughput with communication and
    /// synchronization ("communication").
    pub communication: f64,
    /// Per-tier interconnect load: attributes the final bar's loss to the
    /// HBM channel vs specific tree levels.
    pub link_loads: Vec<LinkLoad>,
}

impl Waterfall {
    /// Computes the waterfall for a mapped network and its simulation run.
    pub fn compute(
        graph: &Graph,
        mapping: &SystemMapping,
        arch: &ArchConfig,
        report: &RunReport,
    ) -> Self {
        let ideal = arch.ideal_tops();
        let global = ideal * mapping.global_mapping_factor();
        let util = mapping
            .local_mapping_utilization(arch.cluster.ima.xbar.rows, arch.cluster.ima.xbar.cols);
        // `util` is the mean over used clusters, so the achievable rate is
        // the global-mapping level scaled by it.
        let local = global * util;
        let ops_per_image = graph.total_ops() as f64;
        let bottleneck = bottleneck_per_image(&mapping.stages, arch);
        let unbalance = ops_per_image / bottleneck.as_s_f64() / 1e12;
        // The last bar is the *measured* end-to-end throughput over the
        // batch makespan: communication, synchronization, and pipeline
        // fill/drain all land here (the paper's 20.2 TOPS is likewise the
        // delivered end-to-end number).
        let communication = report.tops();
        Waterfall {
            ideal,
            global_mapping: global,
            local_mapping: local,
            intra_layer_unbalance: unbalance,
            communication: communication.min(unbalance),
            link_loads: link_loads(report),
        }
    }

    /// The five levels in order, with labels.
    pub fn levels(&self) -> [(&'static str, f64); 5] {
        [
            ("ideal", self.ideal),
            ("global mapping", self.global_mapping),
            ("local mapping", self.local_mapping),
            ("intra-layer unbalance", self.intra_layer_unbalance),
            ("communication", self.communication),
        ]
    }

    /// Cumulative degradation factor of each level vs ideal.
    pub fn cumulative_factors(&self) -> [f64; 4] {
        [
            self.ideal / self.global_mapping,
            self.ideal / self.local_mapping,
            self.ideal / self.intra_layer_unbalance,
            self.ideal / self.communication,
        ]
    }

    /// Renders the Fig. 6 table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:>10} {:>8}", "level", "TOPS", "vs ideal");
        let mut prev = self.ideal;
        for (name, tops) in self.levels() {
            let step = prev / tops;
            let _ = writeln!(
                out,
                "{:<24} {:>10.1} {:>7.1}x (step {:.1}x)",
                name,
                tops,
                self.ideal / tops,
                step
            );
            prev = tops;
        }
        out
    }

    /// Renders the per-tier interconnect load table that attributes the
    /// communication bar to specific links.
    pub fn render_links(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>7} {:>7} {:>12} {:>6}",
            "tier", "links", "peak", "mean", "bytes", "queue"
        );
        for l in &self.link_loads {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>6.1}% {:>6.1}% {:>12} {:>6}",
                l.label,
                l.links,
                l.peak_util * 100.0,
                l.mean_util * 100.0,
                l.bytes,
                l.peak_queued
            );
        }
        out
    }
}

/// One bar of Fig. 7: area efficiency of a layer group's clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupEfficiency {
    /// Group index (0..=5).
    pub group: usize,
    /// IFM-shape label ("64x64x64", …).
    pub label: &'static str,
    /// Clusters mapped to the group (replicas included).
    pub clusters: usize,
    /// Nominal operations per image in this group.
    pub ops_per_image: u64,
    /// Area efficiency in GOPS/mm², communication excluded (the pipeline
    /// period is the compute-only bottleneck, as in Fig. 7's caption).
    pub gops_per_mm2: f64,
}

/// Computes Fig. 7: per-group GOPS/mm² at the communication-free pipeline
/// period.
pub fn group_area_efficiency(
    graph: &Graph,
    mapping: &SystemMapping,
    arch: &ArchConfig,
    area: &AreaModel,
) -> Vec<GroupEfficiency> {
    let n_groups = 6;
    let mut clusters = vec![0usize; n_groups];
    for s in mapping.stages() {
        if s.group < n_groups {
            clusters[s.group] += s.total_clusters();
        }
    }
    let mut ops = vec![0u64; n_groups];
    for node in graph.nodes() {
        let g = aimc_dnn::layer_group(graph, node.id);
        if g < n_groups {
            // MAC ops plus the digital element ops of pooling/residual
            // layers (a group consisting only of digital work — group 1,
            // the stem max-pool — still performs operations).
            ops[g] += 2 * node.macs(graph) + node.digital_elem_ops(graph);
        }
    }
    let period = bottleneck_per_image(&mapping.stages, arch).as_s_f64();
    (0..n_groups)
        .map(|g| {
            let area_mm2 = clusters[g] as f64 * area.cluster_mm2();
            let gops = if period > 0.0 {
                ops[g] as f64 / period / 1e9
            } else {
                0.0
            };
            GroupEfficiency {
                group: g,
                label: group_label(g),
                clusters: clusters[g],
                ops_per_image: ops[g],
                gops_per_mm2: if area_mm2 > 0.0 { gops / area_mm2 } else { 0.0 },
            }
        })
        .collect()
}

/// The Sec. VI headline metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Nominal TOPS over the batch makespan.
    pub tops: f64,
    /// Steady-state images per second.
    pub images_per_s: f64,
    /// Batch makespan (fill + steady + drain) in ms.
    pub makespan_ms: f64,
    /// Median steady-state batch interval in ms (16 × per-image interval).
    pub steady_batch_ms: f64,
    /// Batch energy in mJ.
    pub energy_mj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_w: f64,
    /// Area efficiency in GOPS/mm² over the full 512-cluster platform.
    pub gops_per_mm2: f64,
    /// Platform area in mm².
    pub area_mm2: f64,
    /// Clusters used of clusters available.
    pub clusters_used: (usize, usize),
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// HBM channel (DRAM controller) busy fraction over the makespan.
    pub hbm_channel_util: f64,
    /// The busiest quadrant-tree tier (label, peak-link busy fraction) —
    /// where communication stalls concentrate when it is not the HBM.
    pub hottest_tree_tier: Option<(String, f64)>,
}

impl Headline {
    /// Computes the headline metrics from a run.
    pub fn compute(
        mapping: &SystemMapping,
        arch: &ArchConfig,
        report: &RunReport,
        energy_model: &EnergyModel,
        area_model: &AreaModel,
    ) -> Self {
        let energy = energy_model.breakdown(&report.tallies);
        let total_mj = energy.total_mj();
        let avg_w = total_mj * 1e-3 / report.makespan.as_s_f64();
        let tops = report.tops();
        let area = area_model.platform_mm2(arch.n_clusters());
        let loads = link_loads(report);
        let hbm_channel_util = loads
            .iter()
            .find(|l| l.label == "hbm-channel")
            .map_or(0.0, |l| l.peak_util);
        let hottest_tree_tier = loads
            .iter()
            .filter(|l| l.label != "hbm-channel")
            .max_by(|a, b| a.peak_util.total_cmp(&b.peak_util))
            .map(|l| (l.label.clone(), l.peak_util));
        Headline {
            tops,
            images_per_s: report.images_per_s(),
            makespan_ms: report.makespan.as_ms_f64(),
            steady_batch_ms: report.steady_interval.as_ms_f64() * report.batch as f64,
            energy_mj: total_mj,
            tops_per_w: if avg_w > 0.0 { tops / avg_w } else { 0.0 },
            gops_per_mm2: tops * 1000.0 / area,
            area_mm2: area,
            clusters_used: (mapping.n_clusters_used, mapping.n_clusters_available),
            energy,
            hbm_channel_util,
            hottest_tree_tier,
        }
    }

    /// Renders a report table with the paper's reference values alongside.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>12} {:>12}", "metric", "measured", "paper");
        let rows = [
            ("throughput [TOPS]", format!("{:.1}", self.tops), "20.2"),
            (
                "throughput [images/s]",
                format!("{:.0}", self.images_per_s),
                "3303",
            ),
            (
                "batch latency [ms]",
                format!("{:.2}", self.makespan_ms),
                "9.2",
            ),
            (
                "steady batch interval [ms]",
                format!("{:.2}", self.steady_batch_ms),
                "4.8",
            ),
            ("batch energy [mJ]", format!("{:.1}", self.energy_mj), "15"),
            (
                "energy efficiency [TOPS/W]",
                format!("{:.2}", self.tops_per_w),
                "6.5",
            ),
            (
                "area efficiency [GOPS/mm2]",
                format!("{:.1}", self.gops_per_mm2),
                "42",
            ),
            (
                "platform area [mm2]",
                format!("{:.0}", self.area_mm2),
                "480",
            ),
            (
                "clusters used",
                format!("{}/{}", self.clusters_used.0, self.clusters_used.1),
                "322/512",
            ),
        ];
        for (name, val, paper) in rows {
            let _ = writeln!(out, "{:<28} {:>12} {:>12}", name, val, paper);
        }
        let _ = writeln!(
            out,
            "{:<28} {:>11.1}% {:>12}",
            "hbm channel util",
            self.hbm_channel_util * 100.0,
            "-"
        );
        if let Some((tier, util)) = &self.hottest_tree_tier {
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>12}",
                "hottest tree tier",
                format!("{} {:.1}%", tier, util * 100.0),
                "-"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate;
    use aimc_core::{map_network, MappingStrategy};
    use aimc_dnn::resnet18;

    fn setup() -> (Graph, SystemMapping, ArchConfig, RunReport) {
        let g = resnet18(256, 256, 1000);
        let arch = ArchConfig::paper();
        let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r = simulate(&g, &m, &arch, 4).unwrap();
        (g, m, arch, r)
    }

    #[test]
    fn waterfall_levels_decrease_monotonically() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        assert!(w.ideal > w.global_mapping);
        assert!(w.global_mapping > w.local_mapping);
        assert!(w.local_mapping > w.intra_layer_unbalance);
        assert!(w.intra_layer_unbalance >= w.communication);
        assert!(w.communication > 1.0, "final {}", w.communication);
    }

    #[test]
    fn waterfall_ideal_matches_fig6() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        assert!((w.ideal - 516.1).abs() < 1.0);
        // Paper cumulative factors: 1.6x, 4.7x, 23.8x, 28.4x. Ours must be
        // in the same regime (same monotone structure, same order).
        let f = w.cumulative_factors();
        assert!((1.2..2.2).contains(&f[0]), "global {:?}", f);
        assert!((2.0..9.0).contains(&f[1]), "local {:?}", f);
        assert!(f[2] > f[1], "unbalance must add degradation: {:?}", f);
        assert!(f[3] >= f[2], "communication must not help: {:?}", f);
    }

    #[test]
    fn waterfall_render_has_five_levels() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        let s = w.render();
        assert_eq!(s.lines().count(), 6); // header + 5 levels
        assert!(s.contains("ideal"));
        assert!(s.contains("communication"));
    }

    #[test]
    fn group_efficiency_covers_six_groups() {
        let (g, m, arch, _) = setup();
        let eff = group_area_efficiency(&g, &m, &arch, &AreaModel::default());
        assert_eq!(eff.len(), 6);
        let digital: u64 = g.nodes().iter().map(|n| n.digital_elem_ops(&g)).sum();
        let total_ops: u64 = eff.iter().map(|e| e.ops_per_image).sum();
        assert_eq!(total_ops, g.total_ops() + digital);
        // Every group has clusters and positive efficiency.
        for e in &eff {
            assert!(e.clusters > 0, "group {} empty", e.group);
            assert!(e.gops_per_mm2 > 0.0);
        }
    }

    #[test]
    fn deep_group_is_least_efficient_of_the_conv_groups() {
        // Fig. 7: group 5 (8x8x512) has poor reuse ⇒ lowest GOPS/mm² among
        // the residual-stage groups.
        let (g, m, arch, _) = setup();
        let eff = group_area_efficiency(&g, &m, &arch, &AreaModel::default());
        assert!(eff[5].gops_per_mm2 < eff[2].gops_per_mm2);
        assert!(eff[5].gops_per_mm2 < eff[3].gops_per_mm2);
        assert!(eff[5].gops_per_mm2 < eff[4].gops_per_mm2);
    }

    #[test]
    fn link_loads_attribute_traffic_to_tiers() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        // HBM channel first, then one row per tree level.
        assert_eq!(w.link_loads[0].label, "hbm-channel");
        assert_eq!(w.link_loads.len(), 1 + arch.noc.n_levels());
        for l in &w.link_loads {
            assert!(l.peak_util >= l.mean_util, "{}: peak < mean", l.label);
            assert!(l.peak_util <= 1.0, "{}: util > 1", l.label);
        }
        // ResNet-18 inputs/outputs cross the HBM: the channel must be used.
        assert!(w.link_loads[0].bytes > 0);
        assert!(w.link_loads[0].peak_util > 0.0);
        // Tier bytes (plus the channel itself) cover all routed bytes.
        let tier_bytes: u64 = w.link_loads.iter().map(|l| l.bytes).sum();
        assert_eq!(tier_bytes, r.fabric.link_bytes);
        let table = w.render_links();
        assert!(table.contains("hbm-channel"));
        assert!(table.contains("tree-L1"));
    }

    #[test]
    fn headline_is_self_consistent() {
        let (g, m, arch, r) = setup();
        let _ = g;
        let h = Headline::compute(
            &m,
            &arch,
            &r,
            &EnergyModel::default(),
            &AreaModel::default(),
        );
        assert!(h.tops > 1.0);
        assert!(h.images_per_s > 100.0);
        assert!((h.area_mm2 - 480.0).abs() < 0.1);
        assert!(h.energy_mj > 0.0);
        assert!(h.tops_per_w > 0.0);
        // GOPS/mm² consistent with TOPS and area.
        assert!((h.gops_per_mm2 - h.tops * 1000.0 / h.area_mm2).abs() < 1e-9);
        let s = h.render();
        assert!(s.contains("TOPS"));
        assert!(s.contains("20.2")); // paper reference column
    }
}
