//! Derived analyses: the Fig. 6 inefficiency waterfall, the Fig. 7 per-group
//! area efficiency, and the Sec. VI headline metrics.

use crate::pipeline::RunReport;
use crate::power::{AreaModel, EnergyBreakdown, EnergyModel};
use aimc_core::{bottleneck_per_image, ArchConfig, SystemMapping};
use aimc_dnn::{group_label, Graph};

/// The five levels of Fig. 6, in TOPS (nominal-ops convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Waterfall {
    /// Every IMA fully occupied and busy (≈516 TOPS for Table I).
    pub ideal: f64,
    /// Only mapped clusters contribute ("global mapping").
    pub global_mapping: f64,
    /// Crossbar cells actually occupied ("local mapping").
    pub local_mapping: f64,
    /// Pipeline bound by its slowest stage, communication-free
    /// ("intra-layer unbalance").
    pub intra_layer_unbalance: f64,
    /// Measured steady-state throughput with communication and
    /// synchronization ("communication").
    pub communication: f64,
}

impl Waterfall {
    /// Computes the waterfall for a mapped network and its simulation run.
    pub fn compute(
        graph: &Graph,
        mapping: &SystemMapping,
        arch: &ArchConfig,
        report: &RunReport,
    ) -> Self {
        let ideal = arch.ideal_tops();
        let global = ideal * mapping.global_mapping_factor();
        let util = mapping
            .local_mapping_utilization(arch.cluster.ima.xbar.rows, arch.cluster.ima.xbar.cols);
        // `util` is the mean over used clusters, so the achievable rate is
        // the global-mapping level scaled by it.
        let local = global * util;
        let ops_per_image = graph.total_ops() as f64;
        let bottleneck = bottleneck_per_image(&mapping.stages, arch);
        let unbalance = ops_per_image / bottleneck.as_s_f64() / 1e12;
        // The last bar is the *measured* end-to-end throughput over the
        // batch makespan: communication, synchronization, and pipeline
        // fill/drain all land here (the paper's 20.2 TOPS is likewise the
        // delivered end-to-end number).
        let communication = report.tops();
        Waterfall {
            ideal,
            global_mapping: global,
            local_mapping: local,
            intra_layer_unbalance: unbalance,
            communication: communication.min(unbalance),
        }
    }

    /// The five levels in order, with labels.
    pub fn levels(&self) -> [(&'static str, f64); 5] {
        [
            ("ideal", self.ideal),
            ("global mapping", self.global_mapping),
            ("local mapping", self.local_mapping),
            ("intra-layer unbalance", self.intra_layer_unbalance),
            ("communication", self.communication),
        ]
    }

    /// Cumulative degradation factor of each level vs ideal.
    pub fn cumulative_factors(&self) -> [f64; 4] {
        [
            self.ideal / self.global_mapping,
            self.ideal / self.local_mapping,
            self.ideal / self.intra_layer_unbalance,
            self.ideal / self.communication,
        ]
    }

    /// Renders the Fig. 6 table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:>10} {:>8}", "level", "TOPS", "vs ideal");
        let mut prev = self.ideal;
        for (name, tops) in self.levels() {
            let step = prev / tops;
            let _ = writeln!(
                out,
                "{:<24} {:>10.1} {:>7.1}x (step {:.1}x)",
                name,
                tops,
                self.ideal / tops,
                step
            );
            prev = tops;
        }
        out
    }
}

/// One bar of Fig. 7: area efficiency of a layer group's clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupEfficiency {
    /// Group index (0..=5).
    pub group: usize,
    /// IFM-shape label ("64x64x64", …).
    pub label: &'static str,
    /// Clusters mapped to the group (replicas included).
    pub clusters: usize,
    /// Nominal operations per image in this group.
    pub ops_per_image: u64,
    /// Area efficiency in GOPS/mm², communication excluded (the pipeline
    /// period is the compute-only bottleneck, as in Fig. 7's caption).
    pub gops_per_mm2: f64,
}

/// Computes Fig. 7: per-group GOPS/mm² at the communication-free pipeline
/// period.
pub fn group_area_efficiency(
    graph: &Graph,
    mapping: &SystemMapping,
    arch: &ArchConfig,
    area: &AreaModel,
) -> Vec<GroupEfficiency> {
    let n_groups = 6;
    let mut clusters = vec![0usize; n_groups];
    for s in mapping.stages() {
        if s.group < n_groups {
            clusters[s.group] += s.total_clusters();
        }
    }
    let mut ops = vec![0u64; n_groups];
    for node in graph.nodes() {
        let g = aimc_dnn::layer_group(graph, node.id);
        if g < n_groups {
            // MAC ops plus the digital element ops of pooling/residual
            // layers (a group consisting only of digital work — group 1,
            // the stem max-pool — still performs operations).
            ops[g] += 2 * node.macs(graph) + node.digital_elem_ops(graph);
        }
    }
    let period = bottleneck_per_image(&mapping.stages, arch).as_s_f64();
    (0..n_groups)
        .map(|g| {
            let area_mm2 = clusters[g] as f64 * area.cluster_mm2();
            let gops = if period > 0.0 {
                ops[g] as f64 / period / 1e9
            } else {
                0.0
            };
            GroupEfficiency {
                group: g,
                label: group_label(g),
                clusters: clusters[g],
                ops_per_image: ops[g],
                gops_per_mm2: if area_mm2 > 0.0 { gops / area_mm2 } else { 0.0 },
            }
        })
        .collect()
}

/// The Sec. VI headline metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Nominal TOPS over the batch makespan.
    pub tops: f64,
    /// Steady-state images per second.
    pub images_per_s: f64,
    /// Batch makespan (fill + steady + drain) in ms.
    pub makespan_ms: f64,
    /// Median steady-state batch interval in ms (16 × per-image interval).
    pub steady_batch_ms: f64,
    /// Batch energy in mJ.
    pub energy_mj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_w: f64,
    /// Area efficiency in GOPS/mm² over the full 512-cluster platform.
    pub gops_per_mm2: f64,
    /// Platform area in mm².
    pub area_mm2: f64,
    /// Clusters used of clusters available.
    pub clusters_used: (usize, usize),
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl Headline {
    /// Computes the headline metrics from a run.
    pub fn compute(
        mapping: &SystemMapping,
        arch: &ArchConfig,
        report: &RunReport,
        energy_model: &EnergyModel,
        area_model: &AreaModel,
    ) -> Self {
        let energy = energy_model.breakdown(&report.tallies);
        let total_mj = energy.total_mj();
        let avg_w = total_mj * 1e-3 / report.makespan.as_s_f64();
        let tops = report.tops();
        let area = area_model.platform_mm2(arch.n_clusters());
        Headline {
            tops,
            images_per_s: report.images_per_s(),
            makespan_ms: report.makespan.as_ms_f64(),
            steady_batch_ms: report.steady_interval.as_ms_f64() * report.batch as f64,
            energy_mj: total_mj,
            tops_per_w: if avg_w > 0.0 { tops / avg_w } else { 0.0 },
            gops_per_mm2: tops * 1000.0 / area,
            area_mm2: area,
            clusters_used: (mapping.n_clusters_used, mapping.n_clusters_available),
            energy,
        }
    }

    /// Renders a report table with the paper's reference values alongside.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>12} {:>12}", "metric", "measured", "paper");
        let rows = [
            ("throughput [TOPS]", format!("{:.1}", self.tops), "20.2"),
            (
                "throughput [images/s]",
                format!("{:.0}", self.images_per_s),
                "3303",
            ),
            (
                "batch latency [ms]",
                format!("{:.2}", self.makespan_ms),
                "9.2",
            ),
            (
                "steady batch interval [ms]",
                format!("{:.2}", self.steady_batch_ms),
                "4.8",
            ),
            ("batch energy [mJ]", format!("{:.1}", self.energy_mj), "15"),
            (
                "energy efficiency [TOPS/W]",
                format!("{:.2}", self.tops_per_w),
                "6.5",
            ),
            (
                "area efficiency [GOPS/mm2]",
                format!("{:.1}", self.gops_per_mm2),
                "42",
            ),
            (
                "platform area [mm2]",
                format!("{:.0}", self.area_mm2),
                "480",
            ),
            (
                "clusters used",
                format!("{}/{}", self.clusters_used.0, self.clusters_used.1),
                "322/512",
            ),
        ];
        for (name, val, paper) in rows {
            let _ = writeln!(out, "{:<28} {:>12} {:>12}", name, val, paper);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate;
    use aimc_core::{map_network, MappingStrategy};
    use aimc_dnn::resnet18;

    fn setup() -> (Graph, SystemMapping, ArchConfig, RunReport) {
        let g = resnet18(256, 256, 1000);
        let arch = ArchConfig::paper();
        let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r = simulate(&g, &m, &arch, 4);
        (g, m, arch, r)
    }

    #[test]
    fn waterfall_levels_decrease_monotonically() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        assert!(w.ideal > w.global_mapping);
        assert!(w.global_mapping > w.local_mapping);
        assert!(w.local_mapping > w.intra_layer_unbalance);
        assert!(w.intra_layer_unbalance >= w.communication);
        assert!(w.communication > 1.0, "final {}", w.communication);
    }

    #[test]
    fn waterfall_ideal_matches_fig6() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        assert!((w.ideal - 516.1).abs() < 1.0);
        // Paper cumulative factors: 1.6x, 4.7x, 23.8x, 28.4x. Ours must be
        // in the same regime (same monotone structure, same order).
        let f = w.cumulative_factors();
        assert!((1.2..2.2).contains(&f[0]), "global {:?}", f);
        assert!((2.0..9.0).contains(&f[1]), "local {:?}", f);
        assert!(f[2] > f[1], "unbalance must add degradation: {:?}", f);
        assert!(f[3] >= f[2], "communication must not help: {:?}", f);
    }

    #[test]
    fn waterfall_render_has_five_levels() {
        let (g, m, arch, r) = setup();
        let w = Waterfall::compute(&g, &m, &arch, &r);
        let s = w.render();
        assert_eq!(s.lines().count(), 6); // header + 5 levels
        assert!(s.contains("ideal"));
        assert!(s.contains("communication"));
    }

    #[test]
    fn group_efficiency_covers_six_groups() {
        let (g, m, arch, _) = setup();
        let eff = group_area_efficiency(&g, &m, &arch, &AreaModel::default());
        assert_eq!(eff.len(), 6);
        let digital: u64 = g.nodes().iter().map(|n| n.digital_elem_ops(&g)).sum();
        let total_ops: u64 = eff.iter().map(|e| e.ops_per_image).sum();
        assert_eq!(total_ops, g.total_ops() + digital);
        // Every group has clusters and positive efficiency.
        for e in &eff {
            assert!(e.clusters > 0, "group {} empty", e.group);
            assert!(e.gops_per_mm2 > 0.0);
        }
    }

    #[test]
    fn deep_group_is_least_efficient_of_the_conv_groups() {
        // Fig. 7: group 5 (8x8x512) has poor reuse ⇒ lowest GOPS/mm² among
        // the residual-stage groups.
        let (g, m, arch, _) = setup();
        let eff = group_area_efficiency(&g, &m, &arch, &AreaModel::default());
        assert!(eff[5].gops_per_mm2 < eff[2].gops_per_mm2);
        assert!(eff[5].gops_per_mm2 < eff[3].gops_per_mm2);
        assert!(eff[5].gops_per_mm2 < eff[4].gops_per_mm2);
    }

    #[test]
    fn headline_is_self_consistent() {
        let (g, m, arch, r) = setup();
        let _ = g;
        let h = Headline::compute(
            &m,
            &arch,
            &r,
            &EnergyModel::default(),
            &AreaModel::default(),
        );
        assert!(h.tops > 1.0);
        assert!(h.images_per_s > 100.0);
        assert!((h.area_mm2 - 480.0).abs() < 0.1);
        assert!(h.energy_mj > 0.0);
        assert!(h.tops_per_w > 0.0);
        // GOPS/mm² consistent with TOPS and area.
        assert!((h.gops_per_mm2 - h.tops * 1000.0 / h.area_mm2).abs() < 1e-9);
        let s = h.render();
        assert!(s.contains("TOPS"));
        assert!(s.contains("20.2")); // paper reference column
    }
}
