//! Text/CSV rendering of run results (the figure-regeneration binaries in
//! `aimc-bench` print these).

use crate::pipeline::{ClusterBreakdown, RunReport};
use aimc_sim::SimTime;

/// Renders the per-cluster breakdown (Fig. 5B/C/D) as CSV:
/// `cluster,stage,group,bound,compute_us,communication_us,synchronization_us,sleep_us`.
pub fn breakdown_csv(rows: &[ClusterBreakdown]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "cluster,stage,group,bound,compute_us,communication_us,synchronization_us,sleep_us\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.3},{:.3},{:.3},{:.3}",
            r.cluster,
            r.stage_name,
            r.group,
            if r.analog_bound { "analog" } else { "digital" },
            r.compute.as_us_f64(),
            r.communication.as_us_f64(),
            r.synchronization.as_us_f64(),
            r.sleep.as_us_f64(),
        );
    }
    out
}

/// Renders a coarse ASCII view of the per-cluster execution-time bars
/// (Fig. 5B/C/D): one row per cluster bucket, `#` = compute, `~` = comm,
/// `.` = sleep. `buckets` compresses the cluster axis.
pub fn breakdown_ascii(rows: &[ClusterBreakdown], buckets: usize, width: usize) -> String {
    use std::fmt::Write as _;
    if rows.is_empty() {
        return String::from("(no clusters)\n");
    }
    let buckets = buckets.max(1).min(rows.len());
    let per = rows.len().div_ceil(buckets);
    let total = rows
        .iter()
        .map(|r| (r.compute + r.communication + r.synchronization + r.sleep).as_ps())
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    for b in 0..buckets {
        let chunk = &rows[b * per..((b + 1) * per).min(rows.len())];
        if chunk.is_empty() {
            break;
        }
        let n = chunk.len() as u64;
        let avg = |f: fn(&ClusterBreakdown) -> SimTime| {
            chunk.iter().map(|r| f(r).as_ps()).sum::<u64>() / n
        };
        let comp = avg(|r| r.compute);
        let comm = avg(|r| r.communication + r.synchronization);
        let sleep = avg(|r| r.sleep);
        let scale = |x: u64| (x as usize * width) / total as usize;
        let _ = writeln!(
            out,
            "{:>4}..{:<4} |{}{}{}|",
            chunk[0].cluster,
            chunk.last().unwrap().cluster,
            "#".repeat(scale(comp)),
            "~".repeat(scale(comm)),
            ".".repeat(scale(sleep)),
        );
    }
    out
}

/// Renders the per-link fabric statistics as CSV:
/// `link,busy_us,util,bytes,transactions,peak_queued` — one row per directed
/// link (dense topology order, HBM controller last), utilization over the
/// run makespan.
pub fn link_csv(r: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("link,busy_us,util,bytes,transactions,peak_queued\n");
    let span = r.makespan.as_ps().max(1) as f64;
    for l in &r.fabric.links {
        let _ = writeln!(
            out,
            "{:?},{:.3},{:.4},{},{},{}",
            l.id,
            l.busy.as_us_f64(),
            l.busy.as_ps() as f64 / span,
            l.bytes,
            l.transactions,
            l.peak_queued,
        );
    }
    out
}

/// Renders a one-line summary of a run.
pub fn run_summary(r: &RunReport) -> String {
    format!(
        "batch {} in {} ({} img/s steady, {:.1} TOPS nominal, {:.1} TOPS crossbar-executed, {} events)",
        r.batch,
        r.makespan,
        r.images_per_s().round(),
        r.tops(),
        r.tops_executed(),
        r.events
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cluster: usize, comp_us: u64, sleep_us: u64) -> ClusterBreakdown {
        ClusterBreakdown {
            cluster,
            stage_name: format!("s{cluster}"),
            group: 0,
            compute: SimTime::from_us(comp_us),
            communication: SimTime::from_us(1),
            synchronization: SimTime::from_us(1),
            sleep: SimTime::from_us(sleep_us),
            analog_bound: cluster.is_multiple_of(2),
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![row(0, 10, 5), row(1, 3, 12)];
        let csv = breakdown_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("cluster,stage,group,bound"));
        assert!(lines[1].starts_with("0,s0,0,analog"));
        assert!(lines[2].starts_with("1,s1,0,digital"));
    }

    #[test]
    fn ascii_renders_one_line_per_bucket() {
        let rows: Vec<ClusterBreakdown> = (0..16).map(|i| row(i, 10, 5)).collect();
        let art = breakdown_ascii(&rows, 4, 40);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }

    #[test]
    fn link_csv_lists_every_link() {
        use aimc_core::{map_network, ArchConfig, MappingStrategy};
        use aimc_dnn::{ConvCfg, GraphBuilder, Shape};
        let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
        b.linear("fc", c0, 4);
        let g = b.finish();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = crate::pipeline::simulate(&g, &m, &arch, 2).unwrap();
        let csv = link_csv(&r);
        assert_eq!(csv.lines().count(), 1 + r.fabric.links.len());
        assert!(csv.contains("HbmCtrl"));
    }

    #[test]
    fn ascii_handles_empty_and_degenerate() {
        assert!(breakdown_ascii(&[], 4, 40).contains("no clusters"));
        let one = vec![row(0, 1, 1)];
        assert_eq!(breakdown_ascii(&one, 10, 20).lines().count(), 1);
    }
}
