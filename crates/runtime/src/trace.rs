//! Timeline reconstruction from fire records: per-stage utilization, chunk
//! service statistics and an ASCII Gantt view (the visual counterpart of
//! Fig. 2C's pipelining diagram).

use crate::pipeline::RunReport;
use aimc_core::SystemMapping;
use aimc_sim::stats::Accumulator;
use aimc_sim::SimTime;

/// Per-stage timeline statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace {
    /// Stage id.
    pub stage: usize,
    /// Stage name.
    pub name: String,
    /// Chunks executed.
    pub chunks: u64,
    /// Busy time summed over lanes.
    pub busy: SimTime,
    /// Busy fraction of `lanes × makespan`.
    pub utilization: f64,
    /// First fire start.
    pub first_start: SimTime,
    /// Last service end.
    pub last_end: SimTime,
    /// Inter-fire gap statistics (per lane-interleaved stream), in ns.
    pub gap_ns: Accumulator,
}

/// Builds per-stage statistics from a run's fire records.
pub fn stage_traces(mapping: &SystemMapping, report: &RunReport) -> Vec<StageTrace> {
    let n = mapping.stages.len();
    let mut traces: Vec<StageTrace> = mapping
        .stages
        .iter()
        .map(|s| StageTrace {
            stage: s.id,
            name: s.name.clone(),
            chunks: 0,
            busy: SimTime::ZERO,
            utilization: 0.0,
            first_start: SimTime::MAX,
            last_end: SimTime::ZERO,
            gap_ns: Accumulator::new(),
        })
        .collect();
    let mut last_start: Vec<Option<SimTime>> = vec![None; n];
    for f in &report.fires {
        let t = &mut traces[f.stage as usize];
        t.chunks += 1;
        t.busy += f.end - f.start;
        t.first_start = t.first_start.min(f.start);
        t.last_end = t.last_end.max(f.end);
        if let Some(prev) = last_start[f.stage as usize] {
            t.gap_ns.add((f.start.saturating_sub(prev)).as_ns_f64());
        }
        last_start[f.stage as usize] = Some(f.start);
    }
    let makespan = report.makespan.as_ps().max(1);
    for (t, s) in traces.iter_mut().zip(&mapping.stages) {
        t.utilization = t.busy.as_ps() as f64 / (makespan * s.lanes as u64) as f64;
        if t.chunks == 0 {
            t.first_start = SimTime::ZERO;
        }
    }
    traces
}

/// Renders an ASCII Gantt chart: one row per stage, `#` where any lane of
/// the stage is busy, over `width` time buckets of the makespan.
pub fn gantt_ascii(mapping: &SystemMapping, report: &RunReport, width: usize) -> String {
    use std::fmt::Write as _;
    let width = width.max(8);
    let makespan = report.makespan.as_ps().max(1);
    let mut rows = vec![vec![false; width]; mapping.stages.len()];
    for f in &report.fires {
        let a = (f.start.as_ps() * width as u64 / makespan).min(width as u64 - 1) as usize;
        let b = (f.end.as_ps() * width as u64 / makespan).min(width as u64 - 1) as usize;
        for cell in rows[f.stage as usize][a..=b].iter_mut() {
            *cell = true;
        }
    }
    let mut out = String::new();
    for (s, row) in mapping.stages.iter().zip(&rows) {
        let bar: String = row.iter().map(|&b| if b { '#' } else { '.' }).collect();
        let _ = writeln!(out, "{:<14} |{bar}|", s.name);
    }
    let _ = writeln!(out, "{:<14}  0 {:>w$}", "", report.makespan, w = width - 2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate;
    use aimc_core::{map_network, ArchConfig, MappingStrategy};
    use aimc_dnn::{ConvCfg, Graph, GraphBuilder, Shape};

    fn setup() -> (Graph, SystemMapping, ArchConfig, RunReport) {
        let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
        let gap = b.global_avgpool("gap", c1);
        b.linear("fc", gap, 4);
        let g = b.finish();
        let arch = ArchConfig::small(4, 8);
        let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
        let r = simulate(&g, &m, &arch, 3).unwrap();
        (g, m, arch, r)
    }

    #[test]
    fn traces_count_all_chunks() {
        let (_, m, _, r) = setup();
        let traces = stage_traces(&m, &r);
        assert_eq!(traces.len(), m.stages.len());
        for (t, s) in traces.iter().zip(&m.stages) {
            let expect = (s.tiling.chunks_per_image * 3) as u64;
            assert_eq!(t.chunks, expect, "stage {}", t.name);
            assert!(t.utilization > 0.0 && t.utilization <= 1.0);
            assert!(t.last_end <= r.makespan);
            assert!(t.first_start < t.last_end);
        }
    }

    #[test]
    fn pipeline_stages_start_in_topological_order() {
        let (_, m, _, r) = setup();
        let traces = stage_traces(&m, &r);
        // Later stages cannot start before the stage feeding them.
        for s in &m.stages {
            for e in &s.producers {
                assert!(
                    traces[s.id].first_start >= traces[e.from].first_start,
                    "{} starts before its producer {}",
                    s.name,
                    m.stages[e.from].name
                );
            }
        }
    }

    #[test]
    fn gap_statistics_reflect_steady_state() {
        let (_, m, _, r) = setup();
        let traces = stage_traces(&m, &r);
        // The bottleneck stage fires back-to-back: its median gap is close
        // to its service time.
        let busiest = traces.iter().max_by_key(|t| t.busy).unwrap();
        assert!(busiest.gap_ns.count() > 0);
        assert!(busiest.gap_ns.mean() > 0.0);
    }

    #[test]
    fn gantt_has_one_row_per_stage() {
        let (_, m, _, r) = setup();
        let art = gantt_ascii(&m, &r, 48);
        assert_eq!(art.lines().count(), m.stages.len() + 1);
        assert!(art.contains('#'));
        // The first compute stage is busy early: its row starts with '#'
        // soon after the source.
        let c0_row = art.lines().find(|l| l.starts_with("c0")).unwrap();
        assert!(c0_row.contains('#'));
    }

    #[test]
    fn fires_are_recorded_in_time_order() {
        let (_, _, _, r) = setup();
        for w in r.fires.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
        assert!(!r.fires.is_empty());
    }
}
