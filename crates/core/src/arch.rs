//! Whole-platform architecture configuration (Table I).

use aimc_cluster::ClusterConfig;
use aimc_noc::NocConfig;
use aimc_sim::Frequency;
use core::fmt;

/// Aggregate configuration of the massively parallel platform.
///
/// # Examples
/// ```
/// use aimc_core::ArchConfig;
/// let a = ArchConfig::paper();
/// assert_eq!(a.n_clusters(), 512);
/// assert!((a.ideal_tops() - 516.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Per-cluster configuration (cores, L1, IMA, DMA).
    pub cluster: ClusterConfig,
    /// Interconnect + HBM configuration; also defines the cluster count.
    pub noc: NocConfig,
    /// Platform clock (Table I: 1 GHz).
    pub frequency: Frequency,
}

impl ArchConfig {
    /// The paper's platform: 512 clusters, Table I parameters.
    pub fn paper() -> Self {
        ArchConfig {
            cluster: ClusterConfig::paper(),
            noc: NocConfig::paper_512(),
            frequency: Frequency::from_ghz(1),
        }
    }

    /// A reduced platform for fast tests: `4 × l1_count` clusters with the
    /// same cluster internals.
    pub fn small(clusters_per_l1: usize, l1_count: usize) -> Self {
        ArchConfig {
            cluster: ClusterConfig::paper(),
            noc: NocConfig::small(clusters_per_l1, l1_count),
            frequency: Frequency::from_ghz(1),
        }
    }

    /// Number of clusters (leaves of the quadrant tree).
    pub fn n_clusters(&self) -> usize {
        self.noc.n_clusters()
    }

    /// Total RISC-V cores.
    pub fn n_cores(&self) -> usize {
        self.n_clusters() * self.cluster.n_cores
    }

    /// Parameters storable per IMA ("64 K parameters" for 256×256).
    pub fn params_per_ima(&self) -> usize {
        self.cluster.ima.xbar.capacity_weights()
    }

    /// Peak platform throughput with every IMA at full occupancy — the
    /// "ideal" bar of Fig. 6, in TOPS.
    pub fn ideal_tops(&self) -> f64 {
        self.n_clusters() as f64 * self.cluster.ima.xbar.peak_ops_per_s() / 1e12
    }

    /// Validates all nested configurations.
    pub fn validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        self.noc.validate()?;
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for ArchConfig {
    /// Renders Table I.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qf: Vec<String> = self
            .noc
            .quadrant_factors
            .iter()
            .rev()
            .map(|x| x.to_string())
            .collect();
        let lat: Vec<String> = std::iter::once(self.noc.hbm.latency_cycles)
            .chain(self.noc.router_latency_cycles.iter().rev().copied())
            .map(|x| x.to_string())
            .collect();
        let wid: Vec<String> = std::iter::once(self.noc.hbm.width_bytes)
            .chain(self.noc.link_width_bytes.iter().rev().copied())
            .map(|x| x.to_string())
            .collect();
        writeln!(f, "Number of clusters                {}", self.n_clusters())?;
        writeln!(f, "Number of IMA per cluster         1")?;
        writeln!(
            f,
            "Number of CORES per cluster       {}",
            self.cluster.n_cores
        )?;
        writeln!(
            f,
            "L1 memory size                    {} MB",
            self.cluster.l1_bytes / (1024 * 1024)
        )?;
        writeln!(
            f,
            "HBM size                          {:.1} GB",
            self.noc.hbm.capacity_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
        )?;
        writeln!(f, "Operating frequency               {}", self.frequency)?;
        writeln!(
            f,
            "Streamer ports (read and write)   {}",
            self.cluster.ima.streamer_read_ports
        )?;
        writeln!(
            f,
            "IMA crossbar size                 {}x{}",
            self.cluster.ima.xbar.rows, self.cluster.ima.xbar.cols
        )?;
        writeln!(
            f,
            "Analog latency (MVM operation)    {} ns",
            self.cluster.ima.xbar.mvm_latency_ns
        )?;
        writeln!(f, "Quadrant factor (HBM,wr,L3,L2,L1) (1,{})", qf.join(","))?;
        writeln!(
            f,
            "Data width (HBM,wr,L3,L2,L1)      ({}) Bytes",
            wid.join(",")
        )?;
        writeln!(
            f,
            "Latency (HBM,wr,L3,L2,L1)         ({}) cycles",
            lat.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let a = ArchConfig::paper();
        assert!(a.validate().is_ok());
        assert_eq!(a.n_clusters(), 512);
        assert_eq!(a.n_cores(), 8192);
        assert_eq!(a.params_per_ima(), 65_536);
    }

    #[test]
    fn ideal_tops_is_fig6_ideal_bar() {
        let a = ArchConfig::paper();
        assert!((a.ideal_tops() - 516.1).abs() < 0.5, "{}", a.ideal_tops());
    }

    #[test]
    fn table_render_contains_key_rows() {
        let s = ArchConfig::paper().to_string();
        assert!(s.contains("512"));
        assert!(s.contains("256x256"));
        assert!(s.contains("130 ns"));
        assert!(s.contains("(1,8,4,4,4)"));
        assert!(s.contains("(100,4,4,4,4)"));
        assert!(s.contains("(64,64,64,64,64)"));
    }

    #[test]
    fn small_config_shrinks_cluster_count() {
        let a = ArchConfig::small(4, 4);
        assert_eq!(a.n_clusters(), 16);
        assert!(a.validate().is_ok());
    }
}
