//! The mapped pipeline: stages, lanes, and inter-stage edges.
//!
//! A [`SystemMapping`] is the compiler's output: the DNN graph lowered onto
//! the 512-cluster platform as an ordered list of pipeline [`Stage`]s. Each
//! stage owns one or more *lanes* (data-replication copies, Sec. V-2), each
//! lane a fixed set of clusters (the layer's row×column splits, Sec. V-1).
//! Dedicated reduction-tree levels (Sec. V-3) are stages of their own.

use crate::reduction::ReductionPlan;
use crate::split::SplitPlan;
use crate::strategy::MappingStrategy;
use crate::tiling::Tiling;
use aimc_cluster::{DigitalKernel, ImaJob};
use aimc_dnn::NodeId;
use core::fmt;

/// Pipeline stage index within a [`SystemMapping`].
pub type StageId = usize;
/// Physical cluster index on the platform.
pub type ClusterId = usize;

/// The role a stage plays in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageRole {
    /// Streams input images from HBM (no clusters).
    Source,
    /// A layer's analog computation (conv / FC / residual projection), with
    /// absorbed reduction levels on the same clusters.
    Analog,
    /// A dedicated reduction-tree level (`level` starts at 1 after the
    /// absorbed levels).
    Reduction {
        /// Dedicated level index (1-based).
        level: usize,
        /// Partial tiles entering this level (per column group).
        inputs: usize,
    },
    /// A purely digital layer (pooling, residual add without projection) or
    /// the digital part of a residual with projection.
    Digital,
}

impl StageRole {
    /// Whether the balancer may add lanes to this stage.
    pub fn replicable(&self) -> bool {
        !matches!(self, StageRole::Source)
    }
}

/// The analog component of a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogPart {
    /// Row/column split of the weight matrix.
    pub split: SplitPlan,
    /// Reduction-tree plan for the row-split partials.
    pub reduction: ReductionPlan,
    /// Per-chunk IMA job on each split cluster (max split dimensions).
    pub job: ImaJob,
}

/// How a skip (residual) edge is buffered between distant pipeline stages
/// (Sec. V-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidualRoute {
    /// Round-trip through the off-chip HBM (the naive placement).
    Hbm,
    /// Staged in the L1 of a spare cluster (the optimized placement).
    StorageCluster(ClusterId),
}

/// Classification of a data edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Producer and consumer are adjacent pipeline stages.
    Stream,
    /// A residual skip edge with a long data lifetime, buffered `via`
    /// external storage.
    Skip {
        /// Where the data is buffered in flight.
        via: ResidualRoute,
    },
}

/// One inbound data edge of a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Producer stage.
    pub from: StageId,
    /// Total payload bytes entering the consumer per consumer chunk
    /// (including any broadcast multiplication).
    pub bytes_per_chunk: usize,
    /// Number of distinct point-to-point transfers the payload splits into.
    pub transfers: usize,
    /// Extra producer chunks needed for convolution halo (0 or 1).
    pub halo_chunks: usize,
    /// Stream vs skip routing.
    pub kind: EdgeKind,
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage index (topological).
    pub id: StageId,
    /// The graph node this stage implements (reduction stages reference
    /// their analog layer's node).
    pub node: NodeId,
    /// Display name, e.g. `"conv2"`, `"conv2/red1"`.
    pub name: String,
    /// Role in the pipeline.
    pub role: StageRole,
    /// W-dimension tiling of this stage's output.
    pub tiling: Tiling,
    /// Analog component, if any.
    pub analog: Option<AnalogPart>,
    /// Digital kernels executed per chunk on each lane's cores (absorbed
    /// reductions, requantization, pooling, residual adds).
    pub digital_per_chunk: Vec<DigitalKernel>,
    /// Number of data-replication lanes (Sec. V-2); chunk `k` is served by
    /// lane `k mod lanes`.
    pub lanes: usize,
    /// Clusters per lane.
    pub lane_clusters: usize,
    /// Flat cluster assignment, length `lanes * lane_clusters` (lane-major).
    /// Empty until placement.
    pub clusters: Vec<ClusterId>,
    /// Inbound edges (empty for the source).
    pub producers: Vec<EdgeSpec>,
    /// Fig. 7 layer group of the parent node.
    pub group: usize,
}

impl Stage {
    /// Total clusters over all lanes.
    pub fn total_clusters(&self) -> usize {
        self.lanes * self.lane_clusters
    }

    /// The clusters of one lane.
    ///
    /// # Panics
    /// Panics if `lane >= lanes` or placement has not run.
    pub fn lane(&self, lane: usize) -> &[ClusterId] {
        assert!(lane < self.lanes, "lane out of range");
        &self.clusters[lane * self.lane_clusters..(lane + 1) * self.lane_clusters]
    }

    /// A representative cluster of a lane (DMA endpoint for edge traffic).
    /// Source stages have no clusters and return `None`.
    pub fn lane_representative(&self, lane: usize) -> Option<ClusterId> {
        if self.lane_clusters == 0 {
            None
        } else {
            Some(self.lane(lane)[0])
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let role = match &self.role {
            StageRole::Source => "source".to_string(),
            StageRole::Analog => "analog".to_string(),
            StageRole::Reduction { level, inputs } => format!("red{level}({inputs})"),
            StageRole::Digital => "digital".to_string(),
        };
        write!(
            f,
            "stage {:>3} {:<12} {:<10} lanes={} x {} clusters, {} chunks/img",
            self.id, self.name, role, self.lanes, self.lane_clusters, self.tiling.chunks_per_image
        )
    }
}

/// Residual storage summary (Sec. V-4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualReport {
    /// Total in-flight residual bytes across all skip edges.
    pub total_bytes: usize,
    /// Storage clusters dedicated to residuals (empty when routed to HBM).
    pub storage_clusters: Vec<ClusterId>,
}

/// The complete compiled mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemMapping {
    /// Pipeline stages in topological order (stage 0 is the source).
    pub stages: Vec<Stage>,
    /// Strategy that produced this mapping.
    pub strategy: MappingStrategy,
    /// Final stage of each graph node (the stage whose output is the node's
    /// OFM), indexed by node id.
    pub node_final_stage: Vec<StageId>,
    /// Residual placement summary.
    pub residuals: ResidualReport,
    /// Clusters used (compute + residual storage).
    pub n_clusters_used: usize,
    /// Total clusters available on the platform.
    pub n_clusters_available: usize,
}

impl SystemMapping {
    /// Stages in id order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Compute clusters (excluding residual storage).
    pub fn compute_clusters(&self) -> usize {
        self.stages.iter().map(|s| s.total_clusters()).sum()
    }

    /// Fraction of platform clusters holding work — the "global mapping"
    /// factor of Fig. 6 divides ideal performance by its inverse.
    pub fn global_mapping_factor(&self) -> f64 {
        self.n_clusters_used as f64 / self.n_clusters_available as f64
    }

    /// Mean crossbar utilization over all mapped IMAs (replicas included) —
    /// the "local mapping" factor of Fig. 6. Clusters without an IMA job
    /// (digital/reduction/storage) count as zero utilization, matching the
    /// paper's "in other cases the array is not used at all".
    pub fn local_mapping_utilization(&self, xbar_rows: usize, xbar_cols: usize) -> f64 {
        let mut used_cells = 0.0f64;
        let mut clusters = 0usize;
        for s in &self.stages {
            clusters += s.total_clusters();
            if let Some(a) = &s.analog {
                used_cells +=
                    a.split.utilization(xbar_rows, xbar_cols) * (a.split.imas() * s.lanes) as f64;
                // Non-IMA clusters of the lane (none today: lane == splits)
            }
        }
        clusters += self.residuals.storage_clusters.len();
        if clusters == 0 {
            0.0
        } else {
            used_cells / clusters as f64
        }
    }

    /// A Fig. 2B-style text summary of the mapping.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "strategy: {:?} — {} / {} clusters ({} compute + {} residual storage)",
            self.strategy,
            self.n_clusters_used,
            self.n_clusters_available,
            self.compute_clusters(),
            self.residuals.storage_clusters.len()
        );
        for s in &self.stages {
            let _ = writeln!(out, "{s}");
        }
        out
    }
}
