//! Analytic per-stage latency estimation.
//!
//! Used twice: by the pipeline balancer (Sec. V-2 — replication levels are
//! chosen from these estimates) and by the Fig. 6 "intra-layer unbalance"
//! analysis (pipeline throughput bound by the slowest stage, communication
//! excluded).

use crate::arch::ArchConfig;
use crate::stage::{Stage, StageRole};
use aimc_cluster::{DigitalEngine, ImaModel};
use aimc_sim::{Cycles, SimTime};

/// Per-chunk timing of one stage lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Analog (IMA) time per chunk, zero if no analog part.
    pub analog: SimTime,
    /// Digital (CORES) time per chunk.
    pub digital: SimTime,
    /// Lane occupancy per chunk: IMA and CORES overlap across consecutive
    /// chunks (Sec. IV-5), so the steady-state service is their maximum.
    pub service: SimTime,
    /// Chunk latency through the lane: analog then digital, sequential for
    /// any *single* chunk.
    pub latency: SimTime,
}

/// Computes the per-chunk timing of `stage` on the given architecture.
pub fn stage_chunk_timing(stage: &Stage, arch: &ArchConfig) -> StageTiming {
    let analog = match &stage.analog {
        Some(part) => {
            let ima = ImaModel::new(arch.cluster.ima.clone(), arch.frequency);
            ima.run(part.job).duration
        }
        None => SimTime::ZERO,
    };
    let digital = if stage.digital_per_chunk.is_empty() {
        SimTime::ZERO
    } else {
        let eng = DigitalEngine::new(
            arch.cluster.n_cores,
            arch.cluster.kernel_launch_cycles,
            arch.frequency,
        );
        eng.run_all(&stage.digital_per_chunk).duration
    };
    let source = if matches!(stage.role, StageRole::Source) {
        // The source streams image chunks from HBM: its service is the HBM
        // channel occupancy for one chunk.
        let bytes = stage.tiling.out_tile_bytes();
        let beats = bytes.div_ceil(arch.noc.hbm.width_bytes) as u64;
        arch.frequency
            .cycles_to_time(Cycles(arch.noc.hbm.row_overhead_cycles + beats))
    } else {
        SimTime::ZERO
    };
    let service = analog.max(digital).max(source);
    StageTiming {
        analog,
        digital,
        service,
        latency: analog + digital,
    }
}

/// Per-image stage occupancy: `chunks_per_image × service / lanes`.
///
/// This is the quantity the pipeline balancer equalizes; the slowest stage
/// bounds steady-state throughput.
pub fn stage_time_per_image(stage: &Stage, arch: &ArchConfig) -> SimTime {
    let t = stage_chunk_timing(stage, arch);
    let total = t.service.as_ps() * stage.tiling.chunks_per_image as u64;
    SimTime::from_ps(total / stage.lanes as u64)
}

/// The pipeline's estimated steady-state bottleneck (slowest stage per
/// image), ignoring communication — Fig. 6's "intra-layer unbalance" level.
pub fn bottleneck_per_image(stages: &[Stage], arch: &ArchConfig) -> SimTime {
    stages
        .iter()
        .map(|s| stage_time_per_image(s, arch))
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::ReductionPlan;
    use crate::split::SplitPlan;
    use crate::stage::{AnalogPart, Stage, StageRole};
    use crate::tiling::Tiling;
    use aimc_cluster::{DigitalKernel, ImaJob};
    use aimc_dnn::Shape;

    fn analog_stage(lanes: usize) -> Stage {
        let split = SplitPlan::for_matrix(576, 64, 256, 256);
        let tiling = Tiling::plan(Shape::new(64, 64, 64), Shape::new(64, 64, 64), 3, 1);
        Stage {
            id: 1,
            node: 2,
            name: "conv2".into(),
            role: StageRole::Analog,
            tiling,
            analog: Some(AnalogPart {
                job: ImaJob {
                    n_mvm: tiling.mvms_per_chunk(),
                    rows_used: split.max_rows(),
                    cols_used: split.max_cols(),
                },
                split,
                reduction: ReductionPlan::new(3, 4),
            }),
            digital_per_chunk: vec![DigitalKernel::Requantize { elems: 16384 }],
            lanes,
            lane_clusters: 3,
            clusters: vec![],
            producers: vec![],
            group: 2,
        }
    }

    #[test]
    fn analog_stage_is_mvm_bound() {
        let t = stage_chunk_timing(&analog_stage(1), &ArchConfig::paper());
        // 256 MVMs × 130 ns ≈ 33 µs dominates the digital requantize.
        assert!(t.analog > SimTime::from_us(30), "{}", t.analog);
        assert!(t.digital < t.analog);
        assert_eq!(t.service, t.analog);
        assert_eq!(t.latency, t.analog + t.digital);
    }

    #[test]
    fn replication_divides_per_image_time() {
        let arch = ArchConfig::paper();
        let t1 = stage_time_per_image(&analog_stage(1), &arch);
        let t4 = stage_time_per_image(&analog_stage(4), &arch);
        assert_eq!(t1.as_ps(), 4 * t4.as_ps());
    }

    #[test]
    fn per_image_time_matches_paper_unbalance_scale() {
        // A 64-channel conv at 64x64 with no replication: 4096 MVMs ⇒
        // ≈0.53 ms/image — the "first layers dominate" effect of Fig. 5B.
        let arch = ArchConfig::paper();
        let t = stage_time_per_image(&analog_stage(1), &arch);
        let ms = t.as_ms_f64();
        assert!((0.5..0.62).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn digital_stage_service_is_kernel_time() {
        let tiling = Tiling::plan(Shape::new(64, 128, 128), Shape::new(64, 64, 64), 3, 2);
        let s = Stage {
            id: 2,
            node: 1,
            name: "pool1".into(),
            role: StageRole::Digital,
            tiling,
            analog: None,
            digital_per_chunk: vec![DigitalKernel::MaxPool {
                elems: tiling.mvms_per_chunk() * 64,
                k: 3,
            }],
            lanes: 1,
            lane_clusters: 1,
            clusters: vec![],
            producers: vec![],
            group: 1,
        };
        let t = stage_chunk_timing(&s, &ArchConfig::paper());
        assert_eq!(t.analog, SimTime::ZERO);
        assert_eq!(t.service, t.digital);
        assert!(t.digital > SimTime::ZERO);
    }

    #[test]
    fn source_stage_rate_is_hbm_bound() {
        let tiling = Tiling::plan(Shape::new(3, 256, 256), Shape::new(3, 256, 256), 1, 1);
        let s = Stage {
            id: 0,
            node: 0,
            name: "source".into(),
            role: StageRole::Source,
            tiling,
            analog: None,
            digital_per_chunk: vec![],
            lanes: 1,
            lane_clusters: 0,
            clusters: vec![],
            producers: vec![],
            group: 0,
        };
        let arch = ArchConfig::paper();
        let t = stage_chunk_timing(&s, &arch);
        // 3*256*16 = 12288 bytes / 64 B per cycle + 24 row overhead = 216 cyc.
        assert_eq!(t.service, SimTime::from_ns(216));
    }

    #[test]
    fn bottleneck_takes_the_max() {
        let arch = ArchConfig::paper();
        let fast = analog_stage(16);
        let slow = analog_stage(1);
        let b = bottleneck_per_image(&[fast.clone(), slow.clone()], &arch);
        assert_eq!(b, stage_time_per_image(&slow, &arch));
    }
}
