//! The mapping compiler: lowers a DNN graph onto the many-core platform.
//!
//! Pipeline (Sec. IV/V of the paper):
//!
//! 1. **Stage construction** — every graph node becomes an analog or digital
//!    pipeline stage (multi-cluster split per Sec. V-1), followed by its
//!    dedicated reduction-tree levels (Sec. V-3). A source stage streams
//!    input chunks from HBM.
//! 2. **Balancing** (strategies with replication, Sec. V-2) — a greedy
//!    balancer adds data-replication lanes to the slowest stage until that
//!    stage is capped (replication cannot exceed the chunk parallelism) or
//!    the cluster budget is exhausted.
//! 3. **Residual placement** (Sec. V-4) — skip edges are routed through HBM
//!    (naive) or through spare clusters' L1 (final strategy).
//! 4. **Placement** — stages receive consecutive physical cluster ids in
//!    pipeline order (the x-axis layout of Fig. 5B/C/D), and every stage's
//!    tile set is proven to fit the 1 MB L1.

use crate::arch::ArchConfig;
use crate::estimate::stage_time_per_image;
use crate::reduction::ReductionPlan;
use crate::split::SplitPlan;
use crate::stage::{
    AnalogPart, EdgeKind, EdgeSpec, ResidualReport, ResidualRoute, Stage, StageId, StageRole,
    SystemMapping,
};
use crate::strategy::MappingStrategy;
use crate::tiling::Tiling;
use aimc_cluster::{DigitalKernel, ImaJob, L1Overflow};
use aimc_dnn::{layer_group, Graph, LayerKind, Shape};
use core::fmt;

/// Multiplier converting per-image residual footprints into in-flight bytes:
/// with double-buffered chunk flow roughly 1.4 images of each skip tensor
/// are alive at once (producer side + consumer side + chunk skew). The paper
/// reports 1.6 MB for ResNet-18, which this factor reproduces (1184 KiB of
/// skip OFMs × 1.4 ≈ 1.62 MB).
pub const RESIDUAL_INFLIGHT_FACTOR: f64 = 1.4;

/// Errors from the mapping compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The mapping needs more clusters than the platform provides.
    OutOfClusters {
        /// Clusters required.
        needed: usize,
        /// Clusters available.
        available: usize,
    },
    /// A stage's working set cannot fit the L1.
    L1 {
        /// Offending stage name.
        stage: String,
        /// The allocation failure.
        overflow: L1Overflow,
    },
    /// The graph contains an operator the mapper does not support.
    Unsupported(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::OutOfClusters { needed, available } => {
                write!(
                    f,
                    "mapping needs {needed} clusters, platform has {available}"
                )
            }
            MapError::L1 { stage, overflow } => write!(f, "stage {stage}: {overflow}"),
            MapError::Unsupported(s) => write!(f, "unsupported operator: {s}"),
        }
    }
}

impl std::error::Error for MapError {}

/// Maximum data-replication lanes per stage: a lane serves chunks
/// `k ≡ lane (mod lanes)`, so replication beyond the per-image chunk count
/// stops helping single-image latency and is disallowed (this is also what
/// bounds the paper's Layer-0 replication).
fn lane_cap(stage: &Stage) -> usize {
    stage.tiling.chunks_per_image
}

/// Chooses a tiling whose per-cluster working set fits the L1, refining the
/// W split beyond the default when necessary (Sec. IV-4; wide early layers
/// of VGG-class networks need more than [`crate::MAX_CHUNKS_PER_IMAGE`]
/// slices).
#[allow(clippy::too_many_arguments)] // a focused planning helper, not API
fn fit_tiling(
    ifm: Shape,
    ofm: Shape,
    kw: usize,
    stride: usize,
    l1_bytes: usize,
    row_share: usize,
    col_share: usize,
    partials: usize,
    stage: &str,
) -> Result<Tiling, MapError> {
    let mut min_chunks = 1;
    loop {
        let t = Tiling::plan_min_chunks(ifm, ofm, kw, stride, min_chunks);
        match t.check_l1(l1_bytes, row_share, col_share, partials) {
            Ok(()) => return Ok(t),
            Err(overflow) => {
                if t.chunks_per_image >= ofm.w {
                    return Err(MapError::L1 {
                        stage: stage.to_string(),
                        overflow,
                    });
                }
                min_chunks = t.chunks_per_image + 1;
            }
        }
    }
}

/// Compiles `graph` onto `arch` with the given strategy.
///
/// # Errors
/// Returns [`MapError`] if the platform is too small, a tile set cannot fit
/// L1, or the graph contains unsupported operators.
///
/// # Examples
/// ```
/// use aimc_core::{map_network, ArchConfig, MappingStrategy};
/// use aimc_dnn::resnet18;
/// let g = resnet18(256, 256, 1000);
/// let m = map_network(&g, &ArchConfig::paper(), MappingStrategy::OnChipResiduals)?;
/// assert!(m.n_clusters_used <= 512);
/// # Ok::<(), aimc_core::MapError>(())
/// ```
pub fn map_network(
    graph: &Graph,
    arch: &ArchConfig,
    strategy: MappingStrategy,
) -> Result<SystemMapping, MapError> {
    let xr = arch.cluster.ima.xbar.rows;
    let xc = arch.cluster.ima.xbar.cols;
    let mut stages: Vec<Stage> = Vec::new();
    let mut node_final_stage: Vec<StageId> = vec![usize::MAX; graph.len()];
    let mut skip_edges: Vec<(StageId, usize, usize)> = Vec::new(); // (stage, edge idx, bytes/img)

    // ---- Source stage -------------------------------------------------------
    let in_shape = graph.input_shape();
    let source_tiling = Tiling::plan(in_shape, in_shape, 1, 1);
    stages.push(Stage {
        id: 0,
        node: usize::MAX,
        name: "source".into(),
        role: StageRole::Source,
        tiling: source_tiling,
        analog: None,
        digital_per_chunk: vec![],
        lanes: 1,
        lane_clusters: 0,
        clusters: vec![],
        producers: vec![],
        group: 0,
    });

    // ---- Per-node stages ----------------------------------------------------
    for node in graph.nodes() {
        let ifm = node.ifm_shape(graph);
        let ofm = node.out_shape;
        let group = layer_group(graph, node.id);
        let producer_stage = |input_idx: usize| -> StageId {
            match node.inputs.get(input_idx) {
                Some(&p) => node_final_stage[p],
                None => 0, // network input comes from the source stage
            }
        };

        match &node.kind {
            LayerKind::Input => {
                node_final_stage[node.id] = 0;
            }
            LayerKind::Conv(cfg) => {
                let split = SplitPlan::for_matrix(cfg.xbar_rows(), cfg.xbar_cols(), xr, xc);
                let reduction = ReductionPlan::new(split.row_splits, 4);
                // Dedicated reduction clusters double-buffer two partial
                // inputs and one output (≈6 tiles); fold that requirement
                // into the layer's tiling as an equivalent partial count.
                let partials = if reduction.dedicated_adds_per_level.is_empty() {
                    reduction.absorbed_levels.min(2) + 1
                } else {
                    (reduction.absorbed_levels.min(2) + 1).max(4)
                };
                let tiling = fit_tiling(
                    ifm,
                    ofm,
                    cfg.kw,
                    cfg.stride,
                    arch.cluster.l1_bytes,
                    split.row_splits,
                    split.col_splits,
                    partials,
                    &node.name,
                )?;
                let last = push_analog_chain(
                    &mut stages,
                    AnalogChain {
                        node: node.id,
                        name: &node.name,
                        rows: cfg.xbar_rows(),
                        cols: cfg.xbar_cols(),
                        tiling,
                        group,
                        main_producer: producer_stage(0),
                        in_bytes_per_chunk: tiling.in_tile_bytes(),
                        halo: usize::from(cfg.kw > cfg.stride),
                        extra_digital: vec![],
                    },
                    (xr, xc),
                );
                node_final_stage[node.id] = last;
            }
            LayerKind::Linear {
                in_features,
                out_features,
            } => {
                let tiling = Tiling::plan(
                    Shape::new(*in_features, 1, 1),
                    Shape::new(*out_features, 1, 1),
                    1,
                    1,
                );
                let last = push_analog_chain(
                    &mut stages,
                    AnalogChain {
                        node: node.id,
                        name: &node.name,
                        rows: *in_features,
                        cols: *out_features,
                        tiling,
                        group,
                        main_producer: producer_stage(0),
                        in_bytes_per_chunk: *in_features,
                        halo: 0,
                        extra_digital: vec![],
                    },
                    (xr, xc),
                );
                node_final_stage[node.id] = last;
            }
            LayerKind::DepthwiseConv(cfg) => {
                // Depthwise convolutions run digitally on the CORES: their
                // block-diagonal weight matrix wastes crossbar cells (K²
                // useful cells per column), so the SIMD MAC loop wins — the
                // paper's related work time-multiplexes MobileNet for the
                // same reason.
                let tiling = fit_tiling(
                    ifm,
                    ofm,
                    cfg.kw,
                    cfg.stride,
                    arch.cluster.l1_bytes,
                    1,
                    1,
                    1,
                    &node.name,
                )?;
                let out_elems = tiling.mvms_per_chunk() * ofm.c as u64;
                let macs = out_elems * (cfg.kh * cfg.kw) as u64;
                let id = stages.len();
                stages.push(Stage {
                    id,
                    node: node.id,
                    name: node.name.clone(),
                    role: StageRole::Digital,
                    tiling,
                    analog: None,
                    digital_per_chunk: vec![
                        DigitalKernel::FcDigital { macs },
                        DigitalKernel::Requantize { elems: out_elems },
                    ],
                    lanes: 1,
                    lane_clusters: 1,
                    clusters: vec![],
                    producers: vec![EdgeSpec {
                        from: producer_stage(0),
                        bytes_per_chunk: tiling.in_tile_bytes(),
                        transfers: 1,
                        halo_chunks: usize::from(cfg.kw > cfg.stride),
                        kind: EdgeKind::Stream,
                    }],
                    group,
                });
                node_final_stage[node.id] = id;
            }
            LayerKind::MaxPool { k, stride, .. } => {
                let tiling = fit_tiling(
                    ifm,
                    ofm,
                    *k,
                    *stride,
                    arch.cluster.l1_bytes,
                    1,
                    1,
                    1,
                    &node.name,
                )?;
                let id = stages.len();
                stages.push(Stage {
                    id,
                    node: node.id,
                    name: node.name.clone(),
                    role: StageRole::Digital,
                    tiling,
                    analog: None,
                    digital_per_chunk: vec![DigitalKernel::MaxPool {
                        elems: tiling.mvms_per_chunk() * ofm.c as u64,
                        k: *k,
                    }],
                    lanes: 1,
                    lane_clusters: 1,
                    clusters: vec![],
                    producers: vec![EdgeSpec {
                        from: producer_stage(0),
                        bytes_per_chunk: tiling.in_tile_bytes(),
                        transfers: 1,
                        halo_chunks: usize::from(*k > *stride),
                        kind: EdgeKind::Stream,
                    }],
                    group,
                });
                node_final_stage[node.id] = id;
            }
            LayerKind::GlobalAvgPool => {
                let tiling = Tiling::plan(ifm, ofm, 1, 1);
                let id = stages.len();
                stages.push(Stage {
                    id,
                    node: node.id,
                    name: node.name.clone(),
                    role: StageRole::Digital,
                    tiling,
                    analog: None,
                    digital_per_chunk: vec![DigitalKernel::AvgPool {
                        elems: ifm.numel() as u64,
                    }],
                    lanes: 1,
                    lane_clusters: 1,
                    clusters: vec![],
                    producers: vec![EdgeSpec {
                        from: producer_stage(0),
                        bytes_per_chunk: ifm.numel(),
                        transfers: 1,
                        halo_chunks: 0,
                        kind: EdgeKind::Stream,
                    }],
                    group,
                });
                node_final_stage[node.id] = id;
            }
            LayerKind::Residual { projection } => {
                let tiling =
                    fit_tiling(ofm, ofm, 1, 1, arch.cluster.l1_bytes, 1, 1, 2, &node.name)?;
                let main_from = producer_stage(0);
                let skip_from = producer_stage(1);
                let skip_bytes_per_chunk = stages[skip_from].tiling.out_tile_bytes()
                    * (stages[skip_from].tiling.chunks_per_image / tiling.chunks_per_image).max(1);
                let skip_ofm_bytes_per_image = graph.node(node.inputs[1]).out_shape.numel();

                let analog = projection.map(|p| {
                    let split = SplitPlan::for_matrix(p.xbar_rows(), p.xbar_cols(), xr, xc);
                    AnalogPart {
                        job: ImaJob {
                            n_mvm: tiling.mvms_per_chunk(),
                            rows_used: split.max_rows(),
                            cols_used: split.max_cols(),
                        },
                        reduction: ReductionPlan::new(split.row_splits, 4),
                        split,
                    }
                });
                let lane_clusters = analog.as_ref().map_or(1, |a| a.split.imas());
                let out_elems = tiling.mvms_per_chunk() * ofm.c as u64;
                let id = stages.len();
                let skip_transfers = analog.as_ref().map_or(1, |a| a.split.col_splits);
                let mut producers = vec![EdgeSpec {
                    from: main_from,
                    bytes_per_chunk: tiling.out_tile_bytes(),
                    transfers: 1,
                    halo_chunks: 0,
                    kind: EdgeKind::Stream,
                }];
                let skip_edge_idx = producers.len();
                producers.push(EdgeSpec {
                    from: skip_from,
                    bytes_per_chunk: skip_bytes_per_chunk * skip_transfers,
                    transfers: skip_transfers,
                    halo_chunks: 0,
                    kind: EdgeKind::Skip {
                        via: ResidualRoute::Hbm, // placement fixed later
                    },
                });
                stages.push(Stage {
                    id,
                    node: node.id,
                    name: node.name.clone(),
                    role: if analog.is_some() {
                        StageRole::Analog
                    } else {
                        StageRole::Digital
                    },
                    tiling,
                    analog,
                    digital_per_chunk: vec![
                        DigitalKernel::ResidualAdd { elems: out_elems },
                        DigitalKernel::Requantize { elems: out_elems },
                    ],
                    lanes: 1,
                    lane_clusters,
                    clusters: vec![],
                    producers,
                    group,
                });
                skip_edges.push((id, skip_edge_idx, skip_ofm_bytes_per_image));
                node_final_stage[node.id] = id;
            }
        }
    }

    // ---- Residual sizing (before balancing: affects the budget) -------------
    let residual_bytes: usize = (skip_edges.iter().map(|&(_, _, b)| b).sum::<usize>() as f64
        * RESIDUAL_INFLIGHT_FACTOR) as usize;
    let n_storage = if strategy.residuals_on_chip() {
        residual_bytes.div_ceil(arch.cluster.l1_bytes)
    } else {
        0
    };

    // ---- Balancing (Sec. V-2) ------------------------------------------------
    if strategy.balances() {
        let budget = arch
            .n_clusters()
            .saturating_sub(n_storage)
            .saturating_sub(stages.iter().map(|s| s.total_clusters()).sum());
        balance(&mut stages, arch, budget);
    }

    // ---- Placement ------------------------------------------------------------
    let mut next_cluster = 0usize;
    for s in stages.iter_mut() {
        let n = s.total_clusters();
        s.clusters = (next_cluster..next_cluster + n).collect();
        next_cluster += n;
    }
    let storage_clusters: Vec<usize> = (next_cluster..next_cluster + n_storage).collect();
    let n_used = next_cluster + n_storage;
    if n_used > arch.n_clusters() {
        return Err(MapError::OutOfClusters {
            needed: n_used,
            available: arch.n_clusters(),
        });
    }

    // ---- Residual routing (Sec. V-4) ------------------------------------------
    for (i, &(stage_id, edge_idx, _)) in skip_edges.iter().enumerate() {
        let via = if strategy.residuals_on_chip() {
            ResidualRoute::StorageCluster(storage_clusters[i % storage_clusters.len().max(1)])
        } else {
            ResidualRoute::Hbm
        };
        stages[stage_id].producers[edge_idx].kind = EdgeKind::Skip { via };
    }

    // ---- L1 validation ---------------------------------------------------------
    for s in &stages {
        match &s.role {
            StageRole::Source => continue,
            StageRole::Reduction { .. } => {
                // A reduction cluster double-buffers two partial inputs and
                // one output tile, each one column group's share of the OFM
                // tile (the conv's tiling was fitted with this in mind).
                let col_splits = stages
                    .iter()
                    .find(|t| t.node == s.node && t.analog.is_some())
                    .and_then(|t| t.analog.as_ref())
                    .map_or(1, |a| a.split.col_splits);
                let tile = s.tiling.out_tile_bytes().div_ceil(col_splits);
                let mut l1 = aimc_cluster::L1Allocator::new(arch.cluster.l1_bytes);
                let check = l1
                    .alloc_double("partial_a", tile)
                    .and_then(|_| l1.alloc_double("partial_b", tile))
                    .and_then(|_| l1.alloc_double("sum", tile));
                check.map_err(|overflow| MapError::L1 {
                    stage: s.name.clone(),
                    overflow,
                })?;
            }
            _ => {
                let (row_share, col_share, partials) = match &s.analog {
                    Some(a) => (
                        a.split.row_splits,
                        a.split.col_splits,
                        a.reduction.absorbed_levels.min(2) + 1,
                    ),
                    None => (1, 1, 1),
                };
                s.tiling
                    .check_l1(arch.cluster.l1_bytes, row_share, col_share, partials)
                    .map_err(|overflow| MapError::L1 {
                        stage: s.name.clone(),
                        overflow,
                    })?;
            }
        }
    }

    Ok(SystemMapping {
        stages,
        strategy,
        node_final_stage,
        residuals: ResidualReport {
            total_bytes: residual_bytes,
            storage_clusters,
        },
        n_clusters_used: n_used,
        n_clusters_available: arch.n_clusters(),
    })
}

/// Parameters for one analog layer and its reduction chain.
struct AnalogChain<'a> {
    node: usize,
    name: &'a str,
    rows: usize,
    cols: usize,
    tiling: Tiling,
    group: usize,
    main_producer: StageId,
    in_bytes_per_chunk: usize,
    halo: usize,
    extra_digital: Vec<DigitalKernel>,
}

/// Pushes the analog stage plus its dedicated reduction levels; returns the
/// final stage id (whose output is the layer's OFM).
fn push_analog_chain(
    stages: &mut Vec<Stage>,
    chain: AnalogChain<'_>,
    (xr, xc): (usize, usize),
) -> StageId {
    let split = SplitPlan::for_matrix(chain.rows, chain.cols, xr, xc);
    let reduction = ReductionPlan::new(split.row_splits, 4);
    let out_elems_per_group = (chain.tiling.mvms_per_chunk() as usize * chain.tiling.ofm.c)
        .div_ceil(split.col_splits) as u64;

    let mut digital = chain.extra_digital;
    for _ in 0..reduction.absorbed_levels {
        digital.push(DigitalKernel::ReductionAdd {
            elems: out_elems_per_group,
        });
    }
    digital.push(DigitalKernel::Requantize {
        elems: out_elems_per_group,
    });

    let id = stages.len();
    stages.push(Stage {
        id,
        node: chain.node,
        name: chain.name.to_string(),
        role: StageRole::Analog,
        tiling: chain.tiling,
        analog: Some(AnalogPart {
            job: ImaJob {
                n_mvm: chain.tiling.mvms_per_chunk(),
                rows_used: split.max_rows(),
                cols_used: split.max_cols(),
            },
            split: split.clone(),
            reduction: reduction.clone(),
        }),
        digital_per_chunk: digital,
        lanes: 1,
        lane_clusters: split.imas(),
        clusters: vec![],
        producers: vec![EdgeSpec {
            from: chain.main_producer,
            bytes_per_chunk: chain.in_bytes_per_chunk * split.col_splits,
            transfers: split.col_splits,
            halo_chunks: chain.halo,
            kind: EdgeKind::Stream,
        }],
        group: chain.group,
    });

    // Dedicated reduction levels.
    let mut last = id;
    let mut inputs = reduction.after_absorption;
    let tile_bytes_per_group = chain.tiling.out_tile_bytes().div_ceil(split.col_splits);
    for (li, &adds) in reduction.dedicated_adds_per_level.iter().enumerate() {
        let rid = stages.len();
        stages.push(Stage {
            id: rid,
            node: chain.node,
            name: format!("{}/red{}", chain.name, li + 1),
            role: StageRole::Reduction {
                level: li + 1,
                inputs,
            },
            tiling: chain.tiling,
            analog: None,
            digital_per_chunk: vec![DigitalKernel::ReductionAdd {
                elems: out_elems_per_group,
            }],
            lanes: 1,
            lane_clusters: adds * split.col_splits,
            clusters: vec![],
            producers: vec![EdgeSpec {
                from: last,
                bytes_per_chunk: tile_bytes_per_group * inputs * split.col_splits,
                transfers: inputs * split.col_splits,
                halo_chunks: 0,
                kind: EdgeKind::Stream,
            }],
            group: chain.group,
        });
        last = rid;
        inputs = inputs.div_ceil(2);
    }
    last
}

/// Greedy pipeline balancer: repeatedly add one replication lane to the
/// slowest stage until it is capped or the budget runs out (Sec. V-2).
fn balance(stages: &mut [Stage], arch: &ArchConfig, mut budget: usize) {
    loop {
        // Find the slowest stage.
        let mut worst: Option<(usize, u64)> = None;
        for (i, s) in stages.iter().enumerate() {
            let t = stage_time_per_image(s, arch).as_ps();
            if worst.is_none_or(|(_, wt)| t > wt) {
                worst = Some((i, t));
            }
        }
        let Some((idx, _)) = worst else { return };
        let s = &mut stages[idx];
        if !s.role.replicable() || s.lanes >= lane_cap(s) || s.lane_clusters > budget {
            // The bottleneck cannot be improved: the pipeline is balanced.
            return;
        }
        budget -= s.lane_clusters;
        s.lanes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimc_dnn::resnet18;

    fn arch() -> ArchConfig {
        ArchConfig::paper()
    }

    fn stage_named<'a>(m: &'a SystemMapping, name: &str) -> &'a Stage {
        m.stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no stage {name}"))
    }

    #[test]
    fn naive_mapping_fits_the_platform() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Naive).unwrap();
        assert!(m.n_clusters_used < 512, "used {}", m.n_clusters_used);
        assert!(m.n_clusters_used > 200, "used {}", m.n_clusters_used);
        // No replication anywhere.
        assert!(m.stages.iter().all(|s| s.lanes == 1));
        // Residuals to HBM.
        assert!(m.residuals.storage_clusters.is_empty());
    }

    #[test]
    fn deep_conv_layers_take_40_clusters() {
        // Sec. V-1: a 2.3M-parameter 512-channel conv needs 36 IMAs and,
        // with its reduction tree, 40 clusters.
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Naive).unwrap();
        let conv21 = stage_named(&m, "conv21");
        let a = conv21.analog.as_ref().unwrap();
        assert_eq!(a.split.imas(), 36);
        let red_clusters: usize = m
            .stages
            .iter()
            .filter(|s| s.node == 21 && matches!(s.role, StageRole::Reduction { .. }))
            .map(|s| s.total_clusters())
            .sum();
        assert_eq!(conv21.total_clusters() + red_clusters, 40);
    }

    #[test]
    fn layer0_single_ima_no_reduction() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Naive).unwrap();
        let conv0 = stage_named(&m, "conv0");
        assert_eq!(conv0.total_clusters(), 1);
        assert!(conv0.analog.as_ref().unwrap().reduction.is_trivial());
        assert!(!m
            .stages
            .iter()
            .any(|s| s.node == 0 && matches!(s.role, StageRole::Reduction { .. })));
    }

    #[test]
    fn balanced_mapping_replicates_the_stem() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Balanced).unwrap();
        let conv0 = stage_named(&m, "conv0");
        assert!(
            conv0.lanes >= 8,
            "Layer 0 should be heavily replicated, got {}",
            conv0.lanes
        );
        // Replication must never exceed the chunk parallelism.
        for s in &m.stages {
            assert!(s.lanes <= s.tiling.chunks_per_image.max(1), "{}", s.name);
        }
        assert!(m.n_clusters_used <= 512);
        assert!(
            m.n_clusters_used
                > map_network(&g, &arch(), MappingStrategy::Naive)
                    .unwrap()
                    .n_clusters_used
        );
    }

    #[test]
    fn final_strategy_adds_residual_storage_clusters() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::OnChipResiduals).unwrap();
        // Sec. V-4: ≈1.6 MB of residuals ⇒ 2 spare clusters.
        assert_eq!(m.residuals.storage_clusters.len(), 2);
        let mb = m.residuals.total_bytes as f64 / (1024.0 * 1024.0);
        assert!((1.4..1.9).contains(&mb), "residual footprint {mb} MB");
        // Every skip edge routed through a storage cluster.
        for s in &m.stages {
            for e in &s.producers {
                if let EdgeKind::Skip { via } = e.kind {
                    assert!(matches!(via, ResidualRoute::StorageCluster(_)));
                }
            }
        }
    }

    #[test]
    fn naive_routes_residuals_through_hbm() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Naive).unwrap();
        let mut n_skip = 0;
        for s in &m.stages {
            for e in &s.producers {
                if let EdgeKind::Skip { via } = e.kind {
                    assert_eq!(via, ResidualRoute::Hbm);
                    n_skip += 1;
                }
            }
        }
        assert_eq!(n_skip, 8, "ResNet-18 has 8 residual joins");
    }

    #[test]
    fn cluster_ids_are_consecutive_in_pipeline_order() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::OnChipResiduals).unwrap();
        let mut expected = 0usize;
        for s in &m.stages {
            for &c in &s.clusters {
                assert_eq!(c, expected);
                expected += 1;
            }
        }
        for &c in &m.residuals.storage_clusters {
            assert_eq!(c, expected);
            expected += 1;
        }
        assert_eq!(expected, m.n_clusters_used);
    }

    #[test]
    fn edges_reference_earlier_stages() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Balanced).unwrap();
        for s in &m.stages {
            for e in &s.producers {
                assert!(e.from < s.id, "edge {} -> {} not topological", e.from, s.id);
                assert!(e.bytes_per_chunk > 0);
                assert!(e.transfers > 0);
            }
        }
    }

    #[test]
    fn used_cluster_count_matches_paper_scale() {
        // The paper's final mapping uses 322 of 512 clusters; ours should be
        // in the same regime (250–420) for the same network and platform.
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::OnChipResiduals).unwrap();
        assert!(
            (250..=420).contains(&m.n_clusters_used),
            "clusters used: {}",
            m.n_clusters_used
        );
        let f = m.global_mapping_factor();
        assert!((0.5..=0.85).contains(&f), "global mapping factor {f}");
    }

    #[test]
    fn local_utilization_is_fractional() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Naive).unwrap();
        let u = m.local_mapping_utilization(256, 256);
        // Mixed utilization: deep layers pack perfectly, early layers poorly,
        // digital clusters at zero.
        assert!((0.15..0.75).contains(&u), "utilization {u}");
    }

    #[test]
    fn too_small_platform_is_rejected() {
        let g = resnet18(256, 256, 1000);
        let small = ArchConfig::small(4, 4); // 16 clusters
        let err = map_network(&g, &small, MappingStrategy::Naive).unwrap_err();
        assert!(matches!(err, MapError::OutOfClusters { .. }));
        assert!(err.to_string().contains("clusters"));
    }

    #[test]
    fn summary_mentions_every_stage() {
        let g = resnet18(256, 256, 1000);
        let m = map_network(&g, &arch(), MappingStrategy::Naive).unwrap();
        let s = m.summary();
        assert!(s.contains("conv0"));
        assert!(s.contains("fc27"));
        assert!(s.contains("red1"));
    }
}
