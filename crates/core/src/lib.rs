//! # aimc-core — the mapping compiler
//!
//! This crate implements the paper's central contribution: the computational
//! model and static mapping that lower an end-to-end DNN onto a massively
//! parallel heterogeneous AIMC platform (Secs. IV and V):
//!
//! * [`SplitPlan`] — multi-cluster layer splitting: row splits with partial
//!   reduction, column splits with input broadcast (Sec. V-1);
//! * [`ReductionPlan`] — pipelined logarithmic reduction trees, with the
//!   first levels absorbed by the producer clusters' idle cores (Sec. V-3);
//! * [`Tiling`] — W-dimension data tiling under the 1 MB L1 budget, with the
//!   batch as the implicit continuation of W (Sec. IV-4);
//! * data replication and digital parallelization via a greedy pipeline
//!   balancer (Sec. V-2);
//! * residual lifetime management: HBM vs spare-cluster L1 (Sec. V-4);
//! * [`ArchConfig`] — the Table I platform description.
//!
//! The output, a [`SystemMapping`], is a fully placed pipeline (stages →
//! lanes → physical clusters, plus inter-stage edges with byte counts and
//! chunk-dependency metadata) that `aimc-runtime` executes on the
//! event-driven platform simulator.
//!
//! ## Example
//! ```
//! use aimc_core::{map_network, ArchConfig, MappingStrategy};
//! use aimc_dnn::resnet18;
//!
//! # fn main() -> Result<(), aimc_core::MapError> {
//! let graph = resnet18(256, 256, 1000);
//! let mapping = map_network(&graph, &ArchConfig::paper(), MappingStrategy::OnChipResiduals)?;
//! println!("{}", mapping.summary());
//! assert!(mapping.n_clusters_used <= 512);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod estimate;
mod mapping;
mod reduction;
mod split;
mod stage;
mod strategy;
mod tiling;

pub use arch::ArchConfig;
pub use estimate::{bottleneck_per_image, stage_chunk_timing, stage_time_per_image, StageTiming};
pub use mapping::{map_network, MapError, RESIDUAL_INFLIGHT_FACTOR};
pub use reduction::ReductionPlan;
pub use split::SplitPlan;
pub use stage::{
    AnalogPart, ClusterId, EdgeKind, EdgeSpec, ResidualReport, ResidualRoute, Stage, StageId,
    StageRole, SystemMapping,
};
pub use strategy::MappingStrategy;
pub use tiling::{Tiling, MAX_CHUNKS_PER_IMAGE};
