//! Data tiling along the W dimension (Sec. IV-4).
//!
//! IFM/OFM are split into vertical slices ("chunks") so tiles fit the 1 MB
//! L1; the batch dimension is the continuation of W, so a batch of B images
//! is a stream of `B × chunks_per_image` chunks flowing down the pipeline
//! (Fig. 2C).

use aimc_cluster::L1Allocator;
use aimc_dnn::Shape;

/// Upper bound on chunks per image: more chunks = finer pipelining but more
/// per-tile overhead. 16 vertical slices keeps every ResNet-18 tile well
/// under the L1 budget while giving the pipeline enough in-flight chunks.
pub const MAX_CHUNKS_PER_IMAGE: usize = 16;

/// The tiling of one layer's input/output feature maps.
///
/// # Examples
/// ```
/// use aimc_core::Tiling;
/// use aimc_dnn::Shape;
/// // Layer 2: 64x64x64 in → 64x64x64 out, 3x3 s1.
/// let t = Tiling::plan(Shape::new(64, 64, 64), Shape::new(64, 64, 64), 3, 1);
/// assert_eq!(t.chunks_per_image, 16);
/// assert_eq!(t.out_tile_w, 4);
/// assert_eq!(t.in_tile_w, 6); // 4*1 + (3-1) halo
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Input feature-map shape.
    pub ifm: Shape,
    /// Output feature-map shape.
    pub ofm: Shape,
    /// Vertical slices per image.
    pub chunks_per_image: usize,
    /// Output tile width (last chunk may be narrower; byte accounting uses
    /// this conservative width).
    pub out_tile_w: usize,
    /// Input tile width including convolution halo.
    pub in_tile_w: usize,
}

impl Tiling {
    /// Plans the tiling for a layer with kernel width `kw` and stride
    /// `stride` (use `kw = stride = 1` for element-wise layers).
    ///
    /// The chunk count is the largest divisor of `ofm.w` not exceeding
    /// [`MAX_CHUNKS_PER_IMAGE`] (falling back to `ofm.w` itself below the
    /// cap), so chunks tile the width exactly for the power-of-two ResNet
    /// geometries.
    pub fn plan(ifm: Shape, ofm: Shape, kw: usize, stride: usize) -> Self {
        Self::plan_min_chunks(ifm, ofm, kw, stride, 1)
    }

    /// Like [`Tiling::plan`] but with at least `min_chunks` vertical slices
    /// — used when the default tiling's working set exceeds the L1 and the
    /// W split must be refined (wide early layers of VGG-class networks).
    ///
    /// Picks the smallest divisor of `ofm.w` that is ≥ both `min_chunks`
    /// and the default chunk count, saturating at `ofm.w` (1-pixel tiles).
    pub fn plan_min_chunks(
        ifm: Shape,
        ofm: Shape,
        kw: usize,
        stride: usize,
        min_chunks: usize,
    ) -> Self {
        let default = largest_divisor_at_most(ofm.w, MAX_CHUNKS_PER_IMAGE);
        let chunks = if min_chunks <= default {
            default
        } else {
            (min_chunks..=ofm.w)
                .find(|d| ofm.w.is_multiple_of(*d))
                .unwrap_or(ofm.w)
        };
        let out_tile_w = ofm.w.div_ceil(chunks);
        let halo = kw.saturating_sub(stride);
        let in_tile_w = (out_tile_w * stride + halo).min(ifm.w);
        Tiling {
            ifm,
            ofm,
            chunks_per_image: chunks,
            out_tile_w,
            in_tile_w,
        }
    }

    /// Input tile bytes (int8) for the full channel depth.
    pub fn in_tile_bytes(&self) -> usize {
        self.ifm.c * self.ifm.h * self.in_tile_w
    }

    /// Output tile bytes (int8) for the full channel depth.
    pub fn out_tile_bytes(&self) -> usize {
        self.ofm.c * self.ofm.h * self.out_tile_w
    }

    /// Output pixels per chunk (MVMs per chunk for an analog layer).
    pub fn mvms_per_chunk(&self) -> u64 {
        (self.ofm.h * self.out_tile_w) as u64
    }

    /// Validates that a cluster holding `1/row_share` of the input channels
    /// and `1/col_share` of the output channels can double-buffer its tiles
    /// (plus `extra_partials` partial-sum tiles for absorbed reductions) in
    /// `l1_bytes`.
    ///
    /// # Errors
    /// Returns the failing allocation as an [`aimc_cluster::L1Overflow`].
    pub fn check_l1(
        &self,
        l1_bytes: usize,
        row_share: usize,
        col_share: usize,
        extra_partials: usize,
    ) -> Result<(), aimc_cluster::L1Overflow> {
        let mut l1 = L1Allocator::new(l1_bytes);
        let in_bytes = self.in_tile_bytes().div_ceil(row_share.max(1));
        let out_bytes = self.out_tile_bytes().div_ceil(col_share.max(1));
        l1.alloc_double("ifm_tile", in_bytes)?;
        l1.alloc_double("ofm_tile", out_bytes)?;
        for i in 0..extra_partials {
            l1.alloc(&format!("partial{i}"), out_bytes)?;
        }
        Ok(())
    }
}

/// Largest divisor of `n` that is ≤ `cap` (1 divides everything).
fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    debug_assert!(n > 0);
    (1..=cap.min(n))
        .rev()
        .find(|d| n.is_multiple_of(*d))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_helper() {
        assert_eq!(largest_divisor_at_most(128, 16), 16);
        assert_eq!(largest_divisor_at_most(8, 16), 8);
        assert_eq!(largest_divisor_at_most(12, 16), 12);
        assert_eq!(largest_divisor_at_most(14, 16), 14);
        assert_eq!(largest_divisor_at_most(15, 4), 3);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
        assert_eq!(largest_divisor_at_most(1, 16), 1);
    }

    #[test]
    fn resnet_layer_tilings() {
        // Layer 0: 3x256x256 → 64x128x128, 7x7 s2.
        let t0 = Tiling::plan(Shape::new(3, 256, 256), Shape::new(64, 128, 128), 7, 2);
        assert_eq!(t0.chunks_per_image, 16);
        assert_eq!(t0.out_tile_w, 8);
        assert_eq!(t0.in_tile_w, 8 * 2 + 5);
        // Deep 8x8 layers: width 8 < 16 ⇒ 8 chunks of width 1.
        let t5 = Tiling::plan(Shape::new(512, 8, 8), Shape::new(512, 8, 8), 3, 1);
        assert_eq!(t5.chunks_per_image, 8);
        assert_eq!(t5.out_tile_w, 1);
        assert_eq!(t5.in_tile_w, 3);
        // FC / GAP output: width 1 ⇒ single chunk.
        let tf = Tiling::plan(Shape::new(512, 1, 1), Shape::new(1000, 1, 1), 1, 1);
        assert_eq!(tf.chunks_per_image, 1);
    }

    #[test]
    fn byte_accounting() {
        let t = Tiling::plan(Shape::new(64, 64, 64), Shape::new(64, 64, 64), 3, 1);
        assert_eq!(t.in_tile_bytes(), 64 * 64 * 6);
        assert_eq!(t.out_tile_bytes(), 64 * 64 * 4);
        assert_eq!(t.mvms_per_chunk(), 64 * 4);
    }

    #[test]
    fn halo_capped_by_input_width() {
        // Tiny input: halo cannot exceed the image.
        let t = Tiling::plan(Shape::new(8, 4, 2), Shape::new(8, 4, 2), 3, 1);
        assert!(t.in_tile_w <= 2);
    }

    #[test]
    fn l1_check_passes_for_resnet_tiles() {
        // The largest tile pressure: Layer 0 output 64x128x8 = 64 KiB.
        let t0 = Tiling::plan(Shape::new(3, 256, 256), Shape::new(64, 128, 128), 7, 2);
        assert!(t0.check_l1(1 << 20, 1, 1, 0).is_ok());
        // Every other ResNet layer comfortably fits 1 MB with partials.
        let t2 = Tiling::plan(Shape::new(64, 64, 64), Shape::new(64, 64, 64), 3, 1);
        assert!(t2.check_l1(1 << 20, 3, 1, 2).is_ok());
    }

    #[test]
    fn l1_check_fails_when_memory_is_tiny() {
        let t = Tiling::plan(Shape::new(64, 64, 64), Shape::new(64, 64, 64), 3, 1);
        let err = t.check_l1(16 * 1024, 1, 1, 0).unwrap_err();
        assert!(err.requested > 0);
    }

    #[test]
    fn whole_image_fits_nowhere_without_tiling() {
        // Motivation check (Sec. IV-4): the full 64-ch 128x128 OFM with
        // double buffering exceeds 1 MB, so W-tiling is mandatory.
        let full = 64 * 128 * 128 * 2 * 2; // in+out, double-buffered
        assert!(full > 1 << 20);
    }
}
