//! Reduction-tree planning (Sec. V-3).
//!
//! Row-split layers produce `S` partial outputs per column group that must
//! be summed. The paper pipelines the binary reduction tree, assigning each
//! level "a logarithmically decreasing number of clusters":
//!
//! * the first levels are **absorbed** by the producer clusters themselves —
//!   their CORES are idle while the IMA computes, so pairwise adds are free
//!   cluster-wise (Sec. IV-5: "computation in a cluster can be performed by
//!   the CORES, IMA, or both in parallel");
//! * once the partial count falls to `absorb_threshold` or below, the
//!   remaining levels become **dedicated pipeline stages**, one cluster per
//!   pairwise add.
//!
//! With the default threshold 4, the paper's 512-channel layers
//! (18 row splits × 2 column groups) absorb 18→9→5→3 and dedicate
//! 1+1 clusters per column group: 36 IMAs + 4 reduction clusters = the
//! "40 clusters" of Sec. V-1.

/// The planned reduction tree for one column group of a row-split layer.
///
/// # Examples
/// ```
/// use aimc_core::ReductionPlan;
/// let p = ReductionPlan::new(18, 4);
/// assert_eq!(p.absorbed_levels, 3);           // 18→9→5→3 on producers
/// assert_eq!(p.after_absorption, 3);
/// assert_eq!(p.dedicated_adds_per_level, vec![1, 1]); // 3→2→1
/// assert_eq!(p.dedicated_clusters(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionPlan {
    /// Partial outputs to reduce (the layer's row splits).
    pub fan_in: usize,
    /// Tree levels executed on the producer clusters' cores.
    pub absorbed_levels: usize,
    /// Partial count remaining after absorption.
    pub after_absorption: usize,
    /// Pairwise adds at each dedicated level (one cluster per add).
    pub dedicated_adds_per_level: Vec<usize>,
}

impl ReductionPlan {
    /// Plans the tree for `fan_in` partials, absorbing levels on the
    /// producers while more than `absorb_threshold` partials remain.
    ///
    /// # Panics
    /// Panics if `fan_in == 0`.
    pub fn new(fan_in: usize, absorb_threshold: usize) -> Self {
        assert!(fan_in > 0, "reduction needs at least one input");
        let mut n = fan_in;
        let mut absorbed = 0;
        while n > absorb_threshold.max(1) {
            n = n.div_ceil(2);
            absorbed += 1;
        }
        let after = n;
        let mut dedicated = Vec::new();
        while n > 1 {
            let adds = n / 2;
            dedicated.push(adds);
            n = n.div_ceil(2);
        }
        ReductionPlan {
            fan_in,
            absorbed_levels: absorbed,
            after_absorption: after,
            dedicated_adds_per_level: dedicated,
        }
    }

    /// Total dedicated clusters for one column group.
    pub fn dedicated_clusters(&self) -> usize {
        self.dedicated_adds_per_level.iter().sum()
    }

    /// Total tree depth (absorbed + dedicated levels).
    pub fn depth(&self) -> usize {
        self.absorbed_levels + self.dedicated_adds_per_level.len()
    }

    /// Whether any reduction is needed at all.
    pub fn is_trivial(&self) -> bool {
        self.fan_in == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_input_is_trivial() {
        let p = ReductionPlan::new(1, 4);
        assert!(p.is_trivial());
        assert_eq!(p.absorbed_levels, 0);
        assert_eq!(p.dedicated_clusters(), 0);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn small_fanin_goes_fully_dedicated() {
        // 3 partials ≤ threshold 4: no absorption; 3→2→1 dedicated.
        let p = ReductionPlan::new(3, 4);
        assert_eq!(p.absorbed_levels, 0);
        assert_eq!(p.after_absorption, 3);
        assert_eq!(p.dedicated_adds_per_level, vec![1, 1]);
        assert_eq!(p.dedicated_clusters(), 2);
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn five_partials_absorb_one_level() {
        // 128-channel layers: 5 row splits. 5 > 4 ⇒ absorb 5→3, then 3→2→1.
        let p = ReductionPlan::new(5, 4);
        assert_eq!(p.absorbed_levels, 1);
        assert_eq!(p.after_absorption, 3);
        assert_eq!(p.dedicated_clusters(), 2);
    }

    #[test]
    fn paper_512ch_layer_counts() {
        // Sec. V-1: 36 IMAs + reductions ⇒ 40 clusters; Sec. V-3: "sum up
        // the partial products of up to 20 clusters".
        let p = ReductionPlan::new(18, 4);
        assert_eq!(p.absorbed_levels, 3); // 18→9→5→3
        assert_eq!(p.dedicated_clusters(), 2); // per column group
                                               // Two column groups (512 cols / 256): 36 + 2*2 = 40. Checked in the
                                               // mapping tests; here verify the per-group arithmetic.
        assert_eq!(36 + 2 * p.dedicated_clusters(), 40);
    }

    #[test]
    fn nine_partials() {
        // 256-channel layers: 2304 rows → 9 splits.
        let p = ReductionPlan::new(9, 4);
        assert_eq!(p.absorbed_levels, 2); // 9→5→3
        assert_eq!(p.after_absorption, 3);
        assert_eq!(p.dedicated_clusters(), 2);
        assert_eq!(p.depth(), 4);
    }

    #[test]
    fn threshold_one_absorbs_everything() {
        let p = ReductionPlan::new(16, 1);
        assert_eq!(p.absorbed_levels, 4);
        assert_eq!(p.after_absorption, 1);
        assert_eq!(p.dedicated_clusters(), 0);
    }

    #[test]
    fn large_threshold_dedicates_everything() {
        let p = ReductionPlan::new(16, 100);
        assert_eq!(p.absorbed_levels, 0);
        // 16→8→4→2→1: adds 8,4,2,1.
        assert_eq!(p.dedicated_adds_per_level, vec![8, 4, 2, 1]);
        assert_eq!(p.dedicated_clusters(), 15);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn rejects_zero_fanin() {
        ReductionPlan::new(0, 4);
    }
}
