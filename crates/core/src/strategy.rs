//! The three mapping strategies evaluated in Fig. 5.

/// Mapping optimization level (Sec. V / Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingStrategy {
    /// Fig. 5B: multi-cluster splitting only — no replication, no digital
    /// parallelization; residuals buffered in HBM.
    Naive,
    /// Fig. 5C: + data replication of analog layers and parallelization of
    /// digital layers to balance the pipeline; residuals still in HBM.
    Balanced,
    /// Fig. 5D: + residuals staged in spare clusters' L1 instead of HBM
    /// (the final mapping; "+2 clusters", 1.9× over Balanced).
    OnChipResiduals,
}

impl MappingStrategy {
    /// All strategies in Fig. 5 order.
    pub const ALL: [MappingStrategy; 3] = [
        MappingStrategy::Naive,
        MappingStrategy::Balanced,
        MappingStrategy::OnChipResiduals,
    ];

    /// Whether the balancer runs (replication + parallelization).
    pub fn balances(self) -> bool {
        !matches!(self, MappingStrategy::Naive)
    }

    /// Whether residuals are staged on-chip in spare cluster L1.
    pub fn residuals_on_chip(self) -> bool {
        matches!(self, MappingStrategy::OnChipResiduals)
    }

    /// Short label used in reports and figures.
    pub fn label(self) -> &'static str {
        match self {
            MappingStrategy::Naive => "naive",
            MappingStrategy::Balanced => "replication+parallelization",
            MappingStrategy::OnChipResiduals => "final (on-chip residuals)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_flags() {
        assert!(!MappingStrategy::Naive.balances());
        assert!(MappingStrategy::Balanced.balances());
        assert!(MappingStrategy::OnChipResiduals.balances());
        assert!(!MappingStrategy::Naive.residuals_on_chip());
        assert!(!MappingStrategy::Balanced.residuals_on_chip());
        assert!(MappingStrategy::OnChipResiduals.residuals_on_chip());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = MappingStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }
}
