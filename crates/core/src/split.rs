//! Multi-cluster layer splitting (Sec. V-1).
//!
//! A layer whose weight matrix is `rows × cols` (rows = `Cin·Kx·Ky`,
//! cols = `Cout`) is split when either dimension exceeds the crossbar:
//!
//! * **row splits** — each split computes a *partial* output that must be
//!   reduced digitally;
//! * **column splits** — the input vector is *broadcast* to all column
//!   splits, each producing a disjoint slice of the output channels.
//!
//! Both can occur at once (e.g. the 512-channel layers: 4608 rows × 512
//! cols on 256×256 arrays ⇒ 18 × 2 = 36 IMAs).

/// How one layer's weights are distributed over crossbar arrays.
///
/// # Examples
/// ```
/// use aimc_core::SplitPlan;
/// // The paper's Layer 21/24 class: 3x3 conv, 512→512.
/// let p = SplitPlan::for_matrix(4608, 512, 256, 256);
/// assert_eq!(p.row_splits, 18);
/// assert_eq!(p.col_splits, 2);
/// assert_eq!(p.imas(), 36);
/// assert!(p.rows_per_split.iter().all(|&r| r == 256)); // perfectly packed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    /// Total weight-matrix rows (`Cin·Kx·Ky`).
    pub rows_total: usize,
    /// Total weight-matrix columns (`Cout`).
    pub cols_total: usize,
    /// Number of row splits.
    pub row_splits: usize,
    /// Number of column splits.
    pub col_splits: usize,
    /// Rows on each row split (balanced ceil-split).
    pub rows_per_split: Vec<usize>,
    /// Columns on each column split.
    pub cols_per_split: Vec<usize>,
}

impl SplitPlan {
    /// Plans the split of a `rows × cols` matrix onto `xbar_rows × xbar_cols`
    /// arrays.
    ///
    /// Chunk sizes come from [`aimc_dnn::ceil_split`] — the same canonical
    /// rule the functional [`AimcExecutor`](aimc_dnn::AimcExecutor) uses to
    /// tile layers onto crossbars, so the mapper's IMA counts always agree
    /// with the programmed tile geometry.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn for_matrix(rows: usize, cols: usize, xbar_rows: usize, xbar_cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate weight matrix");
        assert!(xbar_rows > 0 && xbar_cols > 0, "degenerate crossbar");
        let row_chunks = aimc_dnn::ceil_split(rows, xbar_rows);
        let col_chunks = aimc_dnn::ceil_split(cols, xbar_cols);
        SplitPlan {
            rows_total: rows,
            cols_total: cols,
            row_splits: row_chunks.len(),
            col_splits: col_chunks.len(),
            rows_per_split: row_chunks.into_iter().map(|(_, len)| len).collect(),
            cols_per_split: col_chunks.into_iter().map(|(_, len)| len).collect(),
        }
    }

    /// Number of crossbar arrays (= clusters, at 1 IMA per cluster) holding
    /// this layer's parameters (before any data replication).
    pub fn imas(&self) -> usize {
        self.row_splits * self.col_splits
    }

    /// Maximum rows used on any array (sizing the stream-in phase).
    pub fn max_rows(&self) -> usize {
        self.rows_per_split.iter().copied().max().unwrap_or(0)
    }

    /// Maximum columns used on any array.
    pub fn max_cols(&self) -> usize {
        self.cols_per_split.iter().copied().max().unwrap_or(0)
    }

    /// Mean crossbar-cell utilization across this layer's arrays — the
    /// "local mapping" factor of Fig. 6.
    pub fn utilization(&self, xbar_rows: usize, xbar_cols: usize) -> f64 {
        let used: usize = self
            .rows_per_split
            .iter()
            .map(|&r| self.cols_per_split.iter().map(|&c| r * c).sum::<usize>())
            .sum();
        used as f64 / (self.imas() * xbar_rows * xbar_cols) as f64
    }

    /// Whether the layer needs a partial-sum reduction (more than one row
    /// split).
    pub fn needs_reduction(&self) -> bool {
        self.row_splits > 1
    }

    /// Whether the input must be broadcast (more than one column split).
    pub fn needs_broadcast(&self) -> bool {
        self.col_splits > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer0_fits_one_array() {
        // 7x7x3 → 64: 147 rows × 64 cols ("excluding Layer 0", Sec. V-1).
        let p = SplitPlan::for_matrix(147, 64, 256, 256);
        assert_eq!(p.imas(), 1);
        assert!(!p.needs_reduction());
        assert!(!p.needs_broadcast());
        assert!((p.utilization(256, 256) - (147.0 * 64.0) / 65536.0).abs() < 1e-12);
    }

    #[test]
    fn sixty_four_channel_layers_split_rows_three_ways() {
        // 3x3 conv 64→64: 576 rows.
        let p = SplitPlan::for_matrix(576, 64, 256, 256);
        assert_eq!(p.row_splits, 3);
        assert_eq!(p.col_splits, 1);
        assert_eq!(p.rows_per_split, vec![192, 192, 192]);
        assert!(p.needs_reduction());
    }

    #[test]
    fn deep_layers_split_both_dimensions() {
        // 3x3 conv 512→512 ("Layer 22 … 2.3M parameters", Sec. V-1).
        let p = SplitPlan::for_matrix(4608, 512, 256, 256);
        assert_eq!((p.row_splits, p.col_splits), (18, 2));
        assert_eq!(p.imas(), 36);
        assert_eq!(p.max_rows(), 256);
        assert_eq!(p.max_cols(), 256);
        // Perfect packing ⇒ utilization 1.
        assert!((p.utilization(256, 256) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_splits_balance_within_one() {
        let p = SplitPlan::for_matrix(1000, 300, 256, 256);
        assert_eq!(p.row_splits, 4);
        assert_eq!(p.col_splits, 2);
        assert_eq!(p.rows_per_split, vec![250, 250, 250, 250]);
        assert_eq!(p.cols_per_split, vec![150, 150]);
        let sum: usize = p.rows_per_split.iter().sum();
        assert_eq!(sum, 1000);
    }

    #[test]
    fn utilization_drops_with_padding_waste() {
        // 100 rows on a 256-row array: only 100/256 of rows used.
        let p = SplitPlan::for_matrix(100, 256, 256, 256);
        assert!((p.utilization(256, 256) - 100.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_dims() {
        SplitPlan::for_matrix(0, 10, 256, 256);
    }
}
