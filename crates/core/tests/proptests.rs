//! Property-based tests for the mapping compiler's planning primitives.

use aimc_core::{ReductionPlan, SplitPlan, Tiling, MAX_CHUNKS_PER_IMAGE};
use aimc_dnn::Shape;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splits cover the weight matrix exactly: per-split sizes sum to the
    /// totals, none exceeds the array, and the count is the ceil division.
    #[test]
    fn split_plan_partitions_exactly(
        rows in 1usize..10_000,
        cols in 1usize..4_000,
        xr in 16usize..1024,
        xc in 16usize..1024,
    ) {
        let p = SplitPlan::for_matrix(rows, cols, xr, xc);
        prop_assert_eq!(p.row_splits, rows.div_ceil(xr));
        prop_assert_eq!(p.col_splits, cols.div_ceil(xc));
        prop_assert_eq!(p.rows_per_split.iter().sum::<usize>(), rows);
        prop_assert_eq!(p.cols_per_split.iter().sum::<usize>(), cols);
        prop_assert!(p.rows_per_split.iter().all(|&r| r <= xr && r > 0));
        prop_assert!(p.cols_per_split.iter().all(|&c| c <= xc && c > 0));
        // Balanced: sizes differ by at most 1.
        let rmax = p.rows_per_split.iter().max().unwrap();
        let rmin = p.rows_per_split.iter().min().unwrap();
        prop_assert!(rmax - rmin <= 1);
    }

    /// Utilization is exact: used cells over provisioned cells, in (0, 1].
    #[test]
    fn split_utilization_bounds(
        rows in 1usize..5_000,
        cols in 1usize..2_000,
    ) {
        let p = SplitPlan::for_matrix(rows, cols, 256, 256);
        let u = p.utilization(256, 256);
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
        let exact = (rows * cols) as f64 / (p.imas() * 256 * 256) as f64;
        prop_assert!((u - exact).abs() < 1e-9);
    }

    /// A reduction tree always reduces to one output; absorbed + dedicated
    /// level arithmetic is consistent; dedicated clusters are bounded by
    /// fan-in − 1 (total adds of a binary tree).
    #[test]
    fn reduction_tree_converges(fan_in in 1usize..200, threshold in 1usize..16) {
        let p = ReductionPlan::new(fan_in, threshold);
        // Replay the plan.
        let mut n = fan_in;
        for _ in 0..p.absorbed_levels {
            n = n.div_ceil(2);
        }
        prop_assert_eq!(n, p.after_absorption);
        prop_assert!(n <= threshold.max(1) || p.absorbed_levels == 0 || n <= threshold.max(1));
        for &adds in &p.dedicated_adds_per_level {
            prop_assert_eq!(adds, n / 2);
            n = n.div_ceil(2);
        }
        prop_assert_eq!(n, 1, "tree must converge to a single output");
        prop_assert!(p.dedicated_clusters() < fan_in.max(2));
    }

    /// Tilings cover the output width and respect the chunk cap; input tile
    /// widths never exceed the input.
    #[test]
    fn tiling_covers_width(
        c in 1usize..512,
        h in 1usize..128,
        w in 1usize..256,
        kw in 1usize..8,
        stride in 1usize..4,
    ) {
        let ofm_w = w;
        let ifm = Shape::new(c, h, (w * stride + kw).min(4096));
        let ofm = Shape::new(c, h, ofm_w);
        let t = Tiling::plan(ifm, ofm, kw, stride);
        prop_assert!(t.chunks_per_image >= 1);
        prop_assert!(t.chunks_per_image <= MAX_CHUNKS_PER_IMAGE.max(1));
        prop_assert!(t.out_tile_w * t.chunks_per_image >= ofm.w, "chunks must cover W");
        prop_assert!(t.in_tile_w <= ifm.w);
        prop_assert!(t.mvms_per_chunk() >= 1);
        // Byte accounting matches the dimensions.
        prop_assert_eq!(t.out_tile_bytes(), c * h * t.out_tile_w);
    }

    /// The L1 check accepts exactly when the arithmetic says it fits.
    #[test]
    fn l1_check_is_consistent(
        c in 1usize..256,
        h in 8usize..64,
        w in 8usize..64,
        budget_kb in 1usize..2048,
    ) {
        let shape = Shape::new(c, h, w);
        let t = Tiling::plan(shape, shape, 3, 1);
        let need = 2 * t.in_tile_bytes() + 2 * t.out_tile_bytes();
        let ok = t.check_l1(budget_kb * 1024, 1, 1, 0).is_ok();
        prop_assert_eq!(ok, need <= budget_kb * 1024);
    }
}
