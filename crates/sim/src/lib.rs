//! # aimc-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the platform simulator used throughout the
//! workspace (the role GVSoC plays in the paper). It deliberately contains
//! *no* architecture knowledge: just simulated time, a deterministic event
//! queue, and measurement utilities. The platform model lives in
//! `aimc-noc`, `aimc-cluster` and `aimc-runtime`, which define their own event
//! payloads and dispatch loops on top of [`EventQueue`].
//!
//! ## Design notes
//!
//! * **Determinism.** Equal-time events pop in insertion order; all randomness
//!   in the workspace flows through explicitly seeded RNGs. Two runs with the
//!   same configuration produce bit-identical results.
//! * **Resolution.** Time is kept in integer picoseconds ([`SimTime`]), so a
//!   1 GHz core cycle (1000 ps) and the 130 ns analog MVM latency are both
//!   exact.
//! * **Granularity.** Components schedule at transaction/kernel granularity
//!   (a DMA burst, an IMA job, a digital kernel), not per instruction — the
//!   level of detail the paper's evaluation actually depends on.
//!
//! ## Example
//! ```
//! use aimc_sim::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32), Done }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO, Ev::Ping(0));
//! let mut pings = 0;
//! while let Some((t, ev)) = q.pop() {
//!     match ev {
//!         Ev::Ping(n) if n < 3 => {
//!             pings += 1;
//!             q.push(t + SimTime::from_ns(10), Ev::Ping(n + 1));
//!         }
//!         Ev::Ping(_) => q.push(t, Ev::Done),
//!         Ev::Done => break,
//!     }
//! }
//! assert_eq!(pings, 3);
//! assert_eq!(q.now(), SimTime::from_ns(30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
pub mod stats;
mod time;

pub use queue::{EventQueue, OrderedEventQueue};
pub use stats::{Activity, ActivityTracker};
pub use time::{Cycles, Frequency, SimTime};
