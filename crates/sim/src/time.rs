//! Simulated time, clock frequencies and cycle arithmetic.
//!
//! All platform components share one absolute time base with **picosecond**
//! resolution ([`SimTime`]). Picoseconds give headroom for multi-GHz clocks
//! while still covering > 100 days of simulated time in a `u64`.
//!
//! Components that are naturally cycle-based (routers, cores) convert via
//! [`Frequency`], which provides exact ps-per-cycle arithmetic for the
//! frequencies used in this project (integer divisors of 1 THz; the platform
//! default is 1 GHz ⇒ 1000 ps per cycle).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute instant (or a duration) of simulated time, in picoseconds.
///
/// `SimTime` is a transparent newtype over `u64` ([C-NEWTYPE]): it cannot be
/// confused with cycle counts or byte counts at API boundaries.
///
/// # Examples
/// ```
/// use aimc_sim::SimTime;
/// let t = SimTime::from_ns(130); // one analog MVM
/// assert_eq!(t.as_ps(), 130_000);
/// assert_eq!(t + SimTime::from_ps(500), SimTime::from_ps(130_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant. Used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from a floating-point nanosecond count, rounding to the
    /// nearest picosecond. Values below zero clamp to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        SimTime((ns.max(0.0) * 1_000.0).round() as u64)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the time in nanoseconds as a float.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time in microseconds as a float.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time in milliseconds as a float.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the time in seconds as a float.
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    /// Panics in debug builds if `rhs > self` (duration underflow).
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else {
            write!(f, "{} ps", ps)
        }
    }
}

/// A count of clock cycles in some clock domain.
///
/// Cycle counts are only meaningful together with a [`Frequency`]; keeping
/// them as a distinct type prevents accidentally mixing cycles of different
/// clock domains with absolute time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw count.
    #[inline]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A clock frequency with exact picosecond-period arithmetic.
///
/// # Examples
/// ```
/// use aimc_sim::{Cycles, Frequency, SimTime};
/// let f = Frequency::from_mhz(1000); // 1 GHz
/// assert_eq!(f.period(), SimTime::from_ps(1000));
/// assert_eq!(f.cycles_to_time(Cycles(130)), SimTime::from_ns(130));
/// assert_eq!(f.time_to_cycles_ceil(SimTime::from_ps(1500)), Cycles(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frequency {
    /// Clock period in picoseconds.
    period_ps: u64,
}

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    /// Panics if `mhz` is zero or does not divide 1 THz exactly (periods must
    /// be an integral number of picoseconds to keep the simulation exact).
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        let thz_ps = 1_000_000_u64; // 1 / 1 MHz in ps
        assert!(
            thz_ps.is_multiple_of(mhz),
            "frequency {mhz} MHz does not have an integral picosecond period"
        );
        Frequency {
            period_ps: thz_ps / mhz,
        }
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: u64) -> Self {
        Self::from_mhz(ghz * 1000)
    }

    /// The clock period.
    #[inline]
    pub const fn period(self) -> SimTime {
        SimTime(self.period_ps)
    }

    /// The frequency in Hz, as a float.
    #[inline]
    pub fn as_hz_f64(self) -> f64 {
        1e12 / self.period_ps as f64
    }

    /// Converts a cycle count of this clock into a duration.
    #[inline]
    pub fn cycles_to_time(self, c: Cycles) -> SimTime {
        SimTime(c.0 * self.period_ps)
    }

    /// Converts a duration into cycles, rounding up (an operation that takes
    /// any fraction of a cycle occupies the whole cycle).
    #[inline]
    pub fn time_to_cycles_ceil(self, t: SimTime) -> Cycles {
        Cycles(t.0.div_ceil(self.period_ps))
    }

    /// Converts a duration into whole elapsed cycles, rounding down.
    #[inline]
    pub fn time_to_cycles_floor(self, t: SimTime) -> Cycles {
        Cycles(t.0 / self.period_ps)
    }
}

impl Default for Frequency {
    /// The platform default clock: 1 GHz (Table I of the paper).
    fn default() -> Self {
        Frequency::from_ghz(1)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mhz = 1_000_000.0 / self.period_ps as f64;
        if mhz >= 1000.0 {
            write!(f, "{:.3} GHz", mhz / 1000.0)
        } else {
            write!(f, "{:.1} MHz", mhz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
        assert_eq!(SimTime::from_ns_f64(1.5), SimTime::from_ps(1500));
        assert_eq!(SimTime::from_ns_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_ps(100);
        let b = SimTime::from_ps(40);
        assert_eq!(a + b, SimTime::from_ps(140));
        assert_eq!(a - b, SimTime::from_ps(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ps(140));
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_ps(1)), None);
    }

    #[test]
    fn time_unit_views() {
        let t = SimTime::from_us(2);
        assert!((t.as_ns_f64() - 2000.0).abs() < 1e-9);
        assert!((t.as_us_f64() - 2.0).abs() < 1e-12);
        assert!((t.as_ms_f64() - 0.002).abs() < 1e-12);
        assert!((t.as_s_f64() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn time_display_scales() {
        assert_eq!(SimTime::from_ps(5).to_string(), "5 ps");
        assert_eq!(SimTime::from_ps(1500).to_string(), "1.500 ns");
        assert_eq!(SimTime::from_us(3).to_string(), "3.000 us");
        assert_eq!(SimTime::from_us(4500).to_string(), "4.500 ms");
    }

    #[test]
    fn frequency_round_trips() {
        let f = Frequency::from_ghz(1);
        assert_eq!(f.period(), SimTime::from_ps(1000));
        assert_eq!(f.cycles_to_time(Cycles(100)), SimTime::from_ns(100));
        assert_eq!(f.time_to_cycles_ceil(SimTime::from_ps(999)), Cycles(1));
        assert_eq!(f.time_to_cycles_ceil(SimTime::from_ps(1000)), Cycles(1));
        assert_eq!(f.time_to_cycles_ceil(SimTime::from_ps(1001)), Cycles(2));
        assert_eq!(f.time_to_cycles_floor(SimTime::from_ps(1999)), Cycles(1));
    }

    #[test]
    fn frequency_display_and_hz() {
        assert_eq!(Frequency::from_ghz(1).to_string(), "1.000 GHz");
        assert_eq!(Frequency::from_mhz(500).to_string(), "500.0 MHz");
        assert!((Frequency::from_ghz(1).as_hz_f64() - 1e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "integral picosecond period")]
    fn frequency_rejects_non_integral_period() {
        let _ = Frequency::from_mhz(3); // 333.33.. ps period
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(10) + Cycles(5);
        assert_eq!(a, Cycles(15));
        assert_eq!(a.saturating_sub(Cycles(20)), Cycles::ZERO);
        assert_eq!(Cycles(7).to_string(), "7 cyc");
    }
}
