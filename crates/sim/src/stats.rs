//! Measurement utilities: scalar accumulators, histograms and the
//! state-occupancy tracker used for the per-cluster execution-time
//! breakdowns of Fig. 5B/C/D (computation / communication / synchronization /
//! sleep).

use crate::time::SimTime;

/// Streaming accumulator for a scalar series (count, sum, min, max, mean).
///
/// # Examples
/// ```
/// use aimc_sim::stats::Accumulator;
/// let mut a = Accumulator::new();
/// for x in [2.0, 4.0, 6.0] { a.add(x); }
/// assert_eq!(a.count(), 3);
/// assert_eq!(a.mean(), 4.0);
/// assert_eq!(a.min(), 2.0);
/// assert_eq!(a.max(), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample; +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The mutually exclusive activity states tracked per cluster, mirroring the
/// categories of Fig. 5 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// IMA and/or CORES actively computing.
    Compute,
    /// Blocked on data movement (DMA in flight that gates progress).
    Communication,
    /// Per-tile orchestration: event waits, DMA/IMA programming, barriers.
    Synchronization,
    /// Idle with clock gated (nothing to do).
    Sleep,
}

impl Activity {
    /// All states, in reporting order.
    pub const ALL: [Activity; 4] = [
        Activity::Compute,
        Activity::Communication,
        Activity::Synchronization,
        Activity::Sleep,
    ];

    /// Stable lowercase name for CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Activity::Compute => "compute",
            Activity::Communication => "communication",
            Activity::Synchronization => "synchronization",
            Activity::Sleep => "sleep",
        }
    }

    fn index(self) -> usize {
        match self {
            Activity::Compute => 0,
            Activity::Communication => 1,
            Activity::Synchronization => 2,
            Activity::Sleep => 3,
        }
    }
}

/// Accumulates the time a component spends in each [`Activity`] state.
///
/// The tracker is driven by `set_state(now, state)` transitions; time between
/// transitions is attributed to the *previous* state. A final
/// [`ActivityTracker::finish`] closes the last interval.
///
/// # Examples
/// ```
/// use aimc_sim::stats::{Activity, ActivityTracker};
/// use aimc_sim::SimTime;
/// let mut t = ActivityTracker::new(SimTime::ZERO);
/// t.set_state(SimTime::from_ns(0), Activity::Compute);
/// t.set_state(SimTime::from_ns(70), Activity::Communication);
/// t.finish(SimTime::from_ns(100));
/// assert_eq!(t.time_in(Activity::Compute), SimTime::from_ns(70));
/// assert_eq!(t.time_in(Activity::Communication), SimTime::from_ns(30));
/// ```
#[derive(Debug, Clone)]
pub struct ActivityTracker {
    totals: [u64; 4], // picoseconds per state
    state: Activity,
    since: SimTime,
    finished: bool,
}

impl ActivityTracker {
    /// Creates a tracker starting in [`Activity::Sleep`] at `start`.
    pub fn new(start: SimTime) -> Self {
        ActivityTracker {
            totals: [0; 4],
            state: Activity::Sleep,
            since: start,
            finished: false,
        }
    }

    /// The current state.
    pub fn state(&self) -> Activity {
        self.state
    }

    /// Transitions to `state` at time `now`, attributing the elapsed interval
    /// to the previous state. Transitions to the current state are no-ops.
    ///
    /// # Panics
    /// Panics if `now` precedes the last transition (causality) or if the
    /// tracker was already finished.
    pub fn set_state(&mut self, now: SimTime, state: Activity) {
        assert!(!self.finished, "tracker already finished");
        assert!(
            now >= self.since,
            "activity transition moves backwards in time"
        );
        if state == self.state {
            return;
        }
        self.totals[self.state.index()] += (now - self.since).as_ps();
        self.state = state;
        self.since = now;
    }

    /// Closes the final interval at `end`. Idempotent-safe: may only be called
    /// once.
    pub fn finish(&mut self, end: SimTime) {
        assert!(!self.finished, "tracker already finished");
        assert!(end >= self.since);
        self.totals[self.state.index()] += (end - self.since).as_ps();
        self.finished = true;
    }

    /// Total time attributed to `a` so far (excluding the open interval).
    pub fn time_in(&self, a: Activity) -> SimTime {
        SimTime::from_ps(self.totals[a.index()])
    }

    /// Sum over all states (equals the observation window after `finish`).
    pub fn total(&self) -> SimTime {
        SimTime::from_ps(self.totals.iter().sum())
    }

    /// Fraction of the total attributed to `a`; 0.0 when nothing recorded.
    pub fn fraction(&self, a: Activity) -> f64 {
        let tot = self.total().as_ps();
        if tot == 0 {
            0.0
        } else {
            self.time_in(a).as_ps() as f64 / tot as f64
        }
    }
}

/// A fixed-bin linear histogram over `[lo, hi)` with out-of-range clamping,
/// used for latency distributions in the NoC tests and benches.
///
/// # Examples
/// ```
/// use aimc_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.add(0.5);
/// h.add(9.9);
/// h.add(42.0); // clamps into the last bin
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `n_bins` equal bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `n_bins == 0`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(n_bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; n_bins],
        }
    }

    /// Adds a sample, clamping out-of-range values into the edge bins.
    pub fn add(&mut self, x: f64) {
        let n = self.bins.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.bins[idx.min(n - 1)] += 1;
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basics() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        a.add(1.0);
        a.add(3.0);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.add(1.0);
        let mut b = Accumulator::new();
        b.add(5.0);
        b.add(-2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.max(), 5.0);
    }

    #[test]
    fn activity_tracker_attributes_intervals() {
        let mut t = ActivityTracker::new(SimTime::ZERO);
        t.set_state(SimTime::from_ns(10), Activity::Compute); // sleep 0..10
        t.set_state(SimTime::from_ns(25), Activity::Synchronization); // compute 10..25
        t.set_state(SimTime::from_ns(25), Activity::Synchronization); // no-op
        t.finish(SimTime::from_ns(30)); // sync 25..30
        assert_eq!(t.time_in(Activity::Sleep), SimTime::from_ns(10));
        assert_eq!(t.time_in(Activity::Compute), SimTime::from_ns(15));
        assert_eq!(t.time_in(Activity::Synchronization), SimTime::from_ns(5));
        assert_eq!(t.time_in(Activity::Communication), SimTime::ZERO);
        assert_eq!(t.total(), SimTime::from_ns(30));
        assert!((t.fraction(Activity::Compute) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn activity_tracker_rejects_time_travel() {
        let mut t = ActivityTracker::new(SimTime::from_ns(10));
        t.set_state(SimTime::from_ns(5), Activity::Compute);
    }

    #[test]
    fn activity_names_are_stable() {
        let names: Vec<&str> = Activity::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["compute", "communication", "synchronization", "sleep"]
        );
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add(-5.0);
        h.add(0.0);
        h.add(55.0);
        h.add(99.999);
        h.add(100.0);
        h.add(1e9);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 3);
        assert_eq!(h.total(), 6);
        assert_eq!(h.n_bins(), 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
