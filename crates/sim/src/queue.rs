//! The discrete-event queue at the heart of the simulator.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs with strict,
//! deterministic ordering: events at equal timestamps pop in insertion order
//! (FIFO). Determinism matters — every figure in the evaluation must be exactly
//! reproducible run-to-run, and tie-breaking by heap order would make results
//! depend on allocation details.
//!
//! The queue is intentionally payload-generic: the platform layer
//! (`aimc-runtime`) defines its own event enum and dispatch loop, keeping this
//! kernel reusable for other architectures.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry; ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
/// ```
/// use aimc_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "late");
/// q.push(SimTime::from_ns(1), "early");
/// q.push(SimTime::from_ns(5), "late-second");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (the simulation "now").
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress / cost metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulation time: causality
    /// violations are always bugs in the model, never recoverable conditions.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {} but now is {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` after the current time.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the simulation time to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    ///
    /// Useful for bounded-time runs; events beyond the horizon stay queued.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(e) if e.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Returns the timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_popped_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ns(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(42));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.pop();
        q.push_after(SimTime::from_ns(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "b")));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(20), "b");
        assert_eq!(
            q.pop_until(SimTime::from_ns(15)),
            Some((SimTime::from_ns(10), "a"))
        );
        assert_eq!(q.pop_until(SimTime::from_ns(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(20)));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{:?}", q).is_empty());
    }
}
