//! The discrete-event queues at the heart of the simulator.
//!
//! Two queue flavors, with different tie-break contracts for events that
//! share a timestamp:
//!
//! * [`EventQueue`] pops equal-time events in **insertion order** (FIFO).
//!   This is deterministic for a fixed caller, but the pop order depends on
//!   the order `push` was called — fine for a single-threaded loop, unusable
//!   when several shards contribute events to one timeline.
//! * [`OrderedEventQueue`] pops equal-time events in **payload order**
//!   (`E: Ord`): the pop sequence is a pure function of the *set* of inserted
//!   `(time, event)` pairs, independent of insertion order. This is the
//!   contract the sharded pipeline simulator builds its bit-identical
//!   serial-vs-parallel guarantee on — barrier phases may merge events from
//!   worker shards in any order without perturbing the replay.
//!
//! Determinism matters — every figure in the evaluation must be exactly
//! reproducible run-to-run, and tie-breaking by heap order would make results
//! depend on allocation details.
//!
//! The queues are intentionally payload-generic: the platform layer
//! (`aimc-runtime`) defines its own event enum and dispatch loop, keeping this
//! kernel reusable for other architectures.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry; ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
/// ```
/// use aimc_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "late");
/// q.push(SimTime::from_ns(1), "early");
/// q.push(SimTime::from_ns(5), "late-second");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (the simulation "now").
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress / cost metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulation time: causality
    /// violations are always bugs in the model, never recoverable conditions.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {} but now is {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` after the current time.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the simulation time to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it is at or before `horizon`.
    ///
    /// Useful for bounded-time runs; events beyond the horizon stay queued.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(e) if e.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Returns the timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

/// Internal heap entry for [`OrderedEventQueue`]; ordered by
/// `(time, event, seq)` ascending. `seq` only separates *identical*
/// `(time, event)` pairs, so the pop order remains insertion-independent.
struct OrdEntry<E> {
    time: SimTime,
    event: E,
    seq: u64,
}

impl<E: Ord> PartialEq for OrdEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.event == other.event && self.seq == other.seq
    }
}
impl<E: Ord> Eq for OrdEntry<E> {}
impl<E: Ord> PartialOrd for OrdEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E: Ord> Ord for OrdEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.event.cmp(&self.event))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue whose pop order is a pure function of the inserted
/// multiset.
///
/// Equal-time events pop in the payload's `Ord` order, **not** insertion
/// order; two identical `(time, event)` entries pop in insertion order, which
/// is unobservable because the entries are indistinguishable. Consequently
/// any interleaving of `push` calls — e.g. a barrier merging per-shard event
/// batches in nondeterministic worker-completion order — replays identically.
///
/// # Examples
/// ```
/// use aimc_sim::{OrderedEventQueue, SimTime};
/// let mut a = OrderedEventQueue::new();
/// let mut b = OrderedEventQueue::new();
/// a.push(SimTime::from_ns(5), "x");
/// a.push(SimTime::from_ns(5), "a");
/// b.push(SimTime::from_ns(5), "a"); // reversed insertion order
/// b.push(SimTime::from_ns(5), "x");
/// assert_eq!(a.pop(), b.pop()); // both: (5 ns, "a")
/// assert_eq!(a.pop(), b.pop()); // both: (5 ns, "x")
/// ```
#[derive(Default)]
pub struct OrderedEventQueue<E: Ord> {
    heap: BinaryHeap<OrdEntry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E: Ord> OrderedEventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        OrderedEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (the local "now").
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (a cheap progress / cost metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulation time: causality
    /// violations are always bugs in the model, never recoverable conditions.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {} but now is {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(OrdEntry {
            time: at,
            event,
            seq,
        });
    }

    /// Pops the earliest event, advancing the local time to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Pops the earliest event only if it is strictly before `horizon` — the
    /// primitive of conservative-window parallel simulation: a shard may
    /// safely process everything before the window boundary, events at or
    /// past it belong to the next superstep.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(e) if e.time < horizon => self.pop(),
            _ => None,
        }
    }

    /// Returns the timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E: Ord> std::fmt::Debug for OrderedEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedEventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_popped_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ns(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(42));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.pop();
        q.push_after(SimTime::from_ns(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(15), "b")));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        q.push(SimTime::from_ns(20), "b");
        assert_eq!(
            q.pop_until(SimTime::from_ns(15)),
            Some((SimTime::from_ns(10), "a"))
        );
        assert_eq!(q.pop_until(SimTime::from_ns(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(20)));
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(!format!("{:?}", q).is_empty());
    }

    fn drain<E: Ord>(mut q: OrderedEventQueue<E>) -> Vec<(SimTime, E)> {
        std::iter::from_fn(move || q.pop()).collect()
    }

    #[test]
    fn ordered_queue_ties_break_by_payload_not_insertion() {
        let mut q = OrderedEventQueue::new();
        q.push(SimTime::from_ns(7), "zeta");
        q.push(SimTime::from_ns(7), "alpha");
        q.push(SimTime::from_ns(3), "late-pushed-early-time");
        let order: Vec<&str> = drain(q).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["late-pushed-early-time", "alpha", "zeta"]);
    }

    #[test]
    fn ordered_queue_pop_before_is_exclusive() {
        let mut q = OrderedEventQueue::new();
        q.push(SimTime::from_ns(10), 1u32);
        q.push(SimTime::from_ns(20), 2u32);
        assert_eq!(
            q.pop_before(SimTime::from_ns(20)),
            Some((SimTime::from_ns(10), 1))
        );
        // The horizon itself is out of the window.
        assert_eq!(q.pop_before(SimTime::from_ns(20)), None);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(20)));
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn ordered_queue_rejects_past_events() {
        let mut q = OrderedEventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn ordered_queue_debug_is_nonempty() {
        let q: OrderedEventQueue<u8> = OrderedEventQueue::new();
        assert!(!format!("{:?}", q).is_empty());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The pop order of an [`OrderedEventQueue`] is a pure function
            /// of the inserted multiset: inserting the same `(time, event)`
            /// pairs ascending, descending, or interleaved (even-index
            /// entries first) yields bit-identical pop sequences.
            #[test]
            fn ordered_pop_is_insertion_order_independent(
                times in proptest::collection::vec(0u64..50, 1..40),
                payloads in proptest::collection::vec(0u8..8, 1..40),
            ) {
                let entries: Vec<(SimTime, u8)> = times
                    .iter()
                    .zip(&payloads)
                    .map(|(&t, &p)| (SimTime::from_ns(t), p))
                    .collect();
                let mut sorted = entries.clone();
                sorted.sort();
                let mut reversed = sorted.clone();
                reversed.reverse();
                let interleaved: Vec<_> = entries
                    .iter()
                    .step_by(2)
                    .chain(entries.iter().skip(1).step_by(2))
                    .copied()
                    .collect();

                let fill = |src: &[(SimTime, u8)]| {
                    let mut q = OrderedEventQueue::new();
                    for &(t, e) in src {
                        q.push(t, e);
                    }
                    drain(q)
                };
                let reference = fill(&sorted);
                prop_assert_eq!(fill(&entries), reference.clone());
                prop_assert_eq!(fill(&reversed), reference.clone());
                prop_assert_eq!(fill(&interleaved), reference.clone());
                // And the sequence is itself sorted by (time, payload).
                let mut expect = sorted;
                expect.sort();
                prop_assert_eq!(reference, expect);
            }
        }
    }
}
