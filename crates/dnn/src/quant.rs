//! Symmetric int8 quantization — the deployment precision of the paper's
//! mapping arithmetic ("each 256×256 IMA can store 64 K parameters" only
//! holds for one-byte weights, and tile byte counts assume int8 activations).

use crate::tensor::Tensor;

/// A symmetric linear quantizer `q = round(x / scale)` clamped to `[-127, 127]`.
///
/// # Examples
/// ```
/// use aimc_dnn::quant::Quantizer;
/// let q = Quantizer::fit(&[0.5, -2.0, 1.0]);
/// let code = q.quantize(1.0);
/// assert!((q.dequantize(code) - 1.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    scale: f32,
}

impl Quantizer {
    /// Builds a quantizer whose range covers the max-abs of `data`.
    /// All-zero (or empty) data yields a unit scale.
    pub fn fit(data: &[f32]) -> Self {
        let max = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        Quantizer {
            scale: if max > 0.0 { max / 127.0 } else { 1.0 },
        }
    }

    /// Builds a quantizer from an explicit scale.
    ///
    /// # Panics
    /// Panics if `scale` is not positive and finite.
    pub fn from_scale(scale: f32) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Quantizer { scale }
    }

    /// The step size.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value.
    pub fn quantize(&self, x: f32) -> i8 {
        (x / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a whole slice.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i8> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Round-trips a tensor through int8, returning the dequantized result
    /// (what the fake-quantized deployment computes with).
    pub fn fake_quantize(&self, t: &Tensor) -> Tensor {
        let data = t
            .data()
            .iter()
            .map(|&x| self.dequantize(self.quantize(x)))
            .collect();
        Tensor::from_vec(t.shape(), data)
    }
}

/// Mean squared quantization error of round-tripping `data` through int8.
pub fn quantization_mse(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let q = Quantizer::fit(data);
    data.iter()
        .map(|&x| {
            let e = (x - q.dequantize(q.quantize(x))) as f64;
            e * e
        })
        .sum::<f64>()
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Shape;

    #[test]
    fn fit_covers_max_abs() {
        let q = Quantizer::fit(&[0.1, -12.7, 3.0]);
        assert!((q.scale() - 0.1).abs() < 1e-6);
        assert_eq!(q.quantize(-12.7), -127);
        assert_eq!(q.quantize(12.7), 127);
    }

    #[test]
    fn zero_data_gets_unit_scale() {
        let q = Quantizer::fit(&[0.0, 0.0]);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let q = Quantizer::fit(&[1.0]);
        for i in -100..=100 {
            let x = i as f32 / 100.0;
            let e = (x - q.dequantize(q.quantize(x))).abs();
            assert!(e <= q.scale() / 2.0 + 1e-6, "x={x} e={e}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let q = Quantizer::from_scale(0.01);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_scale() {
        Quantizer::from_scale(0.0);
    }

    #[test]
    fn fake_quantize_preserves_shape() {
        let t = Tensor::from_vec(Shape::new(1, 2, 2), vec![0.11, -0.49, 0.5, 0.0]);
        let q = Quantizer::fit(t.data());
        let fq = q.fake_quantize(&t);
        assert_eq!(fq.shape(), t.shape());
        for (a, b) in fq.data().iter().zip(t.data()) {
            assert!((a - b).abs() <= q.scale() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn mse_is_small_relative_to_range() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 / 500.0) - 1.0).collect();
        let mse = quantization_mse(&data);
        // Uniform quantization MSE ≈ step²/12, step = 1/127.
        let step = 1.0f64 / 127.0;
        assert!(mse < step * step, "mse {mse}");
        assert_eq!(quantization_mse(&[]), 0.0);
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let q = Quantizer::fit(&[2.0]);
        let xs = [0.5f32, -1.0, 2.0];
        let codes = q.quantize_slice(&xs);
        for (c, &x) in codes.iter().zip(&xs) {
            assert_eq!(*c, q.quantize(x));
        }
    }
}
