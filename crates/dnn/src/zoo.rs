//! Additional network builders beyond the paper's ResNet-18.
//!
//! These exercise the mapping compiler on topologies the paper's related
//! work targets: VGG-style networks (ISAAC, PUMA map VGG-like nets "nicely
//! fitting pipelined data-flow architectures" — no residual edges at all)
//! and the deeper ResNet-34 (more stages, same residual structure).

use crate::graph::{Graph, GraphBuilder};
use crate::layer::ConvCfg;
use crate::tensor::Shape;

/// Builds a VGG-style network: `stage_convs[i]` 3×3 convolutions at width
/// `widths[i]`, each stage followed by a 2×2 max-pool, then a small FC head.
///
/// # Panics
/// Panics if the stage vectors are empty or of different lengths, or if the
/// input resolution cannot support the pool depth.
pub fn vgg(
    h: usize,
    w: usize,
    stage_convs: &[usize],
    widths: &[usize],
    num_classes: usize,
) -> Graph {
    assert!(
        !stage_convs.is_empty() && stage_convs.len() == widths.len(),
        "stage descriptors must be non-empty and aligned"
    );
    assert!(
        (h >> stage_convs.len()) >= 1 && (w >> stage_convs.len()) >= 1,
        "input too small for {} pooling stages",
        stage_convs.len()
    );
    let mut b = GraphBuilder::new(Shape::new(3, h, w));
    let mut prev = None;
    let mut prev_ch = 3usize;
    let mut idx = 0usize;
    for (stage, (&n_convs, &ch)) in stage_convs.iter().zip(widths).enumerate() {
        for _ in 0..n_convs {
            let id = b.conv(&format!("conv{idx}"), prev, ConvCfg::k3(prev_ch, ch, 1));
            prev = Some(id);
            prev_ch = ch;
            idx += 1;
        }
        let p = b.maxpool(
            &format!("pool_s{stage}"),
            prev.expect("stage has convs"),
            2,
            2,
            0,
        );
        prev = Some(p);
    }
    let gap = b.global_avgpool("gap", prev.expect("non-empty"));
    b.linear("fc", gap, num_classes);
    b.finish()
}

/// VGG-11 (configuration A) for `h × w` inputs.
pub fn vgg11(h: usize, w: usize, num_classes: usize) -> Graph {
    vgg(
        h,
        w,
        &[1, 1, 2, 2, 2],
        &[64, 128, 256, 512, 512],
        num_classes,
    )
}

/// VGG-16 (configuration D) for `h × w` inputs.
pub fn vgg16(h: usize, w: usize, num_classes: usize) -> Graph {
    vgg(
        h,
        w,
        &[2, 2, 3, 3, 3],
        &[64, 128, 256, 512, 512],
        num_classes,
    )
}

/// Builds a ResNet with basic blocks: `blocks[i]` two-conv blocks at width
/// `widths[i]`, ImageNet-style 7×7 stem. `blocks = [2,2,2,2]` is ResNet-18,
/// `[3,4,6,3]` is ResNet-34.
pub fn resnet_basic(h: usize, w: usize, blocks: &[usize], num_classes: usize) -> Graph {
    assert_eq!(blocks.len(), 4, "basic-block ResNets have four stages");
    let widths = [64usize, 128, 256, 512];
    let mut b = GraphBuilder::new(Shape::new(3, h, w));
    let c0 = b.conv(
        "conv0",
        b.input(),
        ConvCfg {
            in_ch: 3,
            out_ch: 64,
            kh: 7,
            kw: 7,
            stride: 2,
            pad: 3,
            relu: true,
        },
    );
    let mut prev = b.maxpool("pool1", c0, 3, 2, 1);
    let mut idx = 2usize;
    for (stage, (&n_blocks, &ch)) in blocks.iter().zip(&widths).enumerate() {
        for block in 0..n_blocks {
            let downsample = stage > 0 && block == 0;
            let in_ch = if downsample { widths[stage - 1] } else { ch };
            let stride = if downsample { 2 } else { 1 };
            let ca = b.conv(
                &format!("conv{idx}"),
                Some(prev),
                ConvCfg::k3(in_ch, ch, stride),
            );
            let cb = b.conv(
                &format!("conv{}", idx + 1),
                Some(ca),
                ConvCfg {
                    relu: false,
                    ..ConvCfg::k3(ch, ch, 1)
                },
            );
            let projection = downsample.then(|| ConvCfg::k1(in_ch, ch, 2));
            prev = b.residual(&format!("res{}", idx + 2), cb, prev, projection);
            idx += 3;
        }
    }
    let gap = b.global_avgpool("gap", prev);
    b.linear("fc", gap, num_classes);
    b.finish()
}

/// A MobileNetV1-style network: 3×3 stride-2 stem, then depthwise-separable
/// blocks (3×3 depthwise + 1×1 pointwise). The depthwise layers execute
/// digitally on the CORES; the pointwise layers are ideal crossbar
/// workloads — the mix the paper's related work (Garofalo et al.,
/// MobileNetV2) time-multiplexes on a single cluster and this platform
/// pipelines across clusters.
pub fn mobilenet_v1_lite(h: usize, w: usize, num_classes: usize) -> Graph {
    assert!(
        h >= 32 && w >= 32,
        "input too small for the 5 downsamplings"
    );
    let mut b = GraphBuilder::new(Shape::new(3, h, w));
    let stem = b.conv(
        "conv0",
        b.input(),
        ConvCfg {
            in_ch: 3,
            out_ch: 32,
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
            relu: true,
        },
    );
    // (out channels, stride) of each depthwise-separable block.
    let blocks = [
        (64usize, 1usize),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (1024, 2),
    ];
    let mut prev = stem;
    let mut ch = 32usize;
    for (i, &(out_ch, stride)) in blocks.iter().enumerate() {
        let dw = b.depthwise(
            &format!("dw{i}"),
            prev,
            ConvCfg {
                in_ch: ch,
                out_ch: ch,
                kh: 3,
                kw: 3,
                stride,
                pad: 1,
                relu: true,
            },
        );
        prev = b.conv(&format!("pw{i}"), Some(dw), ConvCfg::k1(ch, out_ch, 1));
        ch = out_ch;
    }
    let gap = b.global_avgpool("gap", prev);
    b.linear("fc", gap, num_classes);
    b.finish()
}

/// ResNet-34 for `h × w` inputs.
pub fn resnet34(h: usize, w: usize, num_classes: usize) -> Graph {
    resnet_basic(h, w, &[3, 4, 6, 3], num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::resnet::resnet18;

    #[test]
    fn vgg11_structure() {
        let g = vgg11(224, 224, 1000);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Conv(_)))
            .count();
        assert_eq!(convs, 8, "VGG-11 has 8 conv layers");
        // No residual edges anywhere.
        assert!(!g
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Residual { .. })));
        assert_eq!(g.output().out_shape, Shape::new(1000, 1, 1));
        // Feature map halves per stage: 224 → 7 after five pools.
        let gap_in = g.node(g.len() - 2).ifm_shape(&g);
        assert_eq!((gap_in.h, gap_in.w), (7, 7));
    }

    #[test]
    fn vgg16_macs_match_reference_scale() {
        // Canonical VGG-16 @224: ≈15.3 GMAC (convs) + 0.5M (our GAP head
        // replaces the 124M-param FC stack, so total is conv-dominated).
        let g = vgg16(224, 224, 1000);
        let gm = g.total_macs() as f64 / 1e9;
        assert!((14.0..16.0).contains(&gm), "VGG-16 {gm} GMAC");
    }

    #[test]
    fn resnet_basic_recovers_resnet18() {
        let a = resnet_basic(256, 256, &[2, 2, 2, 2], 1000);
        let b = resnet18(256, 256, 1000);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_macs(), b.total_macs());
        assert_eq!(a.total_params(), b.total_params());
    }

    #[test]
    fn resnet34_is_deeper_and_heavier() {
        let g34 = resnet34(224, 224, 1000);
        let g18 = resnet18(224, 224, 1000);
        assert!(g34.len() > g18.len());
        // Canonical ResNet-34 @224 ≈ 3.6 GMAC vs 1.8 for ResNet-18.
        let ratio = g34.total_macs() as f64 / g18.total_macs() as f64;
        assert!((1.8..2.2).contains(&ratio), "MAC ratio {ratio}");
        // 16 residual blocks.
        let res = g34
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Residual { .. }))
            .count();
        assert_eq!(res, 16);
    }

    #[test]
    fn mobilenet_lite_structure() {
        let g = mobilenet_v1_lite(224, 224, 1000);
        let dw = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::DepthwiseConv(_)))
            .count();
        assert_eq!(dw, 8, "eight depthwise-separable blocks");
        // Depthwise params are tiny relative to pointwise.
        let dw_params: usize = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::DepthwiseConv(_)))
            .map(|n| n.kind.params())
            .sum();
        assert!(dw_params < g.total_params() as usize / 20, "{dw_params}");
        assert_eq!(g.output().out_shape, Shape::new(1000, 1, 1));
        // Depthwise layers are not analog-amenable.
        assert!(g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::DepthwiseConv(_)))
            .all(|n| !n.kind.is_analog()));
    }

    #[test]
    fn mobilenet_golden_executes() {
        use crate::exec::infer_golden;
        use crate::weights::he_init;
        let g = mobilenet_v1_lite(32, 32, 10);
        let w = he_init(&g, 1);
        let x = crate::tensor::Tensor::zeros(g.input_shape());
        let y = infer_golden(&g, &w, &x);
        assert_eq!(y.shape(), Shape::new(10, 1, 1));
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn vgg_rejects_undersized_inputs() {
        vgg(16, 16, &[1, 1, 1, 1, 1], &[8, 8, 8, 8, 8], 10);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn vgg_rejects_mismatched_stages() {
        vgg(224, 224, &[1, 1], &[64], 10);
    }
}
