//! ResNet-18 builder matching the paper's layer numbering (Fig. 2A) and the
//! layer grouping used for the area-efficiency breakdown (Fig. 7).

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::layer::{ConvCfg, LayerKind};
use crate::tensor::Shape;

/// Builds a ResNet-18 for `h × w` inputs with `num_classes` outputs.
///
/// Node numbering follows Fig. 2A exactly (for the paper's 256×256 input):
///
/// ```text
/// 0 conv(7x7 s2) · 1 pool · [2 conv · 3 conv · 4 res] · [5..7] ·
/// [8 conv(s2) · 9 conv · 10 res+proj] · [11..13] ·
/// [14 conv(s2) · 15 conv · 16 res+proj] · [17..19] ·
/// [20 conv(s2) · 21 conv · 22 res+proj] · [23..25] · 26 pool · 27 FC
/// ```
///
/// The 1×1 stride-2 projection convolutions of the standard ResNet-18 are
/// attached to the residual nodes (10, 16, 22) rather than numbered
/// separately, preserving the paper's 28-node layout; their parameters and
/// MACs are attributed to those nodes.
///
/// # Examples
/// ```
/// use aimc_dnn::resnet18;
/// let g = resnet18(256, 256, 1000);
/// assert_eq!(g.len(), 28);
/// assert_eq!(g.node(20).kind.params(), 512 * 512 * 9 / 2); // 256→512 s2
/// ```
///
/// # Panics
/// Panics if `h` or `w` is smaller than 32 (the network degenerates).
pub fn resnet18(h: usize, w: usize, num_classes: usize) -> Graph {
    assert!(h >= 32 && w >= 32, "input too small for ResNet-18");
    let mut b = GraphBuilder::new(Shape::new(3, h, w));

    // Stem: 7x7/2 conv + 3x3/2 maxpool.
    let c0 = b.conv(
        "conv0",
        b.input(),
        ConvCfg {
            in_ch: 3,
            out_ch: 64,
            kh: 7,
            kw: 7,
            stride: 2,
            pad: 3,
            relu: true,
        },
    );
    let p1 = b.maxpool("pool1", c0, 3, 2, 1);

    // Four stages of two basic blocks each.
    let widths = [64usize, 128, 256, 512];
    let mut prev = p1;
    let mut node = 2usize;
    for (stage, &ch) in widths.iter().enumerate() {
        for block in 0..2 {
            let downsample = stage > 0 && block == 0;
            let in_ch = if downsample { widths[stage - 1] } else { ch };
            let stride = if downsample { 2 } else { 1 };
            let ca = b.conv(
                &format!("conv{node}"),
                Some(prev),
                ConvCfg::k3(in_ch, ch, stride),
            );
            let cb = b.conv(
                &format!("conv{}", node + 1),
                Some(ca),
                // Second conv of a block: ReLU is applied after the residual
                // add, not here.
                ConvCfg {
                    relu: false,
                    ..ConvCfg::k3(ch, ch, 1)
                },
            );
            let projection = downsample.then(|| ConvCfg::k1(in_ch, ch, 2));
            let r = b.residual(&format!("res{}", node + 2), cb, prev, projection);
            prev = r;
            node += 3;
        }
    }

    let gap = b.global_avgpool("pool26", prev);
    b.linear("fc27", gap, num_classes);
    b.finish()
}

/// A CIFAR-style ResNet-18 variant (3×3 stem, no initial max-pool) used by
/// functional accuracy tests where the full 256×256 network would be
/// needlessly slow. Mapping experiments always use [`resnet18`].
pub fn resnet18_cifar(num_classes: usize) -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 32, 32));
    let c0 = b.conv("conv0", b.input(), ConvCfg::k3(3, 16, 1));
    let widths = [16usize, 32, 64];
    let mut prev = c0;
    let mut node = 1usize;
    for (stage, &ch) in widths.iter().enumerate() {
        for block in 0..2 {
            let downsample = stage > 0 && block == 0;
            let in_ch = if downsample { widths[stage - 1] } else { ch };
            let stride = if downsample { 2 } else { 1 };
            let ca = b.conv(
                &format!("conv{node}"),
                Some(prev),
                ConvCfg::k3(in_ch, ch, stride),
            );
            let cb = b.conv(
                &format!("conv{}", node + 1),
                Some(ca),
                ConvCfg {
                    relu: false,
                    ..ConvCfg::k3(ch, ch, 1)
                },
            );
            let projection = downsample.then(|| ConvCfg::k1(in_ch, ch, 2));
            let r = b.residual(&format!("res{}", node + 2), cb, prev, projection);
            prev = r;
            node += 3;
        }
    }
    let gap = b.global_avgpool("gap", prev);
    b.linear("fc", gap, num_classes);
    b.finish()
}

/// The six layer groups of Fig. 7, keyed by the stage's characteristic IFM
/// shape (for the 256×256 network):
/// `256x256x3, 128x128x64, 64x64x64, 32x32x128, 16x16x256, 8x8x512`.
///
/// Returns the group index (0..=5) of a node of [`resnet18`]. Grouping is by
/// pipeline stage (stem conv, stem pool, then the four residual stages; the
/// tail pool/FC join the last group, as in Fig. 2's coloring).
pub fn layer_group(graph: &Graph, node: NodeId) -> usize {
    let n = graph.node(node);
    match node {
        0 => 0,
        1 => 1,
        _ => {
            // Residual stages: identify by output channel width.
            let c = n.out_shape.c;
            match c {
                64 => 2,
                128 => 3,
                256 => 4,
                _ => 5, // 512-channel stage, global pool (512x1x1) and FC
            }
        }
    }
}

/// Human-readable IFM label of each Fig. 7 group.
pub fn group_label(group: usize) -> &'static str {
    match group {
        0 => "256x256x3",
        1 => "128x128x64",
        2 => "64x64x64",
        3 => "32x32x128",
        4 => "16x16x256",
        5 => "8x8x512",
        _ => "other",
    }
}

/// Whether the node is one of the paper's digitally parallelized layers
/// (Sec. V-2: "plain parallelization scheme is used for pooling and residual
/// layers, i.e. Layers 1, 4, 7, 13, 19").
pub fn is_digital_layer(graph: &Graph, node: NodeId) -> bool {
    matches!(
        graph.node(node).kind,
        LayerKind::MaxPool { .. } | LayerKind::GlobalAvgPool | LayerKind::Residual { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn node_count_and_numbering_match_fig2a() {
        let g = resnet18(256, 256, 1000);
        assert_eq!(g.len(), 28);
        let mnemonics: Vec<&str> = g.nodes().iter().map(|n| n.kind.mnemonic()).collect();
        let expect = [
            "conv", "pool", // stem
            "conv", "conv", "res", "conv", "conv", "res", // 64
            "conv", "conv", "res", "conv", "conv", "res", // 128
            "conv", "conv", "res", "conv", "conv", "res", // 256
            "conv", "conv", "res", "conv", "conv", "res", // 512
            "pool", "FC",
        ];
        assert_eq!(mnemonics, expect);
    }

    #[test]
    fn shapes_match_paper_pipeline() {
        let g = resnet18(256, 256, 1000);
        assert_eq!(g.node(0).out_shape, Shape::new(64, 128, 128));
        assert_eq!(g.node(1).out_shape, Shape::new(64, 64, 64));
        assert_eq!(g.node(7).out_shape, Shape::new(64, 64, 64));
        assert_eq!(g.node(8).out_shape, Shape::new(128, 32, 32));
        assert_eq!(g.node(14).out_shape, Shape::new(256, 16, 16));
        assert_eq!(g.node(20).out_shape, Shape::new(512, 8, 8));
        assert_eq!(g.node(26).out_shape, Shape::new(512, 1, 1));
        assert_eq!(g.node(27).out_shape, Shape::new(1000, 1, 1));
    }

    #[test]
    fn deep_convs_have_2_3m_params() {
        // Sec. V-1: "Layer 22 features 2.3M parameters".
        let g = resnet18(256, 256, 1000);
        for id in [21, 23, 24] {
            assert_eq!(g.node(id).kind.params(), 2_359_296, "node {id}");
        }
    }

    #[test]
    fn projections_attached_to_stage_boundary_residuals() {
        let g = resnet18(256, 256, 1000);
        for id in [10, 16, 22] {
            assert!(
                matches!(
                    g.node(id).kind,
                    LayerKind::Residual {
                        projection: Some(_)
                    }
                ),
                "node {id} should carry a projection"
            );
        }
        for id in [4, 7, 13, 19, 25] {
            assert!(
                matches!(g.node(id).kind, LayerKind::Residual { projection: None }),
                "node {id} should not carry a projection"
            );
        }
    }

    #[test]
    fn total_params_match_resnet18() {
        let g = resnet18(256, 256, 1000);
        // Standard ResNet-18 conv+fc weights (BN folded, no biases):
        // 11.17M ≈ computed sum.
        let p = g.total_params();
        assert!(
            (11_000_000..11_700_000).contains(&p),
            "unexpected parameter count {p}"
        );
    }

    #[test]
    fn total_macs_for_256_input() {
        let g = resnet18(256, 256, 1000);
        let m = g.total_macs();
        // ≈2.37 GMAC (see DESIGN.md §7): scale of 1.82 GMAC @224 by (256/224)².
        assert!(
            (2_300_000_000..2_450_000_000).contains(&m),
            "unexpected MAC count {m}"
        );
    }

    #[test]
    fn groups_partition_the_network() {
        let g = resnet18(256, 256, 1000);
        let groups: Vec<usize> = (0..g.len()).map(|i| layer_group(&g, i)).collect();
        assert_eq!(groups[0], 0);
        assert_eq!(groups[1], 1);
        assert!(groups[2..8].iter().all(|&x| x == 2));
        assert!(groups[8..14].iter().all(|&x| x == 3));
        assert!(groups[14..20].iter().all(|&x| x == 4));
        assert!(groups[20..28].iter().all(|&x| x == 5));
        for gidx in 0..6 {
            assert!(!group_label(gidx).is_empty());
        }
    }

    #[test]
    fn digital_layers_flagged() {
        let g = resnet18(256, 256, 1000);
        for id in [1, 4, 7, 13, 19, 26] {
            assert!(is_digital_layer(&g, id), "node {id}");
        }
        for id in [0, 2, 20, 27] {
            assert!(!is_digital_layer(&g, id), "node {id}");
        }
    }

    #[test]
    fn cifar_variant_is_well_formed() {
        let g = resnet18_cifar(10);
        assert_eq!(g.input_shape(), Shape::new(3, 32, 32));
        assert_eq!(g.output().out_shape, Shape::new(10, 1, 1));
        assert_eq!(g.node(g.len() - 2).out_shape, Shape::new(64, 1, 1));
        // 6 residual blocks => 6 res nodes.
        let res_count = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Residual { .. }))
            .count();
        assert_eq!(res_count, 6);
    }

    #[test]
    fn works_at_other_resolutions() {
        let g = resnet18(224, 224, 1000);
        assert_eq!(g.node(0).out_shape, Shape::new(64, 112, 112));
        let m = g.total_macs();
        // Canonical ResNet-18 @224: ≈1.82 GMAC.
        assert!((1_750_000_000..1_900_000_000).contains(&m), "{m}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_inputs() {
        resnet18(16, 16, 10);
    }
}
