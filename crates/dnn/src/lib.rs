//! # aimc-dnn — DNN substrate
//!
//! Everything the platform needs to know about the workloads it executes:
//! tensors, layer definitions with shape/MAC/parameter inference, the network
//! DAG (Fig. 2A of the paper), a ResNet-18 builder matching the paper's
//! layer numbering, deterministic synthetic weights, int8 quantization, and
//! two functional executors:
//!
//! * [`GoldenExecutor`] / [`execute_golden`] — digital f32 ground truth;
//! * [`AimcExecutor`] — the same graph with convolutions/FC evaluated on the
//!   modeled PCM crossbars of `aimc-xbar`, split across arrays exactly like
//!   the multi-cluster mapping of Sec. V-1 (via the shared [`ceil_split`]).
//!
//! Both implement the [`Executor`] trait — program once, then stream
//! images — with failures surfaced as [`ExecError`] values; the
//! `aimc-platform` facade selects between them via its `Backend` enum.
//!
//! The *timing* of execution is not modeled here — that is `aimc-core`
//! (mapping) plus `aimc-runtime` (pipelined simulation); this crate answers
//! structural questions (shapes, ops, parameters) and functional ones
//! (numerical results through analog arrays).
//!
//! ## Example
//! ```
//! use aimc_dnn::{resnet18, layer_group};
//! let g = resnet18(256, 256, 1000);
//! assert_eq!(g.len(), 28);                    // Fig. 2A: nodes 0..=27
//! assert_eq!(g.node(21).kind.params(), 2_359_296); // "2.3M parameters"
//! assert_eq!(layer_group(&g, 21), 5);         // Fig. 7 group "8x8x512"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aimc_exec;
mod exec;
mod executor;
mod graph;
mod layer;
pub mod ops;
pub mod quant;
mod resnet;
mod tensor;
mod weights;
mod zoo;

pub use aimc_exec::AimcExecutor;
pub use aimc_parallel::Parallelism;
pub use exec::{execute_golden, infer_golden, skip_producer, try_execute_golden};
pub use executor::{ExecError, Executor, GoldenExecutor};
pub use graph::{Graph, GraphBuilder, Node, NodeId};
pub use layer::{ConvCfg, LayerKind};
pub use ops::ceil_split;
pub use resnet::{group_label, is_digital_layer, layer_group, resnet18, resnet18_cifar};
pub use tensor::{Shape, Tensor};
pub use weights::{he_init, Weights};
pub use zoo::{mobilenet_v1_lite, resnet34, resnet_basic, vgg, vgg11, vgg16};
