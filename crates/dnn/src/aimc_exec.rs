//! Functional AIMC executor: runs a graph with every analog-amenable layer
//! (convolutions, the FC head, residual projections) evaluated on modeled
//! PCM crossbars from `aimc-xbar`, split across multiple arrays exactly like
//! the multi-cluster mapping of Sec. V-1:
//!
//! * rows (`Cin·Kx·Ky`) beyond the array height are split across arrays and
//!   the partial outputs are **reduced digitally** (as the CORES do);
//! * columns (`Cout`) beyond the array width are split across arrays with the
//!   input **broadcast** to each.
//!
//! Digital layers (pooling, residual adds, ReLU) use the golden ops — they
//! run on the RISC-V cores in the real system.
//!
//! This executor answers the functional question the timing simulator cannot:
//! *does the network still classify correctly through quantized, noisy analog
//! arrays?* (See the `analog_accuracy` example.)

use crate::executor::{check_weights, ExecError, Executor};
use crate::graph::Graph;
use crate::layer::{ConvCfg, LayerKind};
use crate::ops::{self, ceil_split};
use crate::tensor::{Shape, Tensor};
use crate::weights::Weights;
use aimc_xbar::{Crossbar, XbarConfig, XbarError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// One analog layer deployed across one or more crossbar tiles.
#[derive(Debug)]
struct AnalogLayer {
    cfg: ConvCfg,
    /// `tiles[row_split][col_split]`.
    tiles: Vec<Vec<Crossbar>>,
    row_chunks: Vec<(usize, usize)>, // (start, len) in xbar-row space
    col_chunks: Vec<(usize, usize)>, // (start, len) in output-channel space
}

impl AnalogLayer {
    fn program(
        cfg: ConvCfg,
        xbar_weights: &[f32], // [rows][cols] row-major
        xbar_cfg: &XbarConfig,
        rng: &mut StdRng,
    ) -> Result<Self, XbarError> {
        let rows = cfg.xbar_rows();
        let cols = cfg.xbar_cols();
        let row_chunks = ceil_split(rows, xbar_cfg.rows);
        let col_chunks = ceil_split(cols, xbar_cfg.cols);
        let mut tiles = Vec::with_capacity(row_chunks.len());
        for &(r0, rl) in &row_chunks {
            let mut row_tiles = Vec::with_capacity(col_chunks.len());
            for &(c0, cl) in &col_chunks {
                let mut block = Vec::with_capacity(rl * cl);
                for r in r0..r0 + rl {
                    block.extend_from_slice(&xbar_weights[r * cols + c0..r * cols + c0 + cl]);
                }
                row_tiles.push(Crossbar::program(xbar_cfg, &block, rl, cl, rng)?);
            }
            tiles.push(row_tiles);
        }
        Ok(AnalogLayer {
            cfg,
            tiles,
            row_chunks,
            col_chunks,
        })
    }

    /// Full conv via per-pixel im2col MVMs with digital partial reduction.
    fn conv(&self, x: &Tensor, rng: &mut StdRng) -> Tensor {
        let outs = self.cfg.out_shape(x.shape());
        let mut y = Tensor::zeros(outs);
        let rows = self.cfg.xbar_rows();
        let mut patch = vec![0.0f32; rows];
        let mut col_buf = vec![0.0f32; self.col_chunks.iter().map(|c| c.1).max().unwrap_or(0)];
        for oh in 0..outs.h {
            for ow in 0..outs.w {
                ops::im2col_patch(x, &self.cfg, oh, ow, &mut patch);
                for (ri, &(r0, rl)) in self.row_chunks.iter().enumerate() {
                    let xin = &patch[r0..r0 + rl];
                    for (ci, &(c0, cl)) in self.col_chunks.iter().enumerate() {
                        let out = &mut col_buf[..cl];
                        self.tiles[ri][ci]
                            .mvm_into(xin, out, rng)
                            .expect("programmed dimensions are consistent");
                        for (k, &v) in out.iter().enumerate() {
                            let oc = c0 + k;
                            // Digital reduction of row-split partials.
                            let cur = y.get(oc, oh, ow);
                            y.set(oc, oh, ow, cur + v);
                        }
                    }
                }
                if self.cfg.relu {
                    for oc in 0..outs.c {
                        if y.get(oc, oh, ow) < 0.0 {
                            y.set(oc, oh, ow, 0.0);
                        }
                    }
                }
            }
        }
        y
    }

    fn total_mvms(&self) -> u64 {
        self.tiles.iter().flatten().map(|t| t.mvm_count()).sum()
    }
}

/// Graph executor with analog layers on modeled crossbars.
///
/// # Examples
/// ```no_run
/// use aimc_dnn::{AimcExecutor, he_init, resnet18_cifar, Shape, Tensor};
/// use aimc_xbar::XbarConfig;
/// let g = resnet18_cifar(10);
/// let w = he_init(&g, 0);
/// let mut exec = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 1).unwrap();
/// let y = exec.infer(&Tensor::zeros(Shape::new(3, 32, 32)));
/// assert_eq!(y.shape(), Shape::new(10, 1, 1));
/// ```
#[derive(Debug)]
pub struct AimcExecutor {
    graph: Arc<Graph>,
    weights: Arc<Weights>,
    analog: HashMap<usize, AnalogLayer>,
    /// FC head deployed as crossbar tiles (reuses conv machinery with a
    /// 1×1 "image").
    rng: StdRng,
    xbar_cfg: XbarConfig,
}

impl AimcExecutor {
    /// Programs all analog layers of `graph` onto crossbars.
    ///
    /// # Errors
    /// [`ExecError::MissingWeights`] if a parametric node lacks weights;
    /// [`ExecError::Xbar`] on programming failures (e.g. invalid config).
    pub fn try_program(
        graph: &Graph,
        weights: &Weights,
        xbar_cfg: &XbarConfig,
        seed: u64,
    ) -> Result<Self, ExecError> {
        Self::try_program_shared(
            Arc::new(graph.clone()),
            Arc::new(weights.clone()),
            xbar_cfg,
            seed,
        )
    }

    /// Programs all analog layers onto crossbars, sharing already-owned
    /// graph/weights handles (no deep copy — used by the `aimc-platform`
    /// session, which keeps both behind `Arc`).
    ///
    /// # Errors
    /// Same conditions as [`AimcExecutor::try_program`].
    pub fn try_program_shared(
        graph: Arc<Graph>,
        weights: Arc<Weights>,
        xbar_cfg: &XbarConfig,
        seed: u64,
    ) -> Result<Self, ExecError> {
        check_weights(&graph, &weights)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut analog = HashMap::new();
        for node in graph.nodes() {
            let conv_cfg = match &node.kind {
                LayerKind::Conv(c) => Some(*c),
                LayerKind::Residual {
                    projection: Some(p),
                } => Some(*p),
                LayerKind::Linear {
                    in_features,
                    out_features,
                } => Some(ConvCfg {
                    in_ch: *in_features,
                    out_ch: *out_features,
                    kh: 1,
                    kw: 1,
                    stride: 1,
                    pad: 0,
                    relu: false,
                }),
                _ => None,
            };
            if let Some(cfg) = conv_cfg {
                let w = weights.get(node.id).expect("checked by check_weights");
                let wx = ops::weights_to_xbar_layout(w, &cfg);
                analog.insert(node.id, AnalogLayer::program(cfg, &wx, xbar_cfg, &mut rng)?);
            }
        }
        Ok(AimcExecutor {
            graph,
            weights,
            analog,
            rng,
            xbar_cfg: xbar_cfg.clone(),
        })
    }

    /// Programs all analog layers of `graph` onto crossbars (legacy
    /// signature over [`AimcExecutor::try_program`]).
    ///
    /// # Errors
    /// Propagates [`XbarError`] from programming (e.g. invalid config).
    ///
    /// # Panics
    /// Panics if a parametric node lacks weights.
    pub fn program(
        graph: &Graph,
        weights: &Weights,
        xbar_cfg: &XbarConfig,
        seed: u64,
    ) -> Result<Self, XbarError> {
        match Self::try_program(graph, weights, xbar_cfg, seed) {
            Ok(exec) => Ok(exec),
            Err(ExecError::Xbar(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of crossbar tiles programmed (row splits × col splits summed
    /// over analog layers) — must agree with the mapper's IMA counts.
    pub fn tile_count(&self) -> usize {
        self.analog
            .values()
            .map(|l| l.tiles.iter().map(|r| r.len()).sum::<usize>())
            .sum()
    }

    /// The crossbar configuration in use.
    pub fn xbar_config(&self) -> &XbarConfig {
        &self.xbar_cfg
    }

    /// Total MVMs evaluated since programming.
    pub fn total_mvms(&self) -> u64 {
        self.analog.values().map(|l| l.total_mvms()).sum()
    }

    /// Applies PCM conductance drift to every programmed tile: `t_hours`
    /// since programming (see [`Crossbar::apply_drift`]). Models inference
    /// long after deployment without re-programming — the scenario
    /// non-volatile AIMC targets.
    pub fn apply_drift(&mut self, t_hours: f64) {
        for layer in self.analog.values_mut() {
            for row in layer.tiles.iter_mut() {
                for tile in row.iter_mut() {
                    tile.apply_drift(t_hours);
                }
            }
        }
    }

    /// Runs one image through the network.
    ///
    /// # Errors
    /// [`ExecError::ShapeMismatch`] if the input does not match the graph's
    /// input shape.
    pub fn try_infer(&mut self, input: &Tensor) -> Result<Tensor, ExecError> {
        if input.shape() != self.graph.input_shape() {
            return Err(ExecError::ShapeMismatch {
                expected: self.graph.input_shape(),
                got: input.shape(),
            });
        }
        let mut outs: Vec<Tensor> = Vec::with_capacity(self.graph.len());
        // Iterate by id to placate the borrow checker (graph is immutable,
        // rng is mutable).
        for id in 0..self.graph.len() {
            let node = self.graph.node(id).clone();
            let fetch = |slot: usize, outs: &[Tensor]| -> Tensor {
                match node.inputs.get(slot) {
                    Some(&p) => outs[p].clone(),
                    None => input.clone(),
                }
            };
            let y = match &node.kind {
                LayerKind::Input => input.clone(),
                LayerKind::Conv(_) => {
                    let x = fetch(0, &outs);
                    self.analog
                        .get(&id)
                        .expect("analog layer programmed")
                        .conv(&x, &mut self.rng)
                }
                LayerKind::DepthwiseConv(cfg) => {
                    // Depthwise runs digitally on the CORES (block-diagonal
                    // weights waste crossbar cells).
                    let w = self
                        .weights
                        .get(id)
                        .unwrap_or_else(|| panic!("missing weights for node {id}"));
                    ops::depthwise_conv2d(&fetch(0, &outs), w, cfg)
                }
                LayerKind::MaxPool { k, stride, pad } => {
                    ops::maxpool2d(&fetch(0, &outs), *k, *stride, *pad)
                }
                LayerKind::GlobalAvgPool => ops::global_avgpool(&fetch(0, &outs)),
                LayerKind::Linear { out_features, .. } => {
                    let x = fetch(0, &outs);
                    let flat = Tensor::from_vec(Shape::new(x.shape().numel(), 1, 1), x.into_vec());
                    let y = self
                        .analog
                        .get(&id)
                        .expect("analog layer programmed")
                        .conv(&flat, &mut self.rng);
                    Tensor::from_vec(Shape::new(*out_features, 1, 1), y.into_vec())
                }
                LayerKind::Residual { projection } => {
                    let main = fetch(0, &outs);
                    let skip = fetch(1, &outs);
                    let skip = match projection {
                        Some(_) => self
                            .analog
                            .get(&id)
                            .expect("projection programmed")
                            .conv(&skip, &mut self.rng),
                        None => skip,
                    };
                    ops::add(&main, &skip, true)
                }
            };
            outs.push(y);
        }
        Ok(outs.pop().expect("non-empty graph"))
    }

    /// Runs one image through the network (panicking convenience over
    /// [`AimcExecutor::try_infer`]).
    ///
    /// # Panics
    /// Panics if the input shape does not match the graph.
    pub fn infer(&mut self, input: &Tensor) -> Tensor {
        self.try_infer(input).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Executor for AimcExecutor {
    fn infer(&mut self, input: &Tensor) -> Result<Tensor, ExecError> {
        self.try_infer(input)
    }

    fn backend_name(&self) -> &'static str {
        "analog"
    }

    fn tile_count(&self) -> usize {
        AimcExecutor::tile_count(self)
    }

    fn total_mvms(&self) -> u64 {
        AimcExecutor::total_mvms(self)
    }

    fn apply_drift(&mut self, t_hours: f64) -> bool {
        AimcExecutor::apply_drift(self, t_hours);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::infer_golden;
    use crate::graph::GraphBuilder;
    use crate::weights::he_init;
    use rand::Rng;

    fn small_cnn() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
        let r = b.residual("r", c1, c0, None);
        let p = b.global_avgpool("gap", r);
        let _ = b.linear("fc", p, 4);
        b.finish()
    }

    fn random_image(shape: Shape, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.numel())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        )
    }

    #[test]
    fn ceil_split_covers_exactly() {
        // The canonical helper shared with `aimc_core::SplitPlan`.
        assert_eq!(ceil_split(576, 256), vec![(0, 192), (192, 192), (384, 192)]);
        assert_eq!(ceil_split(256, 256), vec![(0, 256)]);
        assert_eq!(ceil_split(512, 256), vec![(0, 256), (256, 256)]);
        assert_eq!(ceil_split(5, 2), vec![(0, 2), (2, 2), (4, 1)]);
        // Chunks tile the range with no gaps.
        for (total, max) in [(1000, 256), (77, 10), (1, 5)] {
            let chunks = ceil_split(total, max);
            let mut pos = 0;
            for (s, l) in chunks {
                assert_eq!(s, pos);
                assert!(l <= max);
                pos += l;
            }
            assert_eq!(pos, total);
        }
    }

    #[test]
    fn try_program_reports_missing_weights() {
        let g = small_cnn();
        let err = AimcExecutor::try_program(&g, &Weights::new(), &XbarConfig::ideal(32, 32), 1)
            .unwrap_err();
        assert!(matches!(err, ExecError::MissingWeights { .. }));
    }

    #[test]
    fn try_infer_reports_shape_mismatch() {
        let g = small_cnn();
        let w = he_init(&g, 0);
        let mut e = AimcExecutor::try_program(&g, &w, &XbarConfig::ideal(64, 64), 1).unwrap();
        let err = e
            .try_infer(&Tensor::zeros(Shape::new(3, 4, 4)))
            .unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { .. }));
    }

    #[test]
    fn ideal_analog_matches_golden() {
        let g = small_cnn();
        let w = he_init(&g, 3);
        let x = random_image(g.input_shape(), 7);
        let golden = infer_golden(&g, &w, &x);
        let mut exec = AimcExecutor::program(&g, &w, &XbarConfig::ideal(256, 256), 1).unwrap();
        let analog = exec.infer(&x);
        for (a, b) in analog.data().iter().zip(golden.data()) {
            let tol = 0.05 * b.abs().max(1.0);
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn row_splits_are_exercised_by_small_arrays() {
        let g = small_cnn();
        let w = he_init(&g, 3);
        // 8-channel 3x3 conv ⇒ 72 rows; a 32-row array forces 3 row splits.
        // c0: 27 rows→1 tile; c1: 72 rows→3 tiles; fc: 1 tile ⇒ 5 tiles.
        let cfg = XbarConfig::ideal(32, 16);
        let mut exec = AimcExecutor::program(&g, &w, &cfg, 1).unwrap();
        assert_eq!(exec.tile_count(), 5);
        let x = random_image(g.input_shape(), 7);
        let golden = infer_golden(&g, &w, &x);
        let analog = exec.infer(&x);
        for (a, b) in analog.data().iter().zip(golden.data()) {
            let tol = 0.08 * b.abs().max(1.0);
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
        assert!(exec.total_mvms() > 0);
    }

    #[test]
    fn noisy_arrays_still_classify_like_golden() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let mut exec = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 2).unwrap();
        let mut agree = 0;
        let n = 10;
        for i in 0..n {
            let x = random_image(g.input_shape(), 100 + i);
            let golden = infer_golden(&g, &w, &x);
            let analog = exec.infer(&x);
            if golden.argmax() == analog.argmax() {
                agree += 1;
            }
        }
        // Device noise may flip borderline decisions, but most must agree.
        assert!(agree >= n * 6 / 10, "only {agree}/{n} agreed");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let x = random_image(g.input_shape(), 3);
        let run = || {
            let mut e = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 9).unwrap();
            e.infer(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tile_count_matches_split_arithmetic() {
        let g = small_cnn();
        let w = he_init(&g, 0);
        let cfg = XbarConfig::ideal(32, 4);
        let exec = AimcExecutor::program(&g, &w, &cfg, 1).unwrap();
        // c0: rows 27→1 split, cols 8→2; c1: rows 72→3, cols 8→2;
        // fc: rows 8→1, cols 4→1. Total tiles = 2 + 6 + 1 = 9.
        assert_eq!(exec.tile_count(), 9);
    }
}
