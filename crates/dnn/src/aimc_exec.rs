//! Functional AIMC executor: runs a graph with every analog-amenable layer
//! (convolutions, the FC head, residual projections) evaluated on modeled
//! PCM crossbars from `aimc-xbar`, split across multiple arrays exactly like
//! the multi-cluster mapping of Sec. V-1:
//!
//! * rows (`Cin·Kx·Ky`) beyond the array height are split across arrays and
//!   the partial outputs are **reduced digitally** (as the CORES do);
//! * columns (`Cout`) beyond the array width are split across arrays with the
//!   input **broadcast** to each.
//!
//! Digital layers (pooling, residual adds, ReLU) use the golden ops — they
//! run on the RISC-V cores in the real system.
//!
//! This executor answers the functional question the timing simulator cannot:
//! *does the network still classify correctly through quantized, noisy analog
//! arrays?* (See the `analog_accuracy` example.)
//!
//! ## Determinism under parallel execution
//!
//! The paper's 512 AIMC cores evaluate tile-MVMs concurrently; this executor
//! mirrors that with the `aimc-parallel` engine while keeping one hard
//! invariant: **for a fixed seed, the logits are bit-identical no matter how
//! many threads run**. Three mechanisms carry the invariant:
//!
//! 1. every tile is programmed from its own RNG stream, seeded by
//!    `stream_seed(seed, layer_id, tile_index)` — no shared programming RNG
//!    to serialize on;
//! 2. every MVM's read noise comes from the stream of its *invocation
//!    coordinate* `image_index · patches_per_layer + patch_index`
//!    ([`Crossbar::mvm_into_at`]) — noise depends on where the MVM sits in
//!    the workload, never on scheduling order;
//! 3. digital reduction of row-split partials is merged in fixed
//!    `(row_split, col_split)` order, so f32 addition order matches the
//!    serial loop exactly.

use crate::executor::{check_weights, ExecError, Executor};
use crate::graph::Graph;
use crate::layer::{ConvCfg, LayerKind};
use crate::ops::{self, ceil_split};
use crate::tensor::{Shape, Tensor};
use crate::weights::Weights;
use aimc_parallel::{map_with, try_map_indexed, try_map_with, Parallelism};
use aimc_xbar::stream::stream_seed;
use aimc_xbar::{Crossbar, MvmScratch, XbarConfig, XbarError, DAC_BATCH};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reusable per-worker buffers for the MVM hot loop: up to [`DAC_BATCH`]
/// im2col patches, their per-tile row slices, the per-tile output slab, and
/// the crossbar kernels' own [`MvmScratch`]. One scratch lives per worker
/// thread (or one per executor call in serial mode) and is recycled across
/// every patch, tile, layer, and image that worker touches — the hot loop
/// allocates nothing.
#[derive(Debug, Default)]
struct InferScratch {
    /// Up to [`DAC_BATCH`] concatenated im2col patches, each sized to the
    /// largest `xbar_rows()` among analog layers.
    patch: Vec<f32>,
    /// Per-tile row slices of the batched patches (row-split layers only).
    xs: Vec<f32>,
    /// Per-tile MVM outputs for the batch, sized to the largest column
    /// chunk × [`DAC_BATCH`].
    col: Vec<f32>,
    /// Kernel-internal buffers (quantized inputs, row masks, accumulators).
    mvm: MvmScratch,
}

impl InferScratch {
    /// Grows the buffers to cover a layer with `rows` patch elements and
    /// `max_cols` output columns (no-op once warm).
    fn reserve(&mut self, rows: usize, max_cols: usize) {
        if self.patch.len() < DAC_BATCH * rows {
            self.patch.resize(DAC_BATCH * rows, 0.0);
        }
        if self.xs.len() < DAC_BATCH * rows {
            self.xs.resize(DAC_BATCH * rows, 0.0);
        }
        if self.col.len() < DAC_BATCH * max_cols {
            self.col.resize(DAC_BATCH * max_cols, 0.0);
        }
    }
}

/// One analog layer deployed across one or more crossbar tiles.
#[derive(Debug)]
struct AnalogLayer {
    cfg: ConvCfg,
    /// `tiles[row_split][col_split]`.
    tiles: Vec<Vec<Crossbar>>,
    row_chunks: Vec<(usize, usize)>, // (start, len) in xbar-row space
    col_chunks: Vec<(usize, usize)>, // (start, len) in output-channel space
}

impl AnalogLayer {
    /// Programs the layer's tiles, each from its own
    /// `stream_seed(seed, layer_id, tile)` RNG stream — tiles are
    /// independent, so programming parallelizes without changing a single
    /// conductance.
    fn program(
        cfg: ConvCfg,
        xbar_weights: &[f32], // [rows][cols] row-major
        xbar_cfg: &XbarConfig,
        seed: u64,
        layer_id: usize,
        par: Parallelism,
    ) -> Result<Self, XbarError> {
        let rows = cfg.xbar_rows();
        let cols = cfg.xbar_cols();
        let row_chunks = ceil_split(rows, xbar_cfg.rows);
        let col_chunks = ceil_split(cols, xbar_cfg.cols);
        let n_cols = col_chunks.len();

        // Flat tile descriptors in (row_split, col_split) order.
        let descs: Vec<(usize, usize)> = (0..row_chunks.len())
            .flat_map(|ri| (0..n_cols).map(move |ci| (ri, ci)))
            .collect();
        let flat: Vec<Crossbar> = try_map_indexed(par, &descs, |t, &(ri, ci)| {
            let (r0, rl) = row_chunks[ri];
            let (c0, cl) = col_chunks[ci];
            let mut block = Vec::with_capacity(rl * cl);
            for r in r0..r0 + rl {
                block.extend_from_slice(&xbar_weights[r * cols + c0..r * cols + c0 + cl]);
            }
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, layer_id as u64, t as u64));
            Crossbar::program(xbar_cfg, &block, rl, cl, &mut rng)
        })?;

        let mut tiles = Vec::with_capacity(row_chunks.len());
        let mut it = flat.into_iter();
        for _ in 0..row_chunks.len() {
            tiles.push(it.by_ref().take(n_cols).collect());
        }
        Ok(AnalogLayer {
            cfg,
            tiles,
            row_chunks,
            col_chunks,
        })
    }

    /// Widest column chunk (scratch sizing).
    fn max_col_chunk(&self) -> usize {
        self.col_chunks.iter().map(|c| c.1).max().unwrap_or(0)
    }

    /// Full conv via per-pixel im2col MVMs with digital partial reduction.
    ///
    /// `img` is the image's global invocation base coordinate; the MVM for
    /// output pixel `p` of this image uses invocation `img · n_pixels + p`
    /// on every tile, making the noise independent of evaluation order.
    /// With a parallel setting and more than one tile, tiles are evaluated
    /// concurrently and merged in the serial reduction order.
    fn conv(&self, x: &Tensor, img: u64, scratch: &mut InferScratch, par: Parallelism) -> Tensor {
        let outs = self.cfg.out_shape(x.shape());
        let n_tiles = self.row_chunks.len() * self.col_chunks.len();
        let mut y = if par.is_parallel() && n_tiles > 1 {
            self.conv_tiles_parallel(x, img, outs, par)
        } else {
            self.conv_serial(x, img, outs, scratch)
        };
        if self.cfg.relu {
            ops::relu_inplace(&mut y);
        }
        y
    }

    /// The reference single-thread evaluation (also the per-image body under
    /// image-level parallelism).
    ///
    /// Output pixels are evaluated in chunks of up to [`DAC_BATCH`] patches
    /// per tile through [`Crossbar::mvm_batch_into_with`], which is
    /// bit-identical to the equivalent sequence of single MVMs (each patch
    /// carries its own explicit invocation coordinate). Per output element
    /// the digital reduction still runs in ascending `(row_split,
    /// col_split)` order, so the f32 sums match the unbatched loop exactly.
    fn conv_serial(&self, x: &Tensor, img: u64, outs: Shape, scratch: &mut InferScratch) -> Tensor {
        let mut y = Tensor::zeros(outs);
        let rows = self.cfg.xbar_rows();
        scratch.reserve(rows, self.max_col_chunk());
        let n_pix = outs.h * outs.w;
        let single_row_chunk = self.row_chunks.len() == 1;
        let mut invocations = [0u64; DAC_BATCH];
        for p0 in (0..n_pix).step_by(DAC_BATCH) {
            let k = DAC_BATCH.min(n_pix - p0);
            for (p, inv) in invocations.iter_mut().enumerate().take(k) {
                let pix = p0 + p;
                let (oh, ow) = (pix / outs.w, pix % outs.w);
                *inv = (img * n_pix as u64) + pix as u64;
                ops::im2col_patch(
                    x,
                    &self.cfg,
                    oh,
                    ow,
                    &mut scratch.patch[p * rows..(p + 1) * rows],
                );
            }
            for (ri, &(r0, rl)) in self.row_chunks.iter().enumerate() {
                // Row-split layers gather each tile's row slice of every
                // patch; unsplit layers (the common case) feed the patch
                // buffer straight to the kernel.
                let xin: &[f32] = if single_row_chunk {
                    &scratch.patch[..k * rows]
                } else {
                    for p in 0..k {
                        scratch.xs[p * rl..(p + 1) * rl]
                            .copy_from_slice(&scratch.patch[p * rows + r0..p * rows + r0 + rl]);
                    }
                    &scratch.xs[..k * rl]
                };
                for (ci, &(c0, cl)) in self.col_chunks.iter().enumerate() {
                    let out = &mut scratch.col[..k * cl];
                    self.tiles[ri][ci]
                        .mvm_batch_into_with(xin, out, &invocations[..k], &mut scratch.mvm)
                        .expect("programmed dimensions are consistent");
                    for p in 0..k {
                        let pix = p0 + p;
                        let (oh, ow) = (pix / outs.w, pix % outs.w);
                        for (c, &v) in out[p * cl..(p + 1) * cl].iter().enumerate() {
                            let oc = c0 + c;
                            // Digital reduction of row-split partials.
                            let cur = y.get(oc, oh, ow);
                            y.set(oc, oh, ow, cur + v);
                        }
                    }
                }
            }
        }
        y
    }

    /// Tile-level parallel evaluation: each tile sweeps all output pixels
    /// into a private partial plane; planes are then merged in
    /// `(row_split, col_split)` order — the exact f32 addition order of
    /// [`AnalogLayer::conv_serial`] — so the result is bit-identical.
    fn conv_tiles_parallel(&self, x: &Tensor, img: u64, outs: Shape, par: Parallelism) -> Tensor {
        let max_rl = self.row_chunks.iter().map(|c| c.1).max().unwrap_or(0);
        let n_pix = outs.h * outs.w;
        let descs: Vec<(usize, usize)> = (0..self.row_chunks.len())
            .flat_map(|ri| (0..self.col_chunks.len()).map(move |ci| (ri, ci)))
            .collect();

        let planes: Vec<Vec<f32>> = map_with(
            par,
            &descs,
            || (vec![0.0f32; DAC_BATCH * max_rl], MvmScratch::new()),
            |(patch, mvm), _, &(ri, ci)| {
                let (r0, rl) = self.row_chunks[ri];
                let (_, cl) = self.col_chunks[ci];
                let tile = &self.tiles[ri][ci];
                let mut plane = vec![0.0f32; cl * n_pix];
                let mut invocations = [0u64; DAC_BATCH];
                // Consecutive output pixels are batched through the tile:
                // bit-identical to single MVMs, and the batch outputs land
                // contiguously in the plane.
                for p0 in (0..n_pix).step_by(DAC_BATCH) {
                    let k = DAC_BATCH.min(n_pix - p0);
                    for (p, inv) in invocations.iter_mut().enumerate().take(k) {
                        let pix = p0 + p;
                        let (oh, ow) = (pix / outs.w, pix % outs.w);
                        *inv = img * n_pix as u64 + pix as u64;
                        // Each tile extracts only its own row slice of the
                        // im2col patch (the broadcast input it would receive
                        // in hardware), not the full patch.
                        ops::im2col_patch_range(
                            x,
                            &self.cfg,
                            oh,
                            ow,
                            r0,
                            &mut patch[p * rl..(p + 1) * rl],
                        );
                    }
                    tile.mvm_batch_into_with(
                        &patch[..k * rl],
                        &mut plane[p0 * cl..(p0 + k) * cl],
                        &invocations[..k],
                        mvm,
                    )
                    .expect("programmed dimensions are consistent");
                }
                plane
            },
        );

        let mut y = Tensor::zeros(outs);
        for (&(_, ci), plane) in descs.iter().zip(&planes) {
            let (c0, cl) = self.col_chunks[ci];
            for oh in 0..outs.h {
                for ow in 0..outs.w {
                    let p = oh * outs.w + ow;
                    for k in 0..cl {
                        let oc = c0 + k;
                        let cur = y.get(oc, oh, ow);
                        y.set(oc, oh, ow, cur + plane[p * cl + k]);
                    }
                }
            }
        }
        y
    }

    fn total_mvms(&self) -> u64 {
        self.tiles.iter().flatten().map(|t| t.mvm_count()).sum()
    }
}

/// Graph executor with analog layers on modeled crossbars.
///
/// Inference takes `&self` and the executor is `Sync`: programmed state is
/// immutable between [`AimcExecutor::apply_drift`] calls and all evaluation
/// randomness comes from per-tile, per-invocation streams, so any number of
/// threads may infer concurrently — and produce exactly the logits a serial
/// run would (see the module docs).
///
/// # Examples
/// ```no_run
/// use aimc_dnn::{AimcExecutor, he_init, resnet18_cifar, Shape, Tensor};
/// use aimc_xbar::XbarConfig;
/// let g = resnet18_cifar(10);
/// let w = he_init(&g, 0);
/// let exec = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 1).unwrap();
/// let y = exec.infer(&Tensor::zeros(Shape::new(3, 32, 32)));
/// assert_eq!(y.shape(), Shape::new(10, 1, 1));
/// ```
#[derive(Debug)]
pub struct AimcExecutor {
    graph: Arc<Graph>,
    weights: Arc<Weights>,
    analog: HashMap<usize, AnalogLayer>,
    xbar_cfg: XbarConfig,
    /// Images started so far — the base of each image's invocation
    /// coordinates. Atomic so batches and concurrent callers claim disjoint
    /// coordinate ranges; a serial sequence of `infer` calls and one
    /// `infer_batch` over the same images see identical coordinates.
    images_seen: AtomicU64,
    /// Default thread budget for single-image `infer` (tile-level
    /// parallelism). Batch calls take an explicit setting instead.
    parallelism: Parallelism,
}

impl AimcExecutor {
    /// Programs all analog layers of `graph` onto crossbars.
    ///
    /// # Errors
    /// [`ExecError::MissingWeights`] if a parametric node lacks weights;
    /// [`ExecError::Xbar`] on programming failures (e.g. invalid config).
    pub fn try_program(
        graph: &Graph,
        weights: &Weights,
        xbar_cfg: &XbarConfig,
        seed: u64,
    ) -> Result<Self, ExecError> {
        Self::try_program_shared(
            Arc::new(graph.clone()),
            Arc::new(weights.clone()),
            xbar_cfg,
            seed,
        )
    }

    /// Programs all analog layers onto crossbars, sharing already-owned
    /// graph/weights handles (no deep copy — used by the `aimc-platform`
    /// session, which keeps both behind `Arc`).
    ///
    /// # Errors
    /// Same conditions as [`AimcExecutor::try_program`].
    pub fn try_program_shared(
        graph: Arc<Graph>,
        weights: Arc<Weights>,
        xbar_cfg: &XbarConfig,
        seed: u64,
    ) -> Result<Self, ExecError> {
        Self::try_program_shared_with(graph, weights, xbar_cfg, seed, Parallelism::Serial)
    }

    /// [`AimcExecutor::try_program_shared`] with a thread budget: tiles are
    /// programmed concurrently (each from its own deterministic stream, so
    /// the conductance image is identical to a serial deployment), and the
    /// setting is retained as the executor's default for single-image
    /// inference.
    ///
    /// # Errors
    /// Same conditions as [`AimcExecutor::try_program`].
    pub fn try_program_shared_with(
        graph: Arc<Graph>,
        weights: Arc<Weights>,
        xbar_cfg: &XbarConfig,
        seed: u64,
        par: Parallelism,
    ) -> Result<Self, ExecError> {
        check_weights(&graph, &weights)?;
        let mut analog = HashMap::new();
        for node in graph.nodes() {
            let conv_cfg = match &node.kind {
                LayerKind::Conv(c) => Some(*c),
                LayerKind::Residual {
                    projection: Some(p),
                } => Some(*p),
                LayerKind::Linear {
                    in_features,
                    out_features,
                } => Some(ConvCfg {
                    in_ch: *in_features,
                    out_ch: *out_features,
                    kh: 1,
                    kw: 1,
                    stride: 1,
                    pad: 0,
                    relu: false,
                }),
                _ => None,
            };
            if let Some(cfg) = conv_cfg {
                let w = weights.get(node.id).expect("checked by check_weights");
                let wx = ops::weights_to_xbar_layout(w, &cfg);
                analog.insert(
                    node.id,
                    AnalogLayer::program(cfg, &wx, xbar_cfg, seed, node.id, par)?,
                );
            }
        }
        Ok(AimcExecutor {
            graph,
            weights,
            analog,
            xbar_cfg: xbar_cfg.clone(),
            images_seen: AtomicU64::new(0),
            parallelism: par,
        })
    }

    /// Programs all analog layers of `graph` onto crossbars (legacy
    /// signature over [`AimcExecutor::try_program`]).
    ///
    /// # Errors
    /// Propagates [`XbarError`] from programming (e.g. invalid config).
    ///
    /// # Panics
    /// Panics if a parametric node lacks weights.
    pub fn program(
        graph: &Graph,
        weights: &Weights,
        xbar_cfg: &XbarConfig,
        seed: u64,
    ) -> Result<Self, XbarError> {
        match Self::try_program(graph, weights, xbar_cfg, seed) {
            Ok(exec) => Ok(exec),
            Err(ExecError::Xbar(e)) => Err(e),
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the default thread budget used by single-image
    /// [`AimcExecutor::infer`] calls (tile-level parallelism within each
    /// layer). Never changes results — only wall-clock.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.parallelism = par;
    }

    /// The executor's default thread budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Number of crossbar tiles programmed (row splits × col splits summed
    /// over analog layers) — must agree with the mapper's IMA counts.
    pub fn tile_count(&self) -> usize {
        self.analog
            .values()
            .map(|l| l.tiles.iter().map(|r| r.len()).sum::<usize>())
            .sum()
    }

    /// The crossbar configuration in use.
    pub fn xbar_config(&self) -> &XbarConfig {
        &self.xbar_cfg
    }

    /// Total MVMs evaluated since programming.
    pub fn total_mvms(&self) -> u64 {
        self.analog.values().map(|l| l.total_mvms()).sum()
    }

    /// Applies PCM conductance drift to every programmed tile: `t_hours`
    /// since programming (see [`Crossbar::apply_drift`]). Models inference
    /// long after deployment without re-programming — the scenario
    /// non-volatile AIMC targets.
    pub fn apply_drift(&mut self, t_hours: f64) {
        for layer in self.analog.values_mut() {
            for row in layer.tiles.iter_mut() {
                for tile in row.iter_mut() {
                    tile.apply_drift(t_hours);
                }
            }
        }
    }

    /// Runs one image through the network.
    ///
    /// Claims the next image coordinate from the internal counter, so a
    /// sequence of `try_infer` calls replays exactly as the equivalent
    /// [`AimcExecutor::try_infer_batch`] would.
    ///
    /// # Errors
    /// [`ExecError::ShapeMismatch`] if the input does not match the graph's
    /// input shape.
    pub fn try_infer(&self, input: &Tensor) -> Result<Tensor, ExecError> {
        let img = self.images_seen.fetch_add(1, Ordering::Relaxed);
        let mut scratch = InferScratch::default();
        self.run_image(input, img, &mut scratch, self.parallelism)
    }

    /// Runs a batch of images, parallelizing across images when `par`
    /// allows (each worker keeps one reusable scratch). Bit-identical to
    /// the serial loop for any thread count; a single-image batch falls
    /// back to tile-level parallelism inside each layer.
    ///
    /// An empty batch is a no-op: it returns `Ok(vec![])` without claiming
    /// image coordinates or touching any stream state.
    ///
    /// # Errors
    /// [`ExecError::ShapeMismatch`] on the first (lowest-index) mismatched
    /// input.
    pub fn try_infer_batch(
        &self,
        inputs: &[Tensor],
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let base = self
            .images_seen
            .fetch_add(inputs.len() as u64, Ordering::Relaxed);
        self.try_infer_batch_at(inputs, base, par)
    }

    /// Runs a batch of images at an **explicit** base image coordinate:
    /// image `i` of the batch evaluates at global invocation coordinate
    /// `base_image_index + i`, regardless of what the internal counter
    /// says — the contiguous convenience over
    /// [`AimcExecutor::try_infer_batch_indexed`].
    ///
    /// # Errors
    /// [`ExecError::ShapeMismatch`] on the first (lowest-index) mismatched
    /// input.
    pub fn try_infer_batch_at(
        &self,
        inputs: &[Tensor],
        base_image_index: u64,
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        let items: Vec<(u64, &Tensor)> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| (base_image_index + i as u64, x))
            .collect();
        self.try_infer_batch_indexed(&items, par)
    }

    /// Runs a batch where **every image carries its own explicit global
    /// stream coordinate** — contiguity is not required. This is the entry
    /// point behind the serving fleet's invariance: a router that stamps
    /// each request with its global arrival index can hand any shard any
    /// non-contiguous slice of the stream, and each image still evaluates
    /// at exactly the invocation coordinates a solo single-session run
    /// would use, so the logits are bit-identical replica for replica
    /// (same programming seed ⇒ same conductances ⇒ same noise streams).
    ///
    /// The internal counter is advanced to at least `max(k) + 1` over the
    /// batch's coordinates `k`, so subsequent counter-claiming calls
    /// ([`AimcExecutor::try_infer`] / [`AimcExecutor::try_infer_batch`])
    /// never reuse a coordinate evaluated here. An empty batch is a no-op
    /// and does not touch the counter.
    ///
    /// # Errors
    /// [`ExecError::ShapeMismatch`] on the first (lowest-index) mismatched
    /// item.
    pub fn try_infer_batch_indexed(
        &self,
        items: &[(u64, &Tensor)],
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        let Some(max_coord) = items.iter().map(|&(k, _)| k).max() else {
            return Ok(Vec::new());
        };
        self.images_seen.fetch_max(max_coord + 1, Ordering::Relaxed);
        if items.len() == 1 {
            let (img, x) = items[0];
            let mut scratch = InferScratch::default();
            return Ok(vec![self.run_image(x, img, &mut scratch, par)?]);
        }
        // Image-level parallelism: each image runs serially inside (one
        // scratch per worker), images spread across workers.
        try_map_with(
            par,
            items,
            InferScratch::default,
            |scratch, _, &(img, x)| self.run_image(x, img, scratch, Parallelism::Serial),
        )
    }

    /// Images started so far — equivalently, the next image coordinate a
    /// counter-claiming call would receive.
    pub fn images_seen(&self) -> u64 {
        self.images_seen.load(Ordering::Relaxed)
    }

    /// Atomically claims the next `n` image coordinates, returning the
    /// base of the claimed range. Serving layers claim here and evaluate
    /// via [`AimcExecutor::try_infer_batch_at`]; because the claim is a
    /// single `fetch_add`, concurrent claimers (another handle, an
    /// interleaved counter-claiming infer) can never alias a coordinate —
    /// unlike a read-then-run of [`AimcExecutor::images_seen`].
    pub fn claim_images(&self, n: u64) -> u64 {
        self.images_seen.fetch_add(n, Ordering::Relaxed)
    }

    /// One image at an explicit image coordinate (shared by the serial and
    /// batch paths).
    fn run_image(
        &self,
        input: &Tensor,
        img: u64,
        scratch: &mut InferScratch,
        par: Parallelism,
    ) -> Result<Tensor, ExecError> {
        if input.shape() != self.graph.input_shape() {
            return Err(ExecError::ShapeMismatch {
                expected: self.graph.input_shape(),
                got: input.shape(),
            });
        }
        let mut outs: Vec<Tensor> = Vec::with_capacity(self.graph.len());
        for node in self.graph.nodes() {
            let fetch = |slot: usize, outs: &[Tensor]| -> Tensor {
                match node.inputs.get(slot) {
                    Some(&p) => outs[p].clone(),
                    None => input.clone(),
                }
            };
            let id = node.id;
            let y = match &node.kind {
                LayerKind::Input => input.clone(),
                LayerKind::Conv(_) => {
                    let x = fetch(0, &outs);
                    self.analog
                        .get(&id)
                        .expect("analog layer programmed")
                        .conv(&x, img, scratch, par)
                }
                LayerKind::DepthwiseConv(cfg) => {
                    // Depthwise runs digitally on the CORES (block-diagonal
                    // weights waste crossbar cells).
                    let w = self
                        .weights
                        .get(id)
                        .unwrap_or_else(|| panic!("missing weights for node {id}"));
                    ops::depthwise_conv2d(&fetch(0, &outs), w, cfg)
                }
                LayerKind::MaxPool { k, stride, pad } => {
                    ops::maxpool2d(&fetch(0, &outs), *k, *stride, *pad)
                }
                LayerKind::GlobalAvgPool => ops::global_avgpool(&fetch(0, &outs)),
                LayerKind::Linear { out_features, .. } => {
                    let x = fetch(0, &outs);
                    let flat = Tensor::from_vec(Shape::new(x.shape().numel(), 1, 1), x.into_vec());
                    let y = self
                        .analog
                        .get(&id)
                        .expect("analog layer programmed")
                        .conv(&flat, img, scratch, par);
                    Tensor::from_vec(Shape::new(*out_features, 1, 1), y.into_vec())
                }
                LayerKind::Residual { projection } => {
                    let main = fetch(0, &outs);
                    let skip = fetch(1, &outs);
                    let skip = match projection {
                        Some(_) => self
                            .analog
                            .get(&id)
                            .expect("projection programmed")
                            .conv(&skip, img, scratch, par),
                        None => skip,
                    };
                    ops::add(&main, &skip, true)
                }
            };
            outs.push(y);
        }
        Ok(outs.pop().expect("non-empty graph"))
    }

    /// Runs one image through the network (panicking convenience over
    /// [`AimcExecutor::try_infer`]).
    ///
    /// # Panics
    /// Panics if the input shape does not match the graph.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.try_infer(input).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Executor for AimcExecutor {
    fn infer(&self, input: &Tensor) -> Result<Tensor, ExecError> {
        self.try_infer(input)
    }

    fn infer_batch(&self, inputs: &[Tensor], par: Parallelism) -> Result<Vec<Tensor>, ExecError> {
        self.try_infer_batch(inputs, par)
    }

    fn infer_batch_indexed(
        &self,
        items: &[(u64, &Tensor)],
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        self.try_infer_batch_indexed(items, par)
    }

    fn infer_batch_at(
        &self,
        inputs: &[Tensor],
        base_image_index: u64,
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        self.try_infer_batch_at(inputs, base_image_index, par)
    }

    fn images_seen(&self) -> u64 {
        AimcExecutor::images_seen(self)
    }

    fn backend_name(&self) -> &'static str {
        "analog"
    }

    fn tile_count(&self) -> usize {
        AimcExecutor::tile_count(self)
    }

    fn total_mvms(&self) -> u64 {
        AimcExecutor::total_mvms(self)
    }

    fn apply_drift(&mut self, t_hours: f64) -> bool {
        AimcExecutor::apply_drift(self, t_hours);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::infer_golden;
    use crate::graph::GraphBuilder;
    use crate::weights::he_init;
    use rand::Rng;

    fn small_cnn() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
        let r = b.residual("r", c1, c0, None);
        let p = b.global_avgpool("gap", r);
        let _ = b.linear("fc", p, 4);
        b.finish()
    }

    fn random_image(shape: Shape, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.numel())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        )
    }

    #[test]
    fn ceil_split_covers_exactly() {
        // The canonical helper shared with `aimc_core::SplitPlan`.
        assert_eq!(ceil_split(576, 256), vec![(0, 192), (192, 192), (384, 192)]);
        assert_eq!(ceil_split(256, 256), vec![(0, 256)]);
        assert_eq!(ceil_split(512, 256), vec![(0, 256), (256, 256)]);
        assert_eq!(ceil_split(5, 2), vec![(0, 2), (2, 2), (4, 1)]);
        // Chunks tile the range with no gaps.
        for (total, max) in [(1000, 256), (77, 10), (1, 5)] {
            let chunks = ceil_split(total, max);
            let mut pos = 0;
            for (s, l) in chunks {
                assert_eq!(s, pos);
                assert!(l <= max);
                pos += l;
            }
            assert_eq!(pos, total);
        }
    }

    #[test]
    fn try_program_reports_missing_weights() {
        let g = small_cnn();
        let err = AimcExecutor::try_program(&g, &Weights::new(), &XbarConfig::ideal(32, 32), 1)
            .unwrap_err();
        assert!(matches!(err, ExecError::MissingWeights { .. }));
    }

    #[test]
    fn try_infer_reports_shape_mismatch() {
        let g = small_cnn();
        let w = he_init(&g, 0);
        let e = AimcExecutor::try_program(&g, &w, &XbarConfig::ideal(64, 64), 1).unwrap();
        let err = e
            .try_infer(&Tensor::zeros(Shape::new(3, 4, 4)))
            .unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { .. }));
    }

    #[test]
    fn ideal_analog_matches_golden() {
        let g = small_cnn();
        let w = he_init(&g, 3);
        let x = random_image(g.input_shape(), 7);
        let golden = infer_golden(&g, &w, &x);
        let exec = AimcExecutor::program(&g, &w, &XbarConfig::ideal(256, 256), 1).unwrap();
        let analog = exec.infer(&x);
        for (a, b) in analog.data().iter().zip(golden.data()) {
            let tol = 0.05 * b.abs().max(1.0);
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn row_splits_are_exercised_by_small_arrays() {
        let g = small_cnn();
        let w = he_init(&g, 3);
        // 8-channel 3x3 conv ⇒ 72 rows; a 32-row array forces 3 row splits.
        // c0: 27 rows→1 tile; c1: 72 rows→3 tiles; fc: 1 tile ⇒ 5 tiles.
        let cfg = XbarConfig::ideal(32, 16);
        let exec = AimcExecutor::program(&g, &w, &cfg, 1).unwrap();
        assert_eq!(exec.tile_count(), 5);
        let x = random_image(g.input_shape(), 7);
        let golden = infer_golden(&g, &w, &x);
        let analog = exec.infer(&x);
        for (a, b) in analog.data().iter().zip(golden.data()) {
            let tol = 0.08 * b.abs().max(1.0);
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
        assert!(exec.total_mvms() > 0);
    }

    #[test]
    fn noisy_arrays_still_classify_like_golden() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let exec = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 2).unwrap();
        let mut agree = 0;
        let n = 10;
        for i in 0..n {
            let x = random_image(g.input_shape(), 100 + i);
            let golden = infer_golden(&g, &w, &x);
            let analog = exec.infer(&x);
            if golden.argmax() == analog.argmax() {
                agree += 1;
            }
        }
        // Device noise may flip borderline decisions, but most must agree.
        assert!(agree >= n * 6 / 10, "only {agree}/{n} agreed");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let x = random_image(g.input_shape(), 3);
        let run = || {
            let e = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 9).unwrap();
            e.infer(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tile_count_matches_split_arithmetic() {
        let g = small_cnn();
        let w = he_init(&g, 0);
        let cfg = XbarConfig::ideal(32, 4);
        let exec = AimcExecutor::program(&g, &w, &cfg, 1).unwrap();
        // c0: rows 27→1 split, cols 8→2; c1: rows 72→3, cols 8→2;
        // fc: rows 8→1, cols 4→1. Total tiles = 2 + 6 + 1 = 9.
        assert_eq!(exec.tile_count(), 9);
    }

    /// The tentpole invariant at the executor level: thread count never
    /// changes a bit of the output, for programming, tile-level, and
    /// image-level parallelism alike.
    #[test]
    fn parallel_inference_is_bit_identical_to_serial() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        // Small arrays force multiple tiles per layer (tile parallelism).
        let cfg = XbarConfig::hermes_256().with_size(32, 4);
        let images: Vec<Tensor> = (0..6)
            .map(|i| random_image(g.input_shape(), 40 + i))
            .collect();

        let serial_exec = AimcExecutor::try_program(&g, &w, &cfg, 9).unwrap();
        let serial = serial_exec
            .try_infer_batch(&images, Parallelism::Serial)
            .unwrap();

        for n in [2, 4] {
            let par = Parallelism::Threads(n);
            let exec = AimcExecutor::try_program_shared_with(
                Arc::new(g.clone()),
                Arc::new(w.clone()),
                &cfg,
                9,
                par,
            )
            .unwrap();
            let threaded = exec.try_infer_batch(&images, par).unwrap();
            assert_eq!(serial, threaded, "Threads({n}) diverged from serial");
            // Same MVMs evaluated, none lost or duplicated.
            assert_eq!(serial_exec.total_mvms(), exec.total_mvms());
        }
    }

    /// Single-image batches take the tile-parallel path; it must match the
    /// serial path bit-for-bit too.
    #[test]
    fn tile_parallel_single_image_matches_serial() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let cfg = XbarConfig::hermes_256().with_size(32, 4);
        let x = random_image(g.input_shape(), 3);
        let a = AimcExecutor::try_program(&g, &w, &cfg, 7).unwrap();
        let serial = a
            .try_infer_batch(std::slice::from_ref(&x), Parallelism::Serial)
            .unwrap();
        let b = AimcExecutor::try_program(&g, &w, &cfg, 7).unwrap();
        let tiled = b
            .try_infer_batch(std::slice::from_ref(&x), Parallelism::Threads(4))
            .unwrap();
        assert_eq!(serial, tiled);
    }

    /// Repeated single-image calls and one batch claim the same image
    /// coordinates — the counter semantics behind retained crossbars.
    #[test]
    fn sequential_infers_match_one_batch() {
        let g = small_cnn();
        let w = he_init(&g, 2);
        let cfg = XbarConfig::hermes_256();
        let images: Vec<Tensor> = (0..3)
            .map(|i| random_image(g.input_shape(), 60 + i))
            .collect();
        let a = AimcExecutor::try_program(&g, &w, &cfg, 5).unwrap();
        let one_by_one: Vec<Tensor> = images.iter().map(|x| a.try_infer(x).unwrap()).collect();
        let b = AimcExecutor::try_program(&g, &w, &cfg, 5).unwrap();
        let batched = b.try_infer_batch(&images, Parallelism::Threads(3)).unwrap();
        assert_eq!(one_by_one, batched);
    }

    #[test]
    fn executor_is_sync_and_send() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<AimcExecutor>();
    }

    /// Regression for the empty-batch edge: no coordinates may be claimed
    /// and no stream state touched, so the surrounding stream replays
    /// exactly as if the empty call never happened.
    #[test]
    fn empty_batch_is_a_stream_no_op() {
        let g = small_cnn();
        let w = he_init(&g, 2);
        let cfg = XbarConfig::hermes_256();
        let images: Vec<Tensor> = (0..2)
            .map(|i| random_image(g.input_shape(), 80 + i))
            .collect();

        let a = AimcExecutor::try_program(&g, &w, &cfg, 5).unwrap();
        let first = a.try_infer(&images[0]).unwrap();
        assert_eq!(a.images_seen(), 1);
        assert_eq!(a.try_infer_batch(&[], Parallelism::Threads(4)).unwrap(), []);
        assert_eq!(
            a.try_infer_batch_at(&[], 99, Parallelism::Serial).unwrap(),
            []
        );
        assert_eq!(a.images_seen(), 1, "empty batch must not claim coordinates");
        let second = a.try_infer(&images[1]).unwrap();

        // Reference stream without the interleaved empty calls.
        let b = AimcExecutor::try_program(&g, &w, &cfg, 5).unwrap();
        assert_eq!(b.try_infer(&images[0]).unwrap(), first);
        assert_eq!(b.try_infer(&images[1]).unwrap(), second);
        let mvms = a.total_mvms();
        assert_eq!(mvms, b.total_mvms(), "empty batches must not evaluate MVMs");
    }

    /// The tentpole invariant at the executor level: chopping a request
    /// stream into arbitrary micro-batches via `try_infer_batch_at` yields
    /// bit-identical logits to solo inference of the same stream.
    #[test]
    fn explicit_coordinates_are_chop_invariant() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let cfg = XbarConfig::hermes_256().with_size(32, 4);
        let images: Vec<Tensor> = (0..6)
            .map(|i| random_image(g.input_shape(), 90 + i))
            .collect();

        let solo_exec = AimcExecutor::try_program(&g, &w, &cfg, 11).unwrap();
        let solo: Vec<Tensor> = images
            .iter()
            .map(|x| solo_exec.try_infer(x).unwrap())
            .collect();

        for chop in [
            vec![1, 1, 1, 1, 1, 1],
            vec![2, 2, 2],
            vec![3, 3],
            vec![6],
            vec![1, 4, 1],
        ] {
            let exec = AimcExecutor::try_program(&g, &w, &cfg, 11).unwrap();
            let mut got = Vec::new();
            let mut base = 0u64;
            for len in chop.iter().copied() {
                let batch = &images[base as usize..base as usize + len];
                got.extend(
                    exec.try_infer_batch_at(batch, base, Parallelism::Threads(2))
                        .unwrap(),
                );
                base += len as u64;
            }
            assert_eq!(solo, got, "chopping {chop:?} diverged from solo");
            assert_eq!(exec.images_seen(), images.len() as u64);
        }
    }

    /// The generalized invariant behind the serving fleet: a batch of
    /// **non-contiguous, arbitrarily ordered** explicit coordinates yields,
    /// image for image, exactly the logits a solo stream produces at those
    /// coordinates — on a separately programmed replica with the same seed.
    #[test]
    fn non_contiguous_indexed_batches_match_solo_coordinates() {
        let g = small_cnn();
        let w = he_init(&g, 5);
        let cfg = XbarConfig::hermes_256().with_size(32, 4);
        let images: Vec<Tensor> = (0..6)
            .map(|i| random_image(g.input_shape(), 120 + i))
            .collect();

        // Solo reference: image i evaluated at coordinate i.
        let solo_exec = AimcExecutor::try_program(&g, &w, &cfg, 13).unwrap();
        let solo: Vec<Tensor> = images
            .iter()
            .map(|x| solo_exec.try_infer(x).unwrap())
            .collect();

        // A replica (same seed) evaluates interleaved non-contiguous slices
        // of the stream, out of order within each batch.
        let replica = AimcExecutor::try_program(&g, &w, &cfg, 13).unwrap();
        let slice_a: Vec<(u64, &Tensor)> = vec![(4, &images[4]), (0, &images[0]), (2, &images[2])];
        let slice_b: Vec<(u64, &Tensor)> = vec![(5, &images[5]), (1, &images[1]), (3, &images[3])];
        let got_a = replica
            .try_infer_batch_indexed(&slice_a, Parallelism::Threads(2))
            .unwrap();
        let got_b = replica
            .try_infer_batch_indexed(&slice_b, Parallelism::Serial)
            .unwrap();
        assert_eq!(got_a[0], solo[4]);
        assert_eq!(got_a[1], solo[0]);
        assert_eq!(got_a[2], solo[2]);
        assert_eq!(got_b[0], solo[5]);
        assert_eq!(got_b[1], solo[1]);
        assert_eq!(got_b[2], solo[3]);
        // Counter advanced past the highest coordinate seen, not the count.
        assert_eq!(replica.images_seen(), 6);
    }

    /// Indexed batches advance the counter by max coordinate, and an empty
    /// indexed batch is a stream no-op.
    #[test]
    fn indexed_counter_tracks_max_coordinate() {
        let g = small_cnn();
        let w = he_init(&g, 1);
        let cfg = XbarConfig::hermes_256();
        let x = random_image(g.input_shape(), 71);
        let exec = AimcExecutor::try_program(&g, &w, &cfg, 3).unwrap();
        assert_eq!(
            exec.try_infer_batch_indexed(&[], Parallelism::Serial)
                .unwrap(),
            []
        );
        assert_eq!(exec.images_seen(), 0);
        exec.try_infer_batch_indexed(&[(7, &x), (2, &x)], Parallelism::Serial)
            .unwrap();
        assert_eq!(exec.images_seen(), 8);
        // A later batch of lower coordinates never winds the counter back.
        exec.try_infer_batch_indexed(&[(0, &x)], Parallelism::Serial)
            .unwrap();
        assert_eq!(exec.images_seen(), 8);
    }

    /// `infer_batch_at` advances the counter past the batch, so later
    /// counter-claiming calls never reuse coordinates.
    #[test]
    fn explicit_base_advances_the_counter() {
        let g = small_cnn();
        let w = he_init(&g, 1);
        let cfg = XbarConfig::hermes_256();
        let x = random_image(g.input_shape(), 70);
        let exec = AimcExecutor::try_program(&g, &w, &cfg, 3).unwrap();
        exec.try_infer_batch_at(std::slice::from_ref(&x), 4, Parallelism::Serial)
            .unwrap();
        assert_eq!(exec.images_seen(), 5);
        // A lower explicit base never winds the counter back.
        exec.try_infer_batch_at(std::slice::from_ref(&x), 0, Parallelism::Serial)
            .unwrap();
        assert_eq!(exec.images_seen(), 5);
        let claimed = exec.try_infer(&x);
        assert!(claimed.is_ok());
        assert_eq!(exec.images_seen(), 6);
    }
}
