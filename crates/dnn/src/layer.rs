//! Layer definitions with shape inference and MAC/parameter accounting.
//!
//! These are the analytic quantities the mapping compiler in `aimc-core`
//! consumes: every cluster-count in Sec. V of the paper derives from
//! `params()` (how many crossbars a layer needs) and every latency estimate
//! from `macs()` / output geometry.

use crate::tensor::Shape;
use core::fmt;

/// Configuration of a 2-D convolution.
///
/// # Examples
/// ```
/// use aimc_dnn::{ConvCfg, Shape};
/// // The paper's Layer 20/21/23/24 class: 3x3, 512→512.
/// let cfg = ConvCfg::k3(512, 512, 1);
/// assert_eq!(cfg.params(), 2_359_296); // "2.3M parameters" (Sec. V-1)
/// assert_eq!(cfg.out_shape(Shape::new(512, 8, 8)), Shape::new(512, 8, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvCfg {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Fused ReLU on the output.
    pub relu: bool,
}

impl ConvCfg {
    /// A 3×3 convolution with padding 1 (the ResNet workhorse).
    pub const fn k3(in_ch: usize, out_ch: usize, stride: usize) -> Self {
        ConvCfg {
            in_ch,
            out_ch,
            kh: 3,
            kw: 3,
            stride,
            pad: 1,
            relu: true,
        }
    }

    /// A 1×1 projection convolution (residual downsample path).
    pub const fn k1(in_ch: usize, out_ch: usize, stride: usize) -> Self {
        ConvCfg {
            in_ch,
            out_ch,
            kh: 1,
            kw: 1,
            stride,
            pad: 0,
            relu: false,
        }
    }

    /// Output shape for a given input shape.
    ///
    /// # Panics
    /// Panics if the input channel count disagrees with the configuration.
    pub fn out_shape(&self, input: Shape) -> Shape {
        assert_eq!(input.c, self.in_ch, "input channels mismatch");
        let h = (input.h + 2 * self.pad - self.kh) / self.stride + 1;
        let w = (input.w + 2 * self.pad - self.kw) / self.stride + 1;
        Shape::new(self.out_ch, h, w)
    }

    /// Weight parameter count (no bias; batch-norm is folded).
    pub const fn params(&self) -> usize {
        self.in_ch * self.out_ch * self.kh * self.kw
    }

    /// Rows the layer occupies on a crossbar: `Cin · Kx · Ky` (Sec. V-1).
    pub const fn xbar_rows(&self) -> usize {
        self.in_ch * self.kh * self.kw
    }

    /// Columns the layer occupies on a crossbar: `Cout` (Sec. V-1).
    pub const fn xbar_cols(&self) -> usize {
        self.out_ch
    }

    /// Multiply-accumulate count for a given input shape.
    pub fn macs(&self, input: Shape) -> u64 {
        let out = self.out_shape(input);
        (out.numel() as u64) * (self.in_ch * self.kh * self.kw) as u64
    }

    /// Matrix-vector products needed per image: one per output pixel
    /// (per row/column split — splits are the mapper's concern).
    pub fn mvms_per_image(&self, input: Shape) -> u64 {
        let out = self.out_shape(input);
        (out.h * out.w) as u64
    }
}

/// The operator of a graph node.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// The network input placeholder.
    Input,
    /// 2-D convolution (+ optional fused ReLU), executed on the IMA.
    Conv(ConvCfg),
    /// Depthwise 2-D convolution (`groups == channels`, `in_ch == out_ch`).
    /// Executed digitally on the CORES: a depthwise layer's weight matrix is
    /// block-diagonal, so a crossbar deployment would occupy `C·K²` rows for
    /// `K²` useful cells per column — the per-channel MAC loop on the DSP
    /// cores is the efficient home (cf. the MobileNetV2 discussion in the
    /// paper's related work).
    DepthwiseConv(ConvCfg),
    /// Max pooling, executed digitally on the CORES.
    MaxPool {
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Global average pooling to 1×1, executed digitally.
    GlobalAvgPool,
    /// Fully connected layer, executed on the IMA.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Residual addition `main + skip` (+ ReLU); the optional projection is
    /// the 1×1 strided convolution applied to the skip path at stage
    /// boundaries. The add runs on the CORES; the projection on the IMA.
    Residual {
        /// Projection conv on the skip input, if the shapes differ.
        projection: Option<ConvCfg>,
    },
}

impl LayerKind {
    /// Short operator mnemonic matching Fig. 2A's labels.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Input => "in",
            LayerKind::Conv(_) => "conv",
            LayerKind::DepthwiseConv(_) => "dwconv",
            LayerKind::MaxPool { .. } => "pool",
            LayerKind::GlobalAvgPool => "pool",
            LayerKind::Linear { .. } => "FC",
            LayerKind::Residual { .. } => "res",
        }
    }

    /// Whether the layer's main computation runs in the analog domain.
    pub fn is_analog(&self) -> bool {
        matches!(self, LayerKind::Conv(_) | LayerKind::Linear { .. })
            || matches!(
                self,
                LayerKind::Residual {
                    projection: Some(_)
                }
            )
    }

    /// Parameter count of the node.
    pub fn params(&self) -> usize {
        match self {
            LayerKind::Conv(c) => c.params(),
            // One K×K filter per channel.
            LayerKind::DepthwiseConv(c) => c.out_ch * c.kh * c.kw,
            LayerKind::Linear {
                in_features,
                out_features,
            } => in_features * out_features,
            LayerKind::Residual {
                projection: Some(p),
            } => p.params(),
            _ => 0,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Input => write!(f, "input"),
            LayerKind::Conv(c) => write!(
                f,
                "conv {}x{} {}→{} s{}",
                c.kh, c.kw, c.in_ch, c.out_ch, c.stride
            ),
            LayerKind::DepthwiseConv(c) => {
                write!(f, "dwconv {}x{} c{} s{}", c.kh, c.kw, c.out_ch, c.stride)
            }
            LayerKind::MaxPool { k, stride, .. } => write!(f, "maxpool {k}x{k} s{stride}"),
            LayerKind::GlobalAvgPool => write!(f, "global avgpool"),
            LayerKind::Linear {
                in_features,
                out_features,
            } => write!(f, "fc {in_features}→{out_features}"),
            LayerKind::Residual { projection } => match projection {
                Some(p) => write!(f, "residual (+proj {}→{} s{})", p.in_ch, p.out_ch, p.stride),
                None => write!(f, "residual"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let c = ConvCfg::k3(64, 64, 1);
        assert_eq!(c.out_shape(Shape::new(64, 64, 64)), Shape::new(64, 64, 64));
        let s2 = ConvCfg::k3(64, 128, 2);
        assert_eq!(
            s2.out_shape(Shape::new(64, 64, 64)),
            Shape::new(128, 32, 32)
        );
        let first = ConvCfg {
            in_ch: 3,
            out_ch: 64,
            kh: 7,
            kw: 7,
            stride: 2,
            pad: 3,
            relu: true,
        };
        assert_eq!(
            first.out_shape(Shape::new(3, 256, 256)),
            Shape::new(64, 128, 128)
        );
    }

    #[test]
    fn conv_params_and_xbar_geometry() {
        let c = ConvCfg::k3(512, 512, 1);
        assert_eq!(c.params(), 512 * 512 * 9);
        assert_eq!(c.xbar_rows(), 4608);
        assert_eq!(c.xbar_cols(), 512);
        let p = ConvCfg::k1(64, 128, 2);
        assert_eq!(p.params(), 8192);
        assert_eq!(p.xbar_rows(), 64);
    }

    #[test]
    fn conv_macs_and_mvms() {
        let c = ConvCfg::k3(64, 64, 1);
        let input = Shape::new(64, 64, 64);
        assert_eq!(c.macs(input), 64 * 64 * 64 * 576);
        assert_eq!(c.mvms_per_image(input), 64 * 64);
    }

    #[test]
    #[should_panic(expected = "channels mismatch")]
    fn conv_rejects_wrong_channels() {
        ConvCfg::k3(64, 64, 1).out_shape(Shape::new(32, 8, 8));
    }

    #[test]
    fn kind_classification() {
        assert!(LayerKind::Conv(ConvCfg::k3(8, 8, 1)).is_analog());
        assert!(LayerKind::Linear {
            in_features: 512,
            out_features: 1000
        }
        .is_analog());
        assert!(!LayerKind::MaxPool {
            k: 3,
            stride: 2,
            pad: 1
        }
        .is_analog());
        assert!(!LayerKind::Residual { projection: None }.is_analog());
        assert!(LayerKind::Residual {
            projection: Some(ConvCfg::k1(64, 128, 2))
        }
        .is_analog());
    }

    #[test]
    fn params_accounting() {
        assert_eq!(
            LayerKind::Linear {
                in_features: 512,
                out_features: 1000
            }
            .params(),
            512_000
        );
        assert_eq!(LayerKind::Residual { projection: None }.params(), 0);
        assert_eq!(LayerKind::Input.params(), 0);
    }

    #[test]
    fn mnemonics_match_fig2a() {
        assert_eq!(LayerKind::Conv(ConvCfg::k3(8, 8, 1)).mnemonic(), "conv");
        assert_eq!(
            LayerKind::MaxPool {
                k: 3,
                stride: 2,
                pad: 1
            }
            .mnemonic(),
            "pool"
        );
        assert_eq!(LayerKind::Residual { projection: None }.mnemonic(), "res");
        assert_eq!(
            LayerKind::Linear {
                in_features: 1,
                out_features: 1
            }
            .mnemonic(),
            "FC"
        );
    }

    #[test]
    fn display_is_nonempty() {
        for k in [
            LayerKind::Input,
            LayerKind::Conv(ConvCfg::k3(4, 4, 1)),
            LayerKind::GlobalAvgPool,
            LayerKind::Residual { projection: None },
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}
