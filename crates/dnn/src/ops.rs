//! Reference (golden) floating-point implementations of every operator.
//!
//! These are the ground truth against which the analog executor is checked.
//! Weight layout for convolutions is `[out_ch][in_ch][kh][kw]` (row-major);
//! for linear layers `[out_features][in_features]`.

use crate::layer::ConvCfg;
use crate::tensor::{Shape, Tensor};

/// 2-D convolution with zero padding and optional fused ReLU.
///
/// # Panics
/// Panics if shapes or weight length are inconsistent.
pub fn conv2d(x: &Tensor, weights: &[f32], cfg: &ConvCfg) -> Tensor {
    let ins = x.shape();
    assert_eq!(ins.c, cfg.in_ch, "input channel mismatch");
    assert_eq!(weights.len(), cfg.params(), "weight buffer length mismatch");
    let outs = cfg.out_shape(ins);
    let mut y = Tensor::zeros(outs);

    let kh = cfg.kh as isize;
    let kw = cfg.kw as isize;
    let pad = cfg.pad as isize;
    let stride = cfg.stride as isize;

    for oc in 0..outs.c {
        let w_oc =
            &weights[oc * cfg.in_ch * cfg.kh * cfg.kw..(oc + 1) * cfg.in_ch * cfg.kh * cfg.kw];
        for oh in 0..outs.h {
            for ow in 0..outs.w {
                let mut acc = 0.0f32;
                let ih0 = oh as isize * stride - pad;
                let iw0 = ow as isize * stride - pad;
                for ic in 0..ins.c {
                    let w_ic = &w_oc[ic * cfg.kh * cfg.kw..(ic + 1) * cfg.kh * cfg.kw];
                    for r in 0..kh {
                        let ih = ih0 + r;
                        if ih < 0 || ih >= ins.h as isize {
                            continue;
                        }
                        for s in 0..kw {
                            let iw = iw0 + s;
                            if iw < 0 || iw >= ins.w as isize {
                                continue;
                            }
                            acc +=
                                w_ic[(r * kw + s) as usize] * x.get(ic, ih as usize, iw as usize);
                        }
                    }
                }
                if cfg.relu && acc < 0.0 {
                    acc = 0.0;
                }
                y.set(oc, oh, ow, acc);
            }
        }
    }
    y
}

/// Depthwise 2-D convolution: channel `c` of the output convolves channel
/// `c` of the input with its own `kh × kw` filter. Weight layout:
/// `[channel][kh][kw]`.
///
/// # Panics
/// Panics if `cfg.in_ch != cfg.out_ch` or buffer lengths are inconsistent.
pub fn depthwise_conv2d(x: &Tensor, weights: &[f32], cfg: &ConvCfg) -> Tensor {
    let ins = x.shape();
    assert_eq!(cfg.in_ch, cfg.out_ch, "depthwise preserves channels");
    assert_eq!(ins.c, cfg.in_ch, "input channel mismatch");
    assert_eq!(weights.len(), cfg.out_ch * cfg.kh * cfg.kw, "weight length");
    let outs = cfg.out_shape(ins);
    let mut y = Tensor::zeros(outs);
    let pad = cfg.pad as isize;
    for c in 0..outs.c {
        let w_c = &weights[c * cfg.kh * cfg.kw..(c + 1) * cfg.kh * cfg.kw];
        for oh in 0..outs.h {
            for ow in 0..outs.w {
                let mut acc = 0.0f32;
                for r in 0..cfg.kh {
                    let ih = (oh * cfg.stride + r) as isize - pad;
                    if ih < 0 || ih >= ins.h as isize {
                        continue;
                    }
                    for scol in 0..cfg.kw {
                        let iw = (ow * cfg.stride + scol) as isize - pad;
                        if iw < 0 || iw >= ins.w as isize {
                            continue;
                        }
                        acc += w_c[r * cfg.kw + scol] * x.get(c, ih as usize, iw as usize);
                    }
                }
                if cfg.relu && acc < 0.0 {
                    acc = 0.0;
                }
                y.set(c, oh, ow, acc);
            }
        }
    }
    y
}

/// Max pooling with zero padding (padded positions never win: they compare
/// as `-inf`).
pub fn maxpool2d(x: &Tensor, k: usize, stride: usize, pad: usize) -> Tensor {
    let ins = x.shape();
    let oh = (ins.h + 2 * pad - k) / stride + 1;
    let ow = (ins.w + 2 * pad - k) / stride + 1;
    let mut y = Tensor::zeros(Shape::new(ins.c, oh, ow));
    for c in 0..ins.c {
        for i in 0..oh {
            for j in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for r in 0..k {
                    for s in 0..k {
                        let ih = (i * stride + r) as isize - pad as isize;
                        let iw = (j * stride + s) as isize - pad as isize;
                        if ih < 0 || iw < 0 || ih >= ins.h as isize || iw >= ins.w as isize {
                            continue;
                        }
                        best = best.max(x.get(c, ih as usize, iw as usize));
                    }
                }
                y.set(c, i, j, best);
            }
        }
    }
    y
}

/// Global average pooling to `C×1×1`.
pub fn global_avgpool(x: &Tensor) -> Tensor {
    let ins = x.shape();
    let mut y = Tensor::zeros(Shape::new(ins.c, 1, 1));
    let denom = (ins.h * ins.w) as f32;
    for c in 0..ins.c {
        let mut acc = 0.0f32;
        for h in 0..ins.h {
            for w in 0..ins.w {
                acc += x.get(c, h, w);
            }
        }
        y.set(c, 0, 0, acc / denom);
    }
    y
}

/// Fully connected layer over the flattened input.
///
/// # Panics
/// Panics if `weights.len() != out_features * x.numel()`.
pub fn linear(x: &Tensor, weights: &[f32], out_features: usize) -> Tensor {
    let in_features = x.shape().numel();
    assert_eq!(weights.len(), out_features * in_features, "weight length");
    let xd = x.data();
    let mut y = Tensor::zeros(Shape::new(out_features, 1, 1));
    for o in 0..out_features {
        let row = &weights[o * in_features..(o + 1) * in_features];
        let mut acc = 0.0f32;
        for (a, b) in row.iter().zip(xd) {
            acc += a * b;
        }
        y.set(o, 0, 0, acc);
    }
    y
}

/// Element-wise `a + b` with optional ReLU (the residual join).
///
/// # Panics
/// Panics on shape mismatch.
pub fn add(a: &Tensor, b: &Tensor, relu: bool) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "residual shapes must match");
    let mut out = a.clone();
    for (o, &bv) in out.data_mut().iter_mut().zip(b.data()) {
        *o += bv;
        if relu && *o < 0.0 {
            *o = 0.0;
        }
    }
    out
}

/// In-place ReLU.
pub fn relu_inplace(x: &mut Tensor) {
    for v in x.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Extracts the im2col patch for output pixel `(oh, ow)` into `out`, using
/// the crossbar row ordering `row = (ic·kh + r)·kw + s` — the same layout
/// [`crate::AimcExecutor`] programs weights with.
pub fn im2col_patch(x: &Tensor, cfg: &ConvCfg, oh: usize, ow: usize, out: &mut [f32]) {
    let ins = x.shape();
    debug_assert_eq!(out.len(), cfg.xbar_rows());
    let ih0 = (oh * cfg.stride) as isize - cfg.pad as isize;
    let iw0 = (ow * cfg.stride) as isize - cfg.pad as isize;
    let mut idx = 0;
    for ic in 0..cfg.in_ch {
        for r in 0..cfg.kh {
            let ih = ih0 + r as isize;
            for s in 0..cfg.kw {
                let iw = iw0 + s as isize;
                out[idx] = if ih < 0 || iw < 0 || ih >= ins.h as isize || iw >= ins.w as isize {
                    0.0
                } else {
                    x.get(ic, ih as usize, iw as usize)
                };
                idx += 1;
            }
        }
    }
}

/// Like [`im2col_patch`] but extracting only crossbar rows
/// `r0 .. r0 + out.len()` — exactly the slice a row-split tile consumes, so
/// the tile-parallel executor never builds patch elements it will not read.
pub fn im2col_patch_range(
    x: &Tensor,
    cfg: &ConvCfg,
    oh: usize,
    ow: usize,
    r0: usize,
    out: &mut [f32],
) {
    let ins = x.shape();
    debug_assert!(r0 + out.len() <= cfg.xbar_rows());
    let ih0 = (oh * cfg.stride) as isize - cfg.pad as isize;
    let iw0 = (ow * cfg.stride) as isize - cfg.pad as isize;
    // Decompose the first row index once, then step through (ic, r, s).
    let k = cfg.kh * cfg.kw;
    let mut ic = r0 / k;
    let mut r = (r0 % k) / cfg.kw;
    let mut s = r0 % cfg.kw;
    for o in out.iter_mut() {
        let ih = ih0 + r as isize;
        let iw = iw0 + s as isize;
        *o = if ih < 0 || iw < 0 || ih >= ins.h as isize || iw >= ins.w as isize {
            0.0
        } else {
            x.get(ic, ih as usize, iw as usize)
        };
        s += 1;
        if s == cfg.kw {
            s = 0;
            r += 1;
            if r == cfg.kh {
                r = 0;
                ic += 1;
            }
        }
    }
}

/// The paper's balanced ceil-split: divides `total` into
/// `ceil(total / max)` contiguous chunks whose sizes differ by at most one,
/// returned as `(start, len)` pairs (Sec. V-1).
///
/// This is the one canonical splitting rule shared by the functional
/// analog executor ([`crate::AimcExecutor`], tile geometry) and the mapping
/// compiler (`aimc_core::SplitPlan`, cluster counts) — the two must agree
/// or the mapper's IMA counts would diverge from the programmed tiles.
///
/// # Panics
/// Panics if `total` or `max` is zero.
///
/// # Examples
/// ```
/// use aimc_dnn::ceil_split;
/// assert_eq!(ceil_split(576, 256), vec![(0, 192), (192, 192), (384, 192)]);
/// assert_eq!(ceil_split(256, 256), vec![(0, 256)]);
/// ```
pub fn ceil_split(total: usize, max: usize) -> Vec<(usize, usize)> {
    assert!(total > 0, "cannot split an empty dimension");
    assert!(max > 0, "cannot split onto zero-size chunks");
    let n = total.div_ceil(max);
    let base = total / n;
    let rem = total % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let len = base + usize::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// Reorders conv weights `[oc][ic][kh][kw]` into the crossbar layout
/// `[rows = ic·kh·kw][cols = oc]` (row-major).
pub fn weights_to_xbar_layout(weights: &[f32], cfg: &ConvCfg) -> Vec<f32> {
    let rows = cfg.xbar_rows();
    let cols = cfg.xbar_cols();
    assert_eq!(weights.len(), rows * cols, "weight length");
    let mut out = vec![0.0f32; rows * cols];
    for oc in 0..cols {
        for r in 0..rows {
            out[r * cols + oc] = weights[oc * rows + r];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weight reproduces the input channel.
        let x = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, -2.0, 3.0, -4.0]);
        let cfg = ConvCfg {
            in_ch: 1,
            out_ch: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
            relu: false,
        };
        let y = conv2d(&x, &[1.0], &cfg);
        assert_eq!(y.data(), x.data());
        let cfg_relu = ConvCfg { relu: true, ..cfg };
        let y = conv2d(&x, &[1.0], &cfg_relu);
        assert_eq!(y.data(), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn conv_3x3_known_values() {
        // All-ones 3x3 kernel on all-ones 3x3 input with pad 1: each output
        // counts the valid neighbors.
        let x = Tensor::from_vec(Shape::new(1, 3, 3), vec![1.0; 9]);
        let cfg = ConvCfg {
            in_ch: 1,
            out_ch: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
            relu: false,
        };
        let y = conv2d(&x, &[1.0; 9], &cfg);
        assert_eq!(y.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn conv_stride_subsamples() {
        let x = Tensor::from_vec(Shape::new(1, 4, 4), (0..16).map(|i| i as f32).collect());
        let cfg = ConvCfg {
            in_ch: 1,
            out_ch: 1,
            kh: 1,
            kw: 1,
            stride: 2,
            pad: 0,
            relu: false,
        };
        let y = conv2d(&x, &[1.0], &cfg);
        assert_eq!(y.shape(), Shape::new(1, 2, 2));
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn conv_multichannel_accumulates() {
        let x = Tensor::from_vec(Shape::new(2, 1, 1), vec![2.0, 3.0]);
        let cfg = ConvCfg {
            in_ch: 2,
            out_ch: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
            relu: false,
        };
        // oc0 = 1*x0 + 10*x1 = 32; oc1 = -1*x0 + 0.5*x1 = -0.5
        let y = conv2d(&x, &[1.0, 10.0, -1.0, 0.5], &cfg);
        assert_eq!(y.data(), &[32.0, -0.5]);
    }

    #[test]
    fn depthwise_convolves_channels_independently() {
        // Two channels, distinct 1x1 "filters": pure per-channel scaling.
        let x = Tensor::from_vec(Shape::new(2, 1, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let cfg = ConvCfg {
            in_ch: 2,
            out_ch: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
            relu: false,
        };
        let y = depthwise_conv2d(&x, &[10.0, -1.0], &cfg);
        assert_eq!(y.data(), &[10.0, 20.0, -3.0, -4.0]);
        // 3x3 depthwise equals grouped full conv: cross-check on one channel.
        let x1 = Tensor::from_vec(Shape::new(1, 3, 3), (0..9).map(|i| i as f32).collect());
        let dw = ConvCfg {
            in_ch: 1,
            out_ch: 1,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
            relu: false,
        };
        let w: Vec<f32> = (0..9).map(|i| (i as f32) * 0.1).collect();
        let a = depthwise_conv2d(&x1, &w, &dw);
        let b = conv2d(&x1, &w, &dw);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn maxpool_takes_window_max() {
        let x = Tensor::from_vec(Shape::new(1, 4, 4), (0..16).map(|i| i as f32).collect());
        let y = maxpool2d(&x, 2, 2, 0);
        assert_eq!(y.shape(), Shape::new(1, 2, 2));
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_padding_never_wins() {
        let x = Tensor::from_vec(Shape::new(1, 2, 2), vec![-1.0, -2.0, -3.0, -4.0]);
        let y = maxpool2d(&x, 3, 2, 1);
        assert_eq!(y.shape(), Shape::new(1, 1, 1));
        assert_eq!(y.data(), &[-1.0]);
    }

    #[test]
    fn gap_averages() {
        let x = Tensor::from_vec(Shape::new(2, 1, 2), vec![1.0, 3.0, 10.0, 20.0]);
        let y = global_avgpool(&x);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn linear_matvec() {
        let x = Tensor::from_vec(Shape::new(3, 1, 1), vec![1.0, 2.0, 3.0]);
        let w = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let y = linear(&x, &w, 2);
        assert_eq!(y.data(), &[1.0, 6.0]);
    }

    #[test]
    fn add_with_relu() {
        let a = Tensor::from_vec(Shape::new(1, 1, 2), vec![1.0, -3.0]);
        let b = Tensor::from_vec(Shape::new(1, 1, 2), vec![1.0, 1.0]);
        assert_eq!(add(&a, &b, false).data(), &[2.0, -2.0]);
        assert_eq!(add(&a, &b, true).data(), &[2.0, 0.0]);
    }

    #[test]
    fn relu_inplace_clamps() {
        let mut t = Tensor::from_vec(Shape::new(1, 1, 3), vec![-1.0, 0.0, 2.0]);
        relu_inplace(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn im2col_matches_direct_conv() {
        // conv via im2col+matvec must equal conv2d.
        let cfg = ConvCfg::k3(2, 3, 1);
        let x = Tensor::from_vec(
            Shape::new(2, 4, 4),
            (0..32).map(|i| (i as f32) * 0.1 - 1.5).collect(),
        );
        let w: Vec<f32> = (0..cfg.params())
            .map(|i| ((i % 7) as f32 - 3.0) * 0.2)
            .collect();
        let direct = conv2d(&x, &w, &ConvCfg { relu: false, ..cfg });
        let wx = weights_to_xbar_layout(&w, &cfg);
        let rows = cfg.xbar_rows();
        let mut patch = vec![0.0f32; rows];
        let outs = cfg.out_shape(x.shape());
        for oh in 0..outs.h {
            for ow in 0..outs.w {
                im2col_patch(&x, &cfg, oh, ow, &mut patch);
                for oc in 0..outs.c {
                    let mut acc = 0.0;
                    for r in 0..rows {
                        acc += patch[r] * wx[r * outs.c + oc];
                    }
                    let d = direct.get(oc, oh, ow);
                    assert!((acc - d).abs() < 1e-4, "{acc} vs {d}");
                }
            }
        }
    }

    #[test]
    fn im2col_range_matches_full_patch() {
        // Every (start, len) slice of the range extractor must agree with
        // the corresponding window of the full patch, including padding.
        let cfg = ConvCfg::k3(3, 4, 2); // stride 2 exercises pad offsets
        let x = Tensor::from_vec(
            Shape::new(3, 5, 5),
            (0..75).map(|i| (i as f32) * 0.07 - 2.0).collect(),
        );
        let rows = cfg.xbar_rows();
        let mut full = vec![0.0f32; rows];
        let outs = cfg.out_shape(x.shape());
        for oh in 0..outs.h {
            for ow in 0..outs.w {
                im2col_patch(&x, &cfg, oh, ow, &mut full);
                for (r0, rl) in [(0, rows), (5, 13), (9, 9), (rows - 1, 1)] {
                    let mut part = vec![0.0f32; rl];
                    im2col_patch_range(&x, &cfg, oh, ow, r0, &mut part);
                    assert_eq!(&part[..], &full[r0..r0 + rl], "slice ({r0}, {rl})");
                }
            }
        }
    }
}
