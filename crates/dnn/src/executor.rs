//! The unified functional-executor interface.
//!
//! Both functional backends — the digital f32 ground truth
//! ([`GoldenExecutor`]) and the analog crossbar model
//! ([`AimcExecutor`](crate::AimcExecutor)) — implement [`Executor`], so the
//! platform facade can program a backend once and feed it an arbitrary
//! stream of images ("configure once, evaluate many"). All failure modes
//! are surfaced as [`ExecError`] values instead of panics.

use crate::exec::try_execute_golden;
use crate::graph::{Graph, NodeId};
use crate::tensor::{Shape, Tensor};
use crate::weights::Weights;
use aimc_parallel::{try_map_indexed, Parallelism};
use aimc_xbar::XbarError;
use core::fmt;
use std::sync::Arc;

/// Errors from the functional executors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The input tensor does not match the graph's input shape.
    ShapeMismatch {
        /// Shape the graph expects.
        expected: Shape,
        /// Shape that was provided.
        got: Shape,
    },
    /// A parametric node has no weights.
    MissingWeights {
        /// The node lacking weights.
        node: NodeId,
        /// Its human-readable name.
        name: String,
    },
    /// Crossbar programming or evaluation failed.
    Xbar(XbarError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input shape mismatch: graph expects {expected}, got {got}"
                )
            }
            ExecError::MissingWeights { node, name } => {
                write!(f, "missing weights for node {node} ({name})")
            }
            ExecError::Xbar(e) => write!(f, "crossbar: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<XbarError> for ExecError {
    fn from(e: XbarError) -> Self {
        ExecError::Xbar(e)
    }
}

/// A programmed functional backend: consumes images, produces logits.
///
/// Implementations hold whatever state the backend needs (programmed
/// crossbar tiles, weight tables) so that repeated [`Executor::infer`]
/// calls do **not** re-program anything.
///
/// Inference is `&self` and every implementation is `Sync`: backends must
/// be safe to drive from the parallel execution engine, and — the hard
/// invariant of the platform — [`Executor::infer_batch`] must return
/// bit-identical outputs for every [`Parallelism`] setting.
pub trait Executor: Sync {
    /// Runs one image through the network, returning the output tensor.
    fn infer(&self, input: &Tensor) -> Result<Tensor, ExecError>;

    /// Runs a batch of images, parallelizing across images up to `par`.
    ///
    /// The default implementation fans independent [`Executor::infer`]
    /// calls across the worker pool; backends with internal order-sensitive
    /// state override it (the analog executor assigns invocation
    /// coordinates per image).
    ///
    /// # Errors
    /// The error of the lowest-indexed failing image, if any.
    fn infer_batch(&self, inputs: &[Tensor], par: Parallelism) -> Result<Vec<Tensor>, ExecError> {
        try_map_indexed(par, inputs, |_, x| self.infer(x))
    }

    /// Runs a batch where **every image carries its own explicit global
    /// stream coordinate**: item `(k, x)` evaluates image `x` at stream
    /// coordinate `k`. The coordinates need not be contiguous, ordered, or
    /// related in any way — this is the router-facing entry point of the
    /// sharded serving fleet, where one shard evaluates whatever
    /// non-contiguous slice of the global request stream the router handed
    /// it.
    ///
    /// *Batch-composition invariance*, generalized: for a fixed seed, the
    /// logits produced for coordinate `k` are bit-identical no matter which
    /// batch (or which replica programmed from the same seed) evaluated it,
    /// because evaluation randomness is keyed to the coordinate, never to
    /// the position within a batch or the identity of the executor.
    ///
    /// The default implementation ignores the coordinates (stateless
    /// backends are trivially composition-invariant) and maps
    /// [`Executor::infer`] over the images; backends with per-image stream
    /// state override it (the analog executor keys its read-noise streams
    /// by the coordinate and advances its image counter past the batch's
    /// highest coordinate).
    ///
    /// # Errors
    /// The error of the lowest-indexed failing item, if any.
    fn infer_batch_indexed(
        &self,
        items: &[(u64, &Tensor)],
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        try_map_indexed(par, items, |_, (_, x)| self.infer(x))
    }

    /// Runs a batch whose first image sits at the **explicit** global
    /// stream coordinate `base_image_index` (image `i` of the batch is
    /// image `base_image_index + i` of the request stream) — the contiguous
    /// convenience over [`Executor::infer_batch_indexed`]: a single-session
    /// micro-batch scheduler numbers requests in arrival order and
    /// dispatches them in stream order, so its batches are contiguous runs.
    ///
    /// # Errors
    /// The error of the lowest-indexed failing image, if any.
    fn infer_batch_at(
        &self,
        inputs: &[Tensor],
        base_image_index: u64,
        par: Parallelism,
    ) -> Result<Vec<Tensor>, ExecError> {
        let items: Vec<(u64, &Tensor)> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| (base_image_index + i as u64, x))
            .collect();
        self.infer_batch_indexed(&items, par)
    }

    /// Images consumed from the backend's request stream so far — the next
    /// coordinate a counter-claiming call would use (0 for stateless
    /// backends, which have no stream state).
    fn images_seen(&self) -> u64 {
        0
    }

    /// Short label of the backend ("golden", "analog").
    fn backend_name(&self) -> &'static str;

    /// Number of crossbar tiles held by this backend (0 for digital).
    fn tile_count(&self) -> usize {
        0
    }

    /// Total analog MVMs evaluated since programming (0 for digital).
    fn total_mvms(&self) -> u64 {
        0
    }

    /// Applies conductance drift for `t_hours` since programming; returns
    /// whether the backend models drift (`false` for digital backends,
    /// which ignore the call).
    fn apply_drift(&mut self, _t_hours: f64) -> bool {
        false
    }
}

/// The digital f32 ground-truth backend behind [`Executor`].
///
/// Validates that every parametric node has weights at construction, so
/// [`Executor::infer`] can only fail on input-shape mismatches.
///
/// # Examples
/// ```
/// use aimc_dnn::{he_init, resnet18_cifar, Executor, GoldenExecutor, Shape, Tensor};
/// let g = resnet18_cifar(10);
/// let w = he_init(&g, 0);
/// let exec = GoldenExecutor::new(&g, &w).unwrap();
/// let y = exec.infer(&Tensor::zeros(Shape::new(3, 32, 32))).unwrap();
/// assert_eq!(y.shape(), Shape::new(10, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct GoldenExecutor {
    graph: Arc<Graph>,
    weights: Arc<Weights>,
}

impl GoldenExecutor {
    /// Builds a golden backend over `graph` and `weights`.
    ///
    /// # Errors
    /// Returns [`ExecError::MissingWeights`] if any parametric node lacks
    /// weights.
    pub fn new(graph: &Graph, weights: &Weights) -> Result<Self, ExecError> {
        Self::from_shared(Arc::new(graph.clone()), Arc::new(weights.clone()))
    }

    /// Builds a golden backend sharing already-owned graph/weights handles
    /// (no deep copy — used by the `aimc-platform` session, which keeps
    /// both behind `Arc`).
    ///
    /// # Errors
    /// Returns [`ExecError::MissingWeights`] if any parametric node lacks
    /// weights.
    pub fn from_shared(graph: Arc<Graph>, weights: Arc<Weights>) -> Result<Self, ExecError> {
        check_weights(&graph, &weights)?;
        Ok(GoldenExecutor { graph, weights })
    }
}

impl Executor for GoldenExecutor {
    fn infer(&self, input: &Tensor) -> Result<Tensor, ExecError> {
        let mut outs = try_execute_golden(&self.graph, &self.weights, input)?;
        Ok(outs.pop().expect("graph is non-empty"))
    }

    fn backend_name(&self) -> &'static str {
        "golden"
    }
}

/// Verifies that every parametric node of `graph` has weights.
pub(crate) fn check_weights(graph: &Graph, weights: &Weights) -> Result<(), ExecError> {
    use crate::layer::LayerKind;
    for node in graph.nodes() {
        let parametric = matches!(
            node.kind,
            LayerKind::Conv(_)
                | LayerKind::DepthwiseConv(_)
                | LayerKind::Linear { .. }
                | LayerKind::Residual {
                    projection: Some(_)
                }
        );
        if parametric && weights.get(node.id).is_none() {
            return Err(ExecError::MissingWeights {
                node: node.id,
                name: node.name.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::infer_golden;
    use crate::graph::GraphBuilder;
    use crate::layer::ConvCfg;
    use crate::weights::he_init;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c = b.conv("c", b.input(), ConvCfg::k3(3, 4, 1));
        let gap = b.global_avgpool("gap", c);
        b.linear("fc", gap, 2);
        b.finish()
    }

    #[test]
    fn golden_executor_matches_free_function() {
        let g = tiny();
        let w = he_init(&g, 1);
        let x = Tensor::zeros(g.input_shape());
        let exec = GoldenExecutor::new(&g, &w).unwrap();
        assert_eq!(exec.infer(&x).unwrap(), infer_golden(&g, &w, &x));
        assert_eq!(exec.backend_name(), "golden");
        assert_eq!(exec.tile_count(), 0);
    }

    #[test]
    fn missing_weights_error_at_construction() {
        let g = tiny();
        let err = GoldenExecutor::new(&g, &Weights::new()).unwrap_err();
        assert!(err.to_string().contains("missing weights"));
        match err {
            ExecError::MissingWeights { node, name } => {
                assert_eq!(node, 0);
                assert_eq!(name, "c");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let g = tiny();
        let w = he_init(&g, 1);
        let exec = GoldenExecutor::new(&g, &w).unwrap();
        let err = exec.infer(&Tensor::zeros(Shape::new(3, 4, 4))).unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { .. }));
        assert!(err.to_string().contains("input shape mismatch"));
    }

    #[test]
    fn works_as_trait_object() {
        let g = tiny();
        let w = he_init(&g, 1);
        let exec: Box<dyn Executor> = Box::new(GoldenExecutor::new(&g, &w).unwrap());
        let y = exec.infer(&Tensor::zeros(g.input_shape())).unwrap();
        assert_eq!(y.shape(), Shape::new(2, 1, 1));
    }

    /// The stateless default: explicit coordinates (contiguous, shuffled,
    /// or duplicated) never change a golden result — only the images do.
    #[test]
    fn golden_infer_batch_indexed_ignores_coordinates() {
        let g = tiny();
        let w = he_init(&g, 1);
        let exec = GoldenExecutor::new(&g, &w).unwrap();
        let images: Vec<Tensor> = (0..3)
            .map(|i| {
                let mut v = vec![0.0f32; g.input_shape().numel()];
                v.iter_mut()
                    .enumerate()
                    .for_each(|(j, x)| *x = ((i * 7 + j) % 13) as f32 / 13.0);
                Tensor::from_vec(g.input_shape(), v)
            })
            .collect();
        let solo: Vec<Tensor> = images.iter().map(|x| exec.infer(x).unwrap()).collect();
        let shuffled: Vec<(u64, &Tensor)> = vec![(9, &images[0]), (2, &images[1]), (2, &images[2])];
        let got = exec
            .infer_batch_indexed(&shuffled, Parallelism::Threads(2))
            .unwrap();
        assert_eq!(solo, got);
        // The contiguous wrapper routes through the indexed entry point.
        let at = exec
            .infer_batch_at(&images, 5, Parallelism::Serial)
            .unwrap();
        assert_eq!(solo, at);
    }

    #[test]
    fn golden_infer_batch_is_parallelism_invariant() {
        let g = tiny();
        let w = he_init(&g, 1);
        let images: Vec<Tensor> = (0..5)
            .map(|i| {
                let mut v = vec![0.0f32; g.input_shape().numel()];
                v.iter_mut().enumerate().for_each(|(j, x)| {
                    *x = ((i * 31 + j) % 17) as f32 / 17.0 - 0.5;
                });
                Tensor::from_vec(g.input_shape(), v)
            })
            .collect();
        let exec = GoldenExecutor::new(&g, &w).unwrap();
        let serial = exec.infer_batch(&images, Parallelism::Serial).unwrap();
        let par = exec.infer_batch(&images, Parallelism::Threads(4)).unwrap();
        assert_eq!(serial, par);
        // Default trait implementation reports shape errors by lowest index.
        let mut bad = images.clone();
        bad[2] = Tensor::zeros(Shape::new(1, 1, 1));
        bad[4] = Tensor::zeros(Shape::new(2, 2, 2));
        let err = exec.infer_batch(&bad, Parallelism::Threads(4)).unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { got, .. } if got == Shape::new(1, 1, 1)));
    }
}
