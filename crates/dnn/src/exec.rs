//! The golden (digital f32) graph executor — the functional ground truth.

use crate::executor::ExecError;
use crate::graph::{Graph, NodeId};
use crate::layer::LayerKind;
use crate::ops;
use crate::tensor::Tensor;
use crate::weights::Weights;

/// Executes `graph` on one input image, returning every node's output.
///
/// The returned vector is indexed by node id; the network result is the last
/// entry. This is the fallible core behind [`execute_golden`] and the
/// [`GoldenExecutor`](crate::GoldenExecutor) backend.
///
/// # Errors
/// [`ExecError::ShapeMismatch`] if the input does not match
/// `graph.input_shape()`; [`ExecError::MissingWeights`] if a parametric node
/// has no weights.
pub fn try_execute_golden(
    graph: &Graph,
    weights: &Weights,
    input: &Tensor,
) -> Result<Vec<Tensor>, ExecError> {
    if input.shape() != graph.input_shape() {
        return Err(ExecError::ShapeMismatch {
            expected: graph.input_shape(),
            got: input.shape(),
        });
    }
    let mut outs: Vec<Tensor> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let fetch = |slot: usize, outs: &[Tensor]| -> Tensor {
            match node.inputs.get(slot) {
                Some(&p) => outs[p].clone(),
                None => input.clone(),
            }
        };
        let get_w = || -> Result<&[f32], ExecError> {
            weights
                .get(node.id)
                .ok_or_else(|| ExecError::MissingWeights {
                    node: node.id,
                    name: node.name.clone(),
                })
        };
        let y = match &node.kind {
            LayerKind::Input => input.clone(),
            LayerKind::Conv(cfg) => {
                let x = fetch(0, &outs);
                ops::conv2d(&x, get_w()?, cfg)
            }
            LayerKind::DepthwiseConv(cfg) => {
                let x = fetch(0, &outs);
                ops::depthwise_conv2d(&x, get_w()?, cfg)
            }
            LayerKind::MaxPool { k, stride, pad } => {
                let x = fetch(0, &outs);
                ops::maxpool2d(&x, *k, *stride, *pad)
            }
            LayerKind::GlobalAvgPool => {
                let x = fetch(0, &outs);
                ops::global_avgpool(&x)
            }
            LayerKind::Linear { out_features, .. } => {
                let x = fetch(0, &outs);
                ops::linear(&x, get_w()?, *out_features)
            }
            LayerKind::Residual { projection } => {
                let main = fetch(0, &outs);
                let skip = fetch(1, &outs);
                let skip = match projection {
                    Some(p) => ops::conv2d(&skip, get_w()?, p),
                    None => skip,
                };
                ops::add(&main, &skip, true)
            }
        };
        outs.push(y);
    }
    Ok(outs)
}

/// Executes `graph` on one input image, returning every node's output
/// (panicking convenience over [`try_execute_golden`]).
///
/// # Panics
/// Panics if a parametric node has no weights, or if the input shape does
/// not match `graph.input_shape()`.
///
/// # Examples
/// ```
/// use aimc_dnn::{execute_golden, he_init, resnet18_cifar, Shape, Tensor};
/// let g = resnet18_cifar(10);
/// let w = he_init(&g, 0);
/// let x = Tensor::zeros(Shape::new(3, 32, 32));
/// let outs = execute_golden(&g, &w, &x);
/// assert_eq!(outs.last().unwrap().shape(), Shape::new(10, 1, 1));
/// ```
pub fn execute_golden(graph: &Graph, weights: &Weights, input: &Tensor) -> Vec<Tensor> {
    try_execute_golden(graph, weights, input).unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience wrapper returning only the network output (logits).
pub fn infer_golden(graph: &Graph, weights: &Weights, input: &Tensor) -> Tensor {
    execute_golden(graph, weights, input)
        .pop()
        .expect("graph is non-empty")
}

/// Identifies the node whose output feeds the residual *skip* input of
/// `res_node` (used by the runtime to wire residual edges).
pub fn skip_producer(graph: &Graph, res_node: NodeId) -> Option<NodeId> {
    let n = graph.node(res_node);
    match n.kind {
        LayerKind::Residual { .. } => n.inputs.get(1).copied(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::layer::ConvCfg;
    use crate::resnet::resnet18_cifar;
    use crate::tensor::Shape;
    use crate::weights::he_init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_image(shape: Shape, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.numel())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        )
    }

    #[test]
    fn cifar_resnet_executes_end_to_end() {
        let g = resnet18_cifar(10);
        let w = he_init(&g, 11);
        let x = random_image(g.input_shape(), 5);
        let outs = execute_golden(&g, &w, &x);
        assert_eq!(outs.len(), g.len());
        let logits = outs.last().unwrap();
        assert_eq!(logits.shape(), Shape::new(10, 1, 1));
        assert!(logits.data().iter().all(|v| v.is_finite()));
        // Residual + ReLU stages keep activations non-negative after node 0.
        assert!(outs[3].data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn infer_matches_execute_tail() {
        let g = resnet18_cifar(10);
        let w = he_init(&g, 2);
        let x = random_image(g.input_shape(), 9);
        let a = infer_golden(&g, &w, &x);
        let b = execute_golden(&g, &w, &x).pop().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = resnet18_cifar(10);
        let w = he_init(&g, 2);
        let x = random_image(g.input_shape(), 1);
        assert_eq!(infer_golden(&g, &w, &x), infer_golden(&g, &w, &x));
    }

    #[test]
    fn skip_producer_identifies_residual_edges() {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 4, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(4, 4, 1));
        let r = b.residual("r", c1, c0, None);
        let g = b.finish();
        assert_eq!(skip_producer(&g, r), Some(c0));
        assert_eq!(skip_producer(&g, c1), None);
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn rejects_wrong_input_shape() {
        let g = resnet18_cifar(10);
        let w = he_init(&g, 0);
        let x = Tensor::zeros(Shape::new(3, 16, 16));
        execute_golden(&g, &w, &x);
    }

    #[test]
    #[should_panic(expected = "missing weights")]
    fn rejects_missing_weights() {
        let g = resnet18_cifar(10);
        let w = Weights::new();
        let x = Tensor::zeros(g.input_shape());
        execute_golden(&g, &w, &x);
    }
}
