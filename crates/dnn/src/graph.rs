//! The network DAG (Fig. 2A): nodes in topological order with explicit
//! producer edges, shape inference, and whole-network op/parameter totals.

use crate::layer::{ConvCfg, LayerKind};
use crate::tensor::Shape;
use core::fmt;

/// Identifier of a node within its graph (also the paper's "Layer N" index).
pub type NodeId = usize;

/// One operator instance in the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Graph-unique id; equals the node's position (topological by
    /// construction).
    pub id: NodeId,
    /// Human-readable name (e.g. `"conv2"`).
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Producer nodes. Convention for [`LayerKind::Residual`]:
    /// `inputs[0]` is the main path, `inputs[1]` the skip path.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub out_shape: Shape,
}

impl Node {
    /// The node's input feature-map shape: the output shape of `inputs[0]`,
    /// or the network input shape for nodes consuming the raw input.
    pub fn ifm_shape(&self, graph: &Graph) -> Shape {
        match self.inputs.first() {
            Some(&p) => graph.node(p).out_shape,
            None => graph.input_shape(),
        }
    }

    /// MAC count of this node for one image (0 for non-MAC ops; pooling and
    /// additions are counted separately as digital element ops).
    pub fn macs(&self, graph: &Graph) -> u64 {
        match &self.kind {
            LayerKind::Conv(c) => c.macs(self.ifm_shape(graph)),
            // Depthwise: one K×K MAC window per output element.
            LayerKind::DepthwiseConv(c) => self.out_shape.numel() as u64 * (c.kh * c.kw) as u64,
            LayerKind::Linear {
                in_features,
                out_features,
            } => (*in_features * *out_features) as u64,
            LayerKind::Residual {
                projection: Some(p),
            } => {
                let skip_shape = graph.node(self.inputs[1]).out_shape;
                p.macs(skip_shape)
            }
            _ => 0,
        }
    }

    /// Digital element-operations of this node per image (adds/compares
    /// executed on the CORES).
    pub fn digital_elem_ops(&self, graph: &Graph) -> u64 {
        match &self.kind {
            LayerKind::MaxPool { k, .. } => self.out_shape.numel() as u64 * (k * k) as u64,
            LayerKind::GlobalAvgPool => self.ifm_shape(graph).numel() as u64,
            LayerKind::Residual { .. } => self.out_shape.numel() as u64,
            _ => 0,
        }
    }
}

/// A directed acyclic network graph.
///
/// Nodes are stored in topological order (enforced at construction: every
/// edge points from a lower to a higher id), so iteration order is execution
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    nodes: Vec<Node>,
    input_shape: Shape,
}

impl Graph {
    /// The network's input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// All nodes in topological (= id) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (including the input node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Consumers of a node, in id order.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// The final node (network output).
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn output(&self) -> &Node {
        self.nodes.last().expect("graph is empty")
    }

    /// Total MACs per image.
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(|n| n.macs(self)).sum()
    }

    /// Total operations per image, counting 2 ops per MAC (the TOPS
    /// convention used for the headline numbers).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Total parameters.
    pub fn total_params(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.params() as u64).sum()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in &self.nodes {
            writeln!(
                f,
                "{:>3} {:<8} {:<28} -> {:<12} ({} params)",
                n.id,
                n.name,
                n.kind.to_string(),
                n.out_shape.to_string(),
                n.kind.params()
            )?;
        }
        Ok(())
    }
}

/// Incremental, shape-checked graph construction.
///
/// # Examples
/// ```
/// use aimc_dnn::{ConvCfg, GraphBuilder, Shape};
/// let mut b = GraphBuilder::new(Shape::new(3, 32, 32));
/// let x = b.input();
/// let c = b.conv("c0", x, ConvCfg::k3(3, 16, 1));
/// let g = b.finish();
/// assert_eq!(g.node(c).out_shape, Shape::new(16, 32, 32));
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    input_shape: Shape,
}

impl GraphBuilder {
    /// Starts a graph whose input node (id 0 is *not* created; the input is
    /// implicit producer of the first layer) has shape `input_shape`.
    ///
    /// To match the paper's numbering, node 0 is the first *compute* layer
    /// (`0 conv` in Fig. 2A); the image source is represented by a pseudo
    /// node only inside the runtime.
    pub fn new(input_shape: Shape) -> Self {
        GraphBuilder {
            nodes: Vec::new(),
            input_shape,
        }
    }

    /// Handle used as producer for layers consuming the raw network input.
    pub fn input(&self) -> Option<NodeId> {
        None
    }

    fn shape_of(&self, src: Option<NodeId>) -> Shape {
        match src {
            None => self.input_shape,
            Some(id) => self.nodes[id].out_shape,
        }
    }

    fn push(
        &mut self,
        name: &str,
        kind: LayerKind,
        inputs: Vec<NodeId>,
        out_shape: Shape,
    ) -> NodeId {
        let id = self.nodes.len();
        for &p in &inputs {
            assert!(p < id, "edges must point forward (topological ids)");
        }
        self.nodes.push(Node {
            id,
            name: name.to_string(),
            kind,
            inputs,
            out_shape,
        });
        id
    }

    /// Adds a convolution; `src = None` consumes the network input.
    pub fn conv(&mut self, name: &str, src: Option<NodeId>, cfg: ConvCfg) -> NodeId {
        let in_shape = self.shape_of(src);
        let out = cfg.out_shape(in_shape);
        self.push(name, LayerKind::Conv(cfg), src.into_iter().collect(), out)
    }

    /// Adds a depthwise convolution (`cfg.in_ch` must equal `cfg.out_ch`).
    ///
    /// # Panics
    /// Panics if the channel counts differ or do not match the input.
    pub fn depthwise(&mut self, name: &str, src: NodeId, cfg: ConvCfg) -> NodeId {
        assert_eq!(cfg.in_ch, cfg.out_ch, "depthwise conv preserves channels");
        let in_shape = self.nodes[src].out_shape;
        let out = cfg.out_shape(in_shape);
        self.push(name, LayerKind::DepthwiseConv(cfg), vec![src], out)
    }

    /// Adds a max-pool layer.
    pub fn maxpool(
        &mut self,
        name: &str,
        src: NodeId,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        let s = self.nodes[src].out_shape;
        let h = (s.h + 2 * pad - k) / stride + 1;
        let w = (s.w + 2 * pad - k) / stride + 1;
        self.push(
            name,
            LayerKind::MaxPool { k, stride, pad },
            vec![src],
            Shape::new(s.c, h, w),
        )
    }

    /// Adds a global average pool (output 1×1).
    pub fn global_avgpool(&mut self, name: &str, src: NodeId) -> NodeId {
        let s = self.nodes[src].out_shape;
        self.push(
            name,
            LayerKind::GlobalAvgPool,
            vec![src],
            Shape::new(s.c, 1, 1),
        )
    }

    /// Adds a fully connected layer over the flattened input.
    pub fn linear(&mut self, name: &str, src: NodeId, out_features: usize) -> NodeId {
        let s = self.nodes[src].out_shape;
        let in_features = s.numel();
        self.push(
            name,
            LayerKind::Linear {
                in_features,
                out_features,
            },
            vec![src],
            Shape::new(out_features, 1, 1),
        )
    }

    /// Adds a residual addition `main + skip`, with an optional projection
    /// convolution applied to the skip path.
    ///
    /// # Panics
    /// Panics if the (projected) skip shape disagrees with the main shape.
    pub fn residual(
        &mut self,
        name: &str,
        main: NodeId,
        skip: NodeId,
        projection: Option<ConvCfg>,
    ) -> NodeId {
        let main_shape = self.nodes[main].out_shape;
        let skip_shape = self.nodes[skip].out_shape;
        let projected = match &projection {
            Some(p) => p.out_shape(skip_shape),
            None => skip_shape,
        };
        assert_eq!(
            main_shape, projected,
            "residual branches must produce identical shapes"
        );
        self.push(
            name,
            LayerKind::Residual { projection },
            vec![main, skip],
            main_shape,
        )
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    /// Panics if the graph is empty.
    pub fn finish(self) -> Graph {
        assert!(!self.nodes.is_empty(), "graph has no layers");
        Graph {
            nodes: self.nodes,
            input_shape: self.input_shape,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 4, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(4, 4, 1));
        let r = b.residual("r", c1, c0, None);
        let p = b.global_avgpool("gap", r);
        let _fc = b.linear("fc", p, 10);
        b.finish()
    }

    #[test]
    fn builder_produces_topological_ids() {
        let g = tiny();
        assert_eq!(g.len(), 5);
        for n in g.nodes() {
            for &p in &n.inputs {
                assert!(p < n.id);
            }
        }
    }

    #[test]
    fn consumers_are_tracked() {
        let g = tiny();
        assert_eq!(g.consumers(0), vec![1, 2]); // conv1 and residual skip
        assert_eq!(g.consumers(1), vec![2]);
        assert!(g.consumers(4).is_empty());
    }

    #[test]
    fn shapes_flow_through() {
        let g = tiny();
        assert_eq!(g.node(0).out_shape, Shape::new(4, 8, 8));
        assert_eq!(g.node(3).out_shape, Shape::new(4, 1, 1));
        assert_eq!(g.node(4).out_shape, Shape::new(10, 1, 1));
        assert_eq!(g.output().id, 4);
        assert_eq!(g.node(1).ifm_shape(&g), Shape::new(4, 8, 8));
    }

    #[test]
    fn totals_add_up() {
        let g = tiny();
        // c0: 8*8*4*27, c1: 8*8*4*36, fc: 4*10
        let expect = 64 * 4 * 27 + 64 * 4 * 36 + 40;
        assert_eq!(g.total_macs(), expect as u64);
        assert_eq!(g.total_ops(), 2 * expect as u64);
        assert_eq!(g.total_params(), (3 * 4 * 9 + 4 * 4 * 9 + 40) as u64);
    }

    #[test]
    fn digital_ops_counted_for_pool_and_residual() {
        let g = tiny();
        assert_eq!(g.node(2).digital_elem_ops(&g), 4 * 8 * 8); // residual add
        assert_eq!(g.node(3).digital_elem_ops(&g), 4 * 8 * 8); // gap reads all
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn residual_rejects_shape_mismatch() {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 4, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(4, 8, 2));
        b.residual("r", c1, c0, None);
    }

    #[test]
    fn residual_with_projection_reconciles_shapes() {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 4, 1));
        let c1 = b.conv("c1", Some(c0), ConvCfg::k3(4, 8, 2));
        let r = b.residual("r", c1, c0, Some(ConvCfg::k1(4, 8, 2)));
        let g = b.finish();
        assert_eq!(g.node(r).out_shape, Shape::new(8, 4, 4));
        // Projection MACs are attributed to the residual node.
        assert_eq!(g.node(r).macs(&g), (4 * 4 * 8 * 4) as u64);
    }

    #[test]
    fn display_lists_every_node() {
        let g = tiny();
        let s = g.to_string();
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("residual"));
    }

    #[test]
    #[should_panic(expected = "no layers")]
    fn empty_graph_rejected() {
        GraphBuilder::new(Shape::new(1, 1, 1)).finish();
    }
}
