//! Minimal CHW tensor used by the functional executors.
//!
//! The timing simulation never touches tensor *values* (it works on byte
//! counts); these types serve the golden reference executor and the AIMC
//! functional executor, so they favor clarity over peak performance.

use core::fmt;

/// The shape of one feature map: channels × height × width.
///
/// # Examples
/// ```
/// use aimc_dnn::Shape;
/// let s = Shape::new(64, 56, 56);
/// assert_eq!(s.numel(), 64 * 56 * 56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Channels.
    pub c: usize,
    /// Height (rows).
    pub h: usize,
    /// Width (columns).
    pub w: usize,
}

impl Shape {
    /// Creates a shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Shape { c, h, w }
    }

    /// Total number of elements.
    pub const fn numel(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Bytes when stored as int8 (the deployment datatype in the paper's
    /// mapping arithmetic: "each 256×256 IMA can store 64 K parameters").
    pub const fn bytes_i8(&self) -> usize {
        self.numel()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// A dense CHW feature map of `f32` values.
///
/// # Examples
/// ```
/// use aimc_dnn::{Shape, Tensor};
/// let mut t = Tensor::zeros(Shape::new(2, 3, 3));
/// t.set(1, 2, 2, 5.0);
/// assert_eq!(t.get(1, 2, 2), 5.0);
/// assert_eq!(t.get(0, 0, 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.numel()],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Immutable view of the underlying CHW-ordered buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    fn index(&self, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(c < self.shape.c && h < self.shape.h && w < self.shape.w);
        (c * self.shape.h + h) * self.shape.w + w
    }

    /// Element read.
    ///
    /// # Panics
    /// Panics (debug) if indices are out of bounds.
    #[inline]
    pub fn get(&self, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.index(c, h, w)]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, c: usize, h: usize, w: usize, v: f32) {
        let i = self.index(c, h, w);
        self.data[i] = v;
    }

    /// Index of the maximum element (ties broken toward the lower index) —
    /// the classification decision on logits.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Largest absolute value (used for quantization scales); 0 for empty.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_arithmetic() {
        let s = Shape::new(3, 4, 5);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.bytes_i8(), 60);
        assert_eq!(s.to_string(), "3x4x5");
    }

    #[test]
    fn chw_layout_is_row_major_in_w() {
        let mut t = Tensor::zeros(Shape::new(2, 2, 3));
        t.set(0, 0, 1, 1.0);
        t.set(0, 1, 0, 2.0);
        t.set(1, 0, 0, 3.0);
        assert_eq!(t.data()[1], 1.0); // (0,0,1)
        assert_eq!(t.data()[3], 2.0); // (0,1,0)
        assert_eq!(t.data()[6], 3.0); // (1,0,0)
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(Shape::new(1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn argmax_and_max_abs() {
        let t = Tensor::from_vec(Shape::new(1, 1, 4), vec![-3.0, 7.0, 7.0, 2.0]);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.max_abs(), 7.0);
    }

    #[test]
    fn round_trip_into_vec() {
        let t = Tensor::from_vec(Shape::new(1, 1, 2), vec![1.0, 2.0]);
        assert_eq!(t.clone().into_vec(), vec![1.0, 2.0]);
    }
}
