//! Network weights: storage keyed by node id, and deterministic synthetic
//! initialization.
//!
//! The paper evaluates performance, not accuracy, so no pretrained model is
//! required (see DESIGN.md §3); He-initialized weights exercise exactly the
//! same shapes, op counts and dynamic ranges.

use crate::graph::{Graph, NodeId};
use crate::layer::LayerKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Weight buffers for the parametric nodes of a graph.
///
/// Convolutions store `[out_ch][in_ch][kh][kw]`; linear layers
/// `[out][in]`; residual nodes store their projection's conv weights.
#[derive(Debug, Clone, Default)]
pub struct Weights {
    buffers: HashMap<NodeId, Vec<f32>>,
}

impl Weights {
    /// Creates an empty weight store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer for `node`, if it has parameters.
    pub fn get(&self, node: NodeId) -> Option<&[f32]> {
        self.buffers.get(&node).map(|v| v.as_slice())
    }

    /// Inserts (or replaces) the buffer for `node`.
    pub fn set(&mut self, node: NodeId, buf: Vec<f32>) {
        self.buffers.insert(node, buf);
    }

    /// Number of parametric nodes stored.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no buffers are stored.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Total scalar parameters stored.
    pub fn total_params(&self) -> usize {
        self.buffers.values().map(|v| v.len()).sum()
    }
}

/// He-normal initialization for every parametric node, deterministic in
/// `seed`.
///
/// # Examples
/// ```
/// use aimc_dnn::{he_init, resnet18_cifar};
/// let g = resnet18_cifar(10);
/// let w = he_init(&g, 42);
/// assert_eq!(w.total_params() as u64, g.total_params());
/// ```
pub fn he_init(graph: &Graph, seed: u64) -> Weights {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Weights::new();
    for node in graph.nodes() {
        let (n_params, fan_in) = match &node.kind {
            LayerKind::Conv(c) => (c.params(), c.in_ch * c.kh * c.kw),
            LayerKind::DepthwiseConv(c) => (c.out_ch * c.kh * c.kw, c.kh * c.kw),
            LayerKind::Linear {
                in_features,
                out_features,
            } => (in_features * out_features, *in_features),
            LayerKind::Residual {
                projection: Some(p),
            } => (p.params(), p.in_ch),
            _ => continue,
        };
        let std = (2.0 / fan_in as f64).sqrt();
        let buf: Vec<f32> = (0..n_params)
            .map(|_| (aimc_xbar::noise::gaussian(&mut rng, std)) as f32)
            .collect();
        w.set(node.id, buf);
    }
    let _ = rng.gen::<u64>(); // burn one draw so seed reuse is detectable in tests
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::resnet18_cifar;

    #[test]
    fn init_covers_all_parametric_nodes() {
        let g = resnet18_cifar(10);
        let w = he_init(&g, 1);
        for n in g.nodes() {
            let has = w.get(n.id).is_some();
            assert_eq!(has, n.kind.params() > 0, "node {}", n.id);
            if let Some(buf) = w.get(n.id) {
                assert_eq!(buf.len(), n.kind.params());
            }
        }
        assert_eq!(w.total_params() as u64, g.total_params());
    }

    #[test]
    fn init_is_deterministic_and_seed_sensitive() {
        let g = resnet18_cifar(10);
        let a = he_init(&g, 7);
        let b = he_init(&g, 7);
        let c = he_init(&g, 8);
        assert_eq!(a.get(0), b.get(0));
        assert_ne!(a.get(0), c.get(0));
    }

    #[test]
    fn he_scale_tracks_fan_in() {
        let g = resnet18_cifar(10);
        let w = he_init(&g, 3);
        // conv0: fan_in = 3*9=27 → std ≈ 0.272
        let buf = w.get(0).unwrap();
        let var: f64 = buf.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / buf.len() as f64;
        let expect = 2.0 / 27.0;
        assert!(
            (var - expect).abs() < expect * 0.5,
            "variance {var} vs expected {expect}"
        );
    }

    #[test]
    fn store_roundtrip() {
        let mut w = Weights::new();
        assert!(w.is_empty());
        w.set(5, vec![1.0, 2.0]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.get(5), Some(&[1.0, 2.0][..]));
        assert_eq!(w.get(6), None);
        assert_eq!(w.total_params(), 2);
    }
}
