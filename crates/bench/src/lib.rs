//! # aimc-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §2 for the
//! experiment index) plus criterion microbenchmarks. This library crate
//! holds the shared setup used by all of them, built on the
//! [`Platform`]/[`Session`] facade API.
//!
//! ## Example
//! ```no_run
//! use aimc_core::MappingStrategy;
//!
//! # fn main() -> Result<(), aimc_platform::Error> {
//! let mut session = aimc_bench::paper_session(MappingStrategy::OnChipResiduals)?;
//! let report = session.run(aimc_platform::RunSpec::batch(16))?;
//! println!("{:.1} TOPS", report.tops());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aimc_core::{ArchConfig, MappingStrategy, SystemMapping};
use aimc_dnn::{resnet18, Graph};
use aimc_platform::{Error, Platform, RunSpec, Session};
use aimc_runtime::RunReport;

/// The paper's workload: ResNet-18 on 256×256 inputs, 1000 classes.
pub fn paper_graph() -> Graph {
    resnet18(256, 256, 1000)
}

/// The paper's platform (Table I).
pub fn paper_arch() -> ArchConfig {
    ArchConfig::paper()
}

/// Compiles the paper workload onto the paper platform with `strategy`
/// (the mapping is computed once and cached in the returned [`Platform`]).
///
/// # Errors
/// Propagates mapping failures as [`Error::Map`] (the paper pair always
/// maps; sweeps over modified architectures may not).
pub fn paper_platform(strategy: MappingStrategy) -> Result<Platform, Error> {
    Platform::builder()
        .graph(paper_graph())
        .arch(paper_arch())
        .strategy(strategy)
        .build()
}

/// Opens a [`Session`] on the compiled paper platform.
///
/// # Errors
/// Same conditions as [`paper_platform`].
pub fn paper_session(strategy: MappingStrategy) -> Result<Session, Error> {
    Ok(paper_platform(strategy)?.session())
}

/// Maps and simulates the paper workload with `strategy` for a batch.
///
/// # Errors
/// Propagates mapping and simulation-spec failures instead of panicking.
pub fn run_paper(
    strategy: MappingStrategy,
    batch: usize,
) -> Result<(Graph, SystemMapping, RunReport), Error> {
    let platform = paper_platform(strategy)?;
    let mut session = platform.session();
    let report = session.run(RunSpec::batch(batch))?.clone();
    Ok((platform.graph().clone(), platform.mapping().clone(), report))
}

/// Reads the batch size from the first CLI argument (default 16, the
/// paper's batch).
pub fn batch_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_consistent() {
        let g = paper_graph();
        assert_eq!(g.len(), 28);
        assert_eq!(paper_arch().n_clusters(), 512);
    }

    #[test]
    fn run_paper_small_batch() {
        let (_, m, r) = run_paper(MappingStrategy::OnChipResiduals, 2).unwrap();
        assert!(m.n_clusters_used <= 512);
        assert_eq!(r.batch, 2);
        assert!(r.tops() > 1.0);
    }

    #[test]
    fn session_caches_repeat_runs() {
        let mut s = paper_session(MappingStrategy::OnChipResiduals).unwrap();
        let first = s.run(RunSpec::batch(2)).unwrap().makespan;
        assert_eq!(s.run(RunSpec::batch(2)).unwrap().makespan, first);
    }
}
