//! # aimc-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §2 for the
//! experiment index) plus criterion microbenchmarks. This library crate
//! holds the shared setup used by all of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aimc_core::{map_network, ArchConfig, MappingStrategy, SystemMapping};
use aimc_dnn::{resnet18, Graph};
use aimc_runtime::{simulate, RunReport};

/// The paper's workload: ResNet-18 on 256×256 inputs, 1000 classes.
pub fn paper_graph() -> Graph {
    resnet18(256, 256, 1000)
}

/// The paper's platform (Table I).
pub fn paper_arch() -> ArchConfig {
    ArchConfig::paper()
}

/// Maps and simulates the paper workload with `strategy` for a batch.
///
/// # Panics
/// Panics if mapping fails on the paper platform (it cannot, by test).
pub fn run_paper(strategy: MappingStrategy, batch: usize) -> (Graph, SystemMapping, RunReport) {
    let g = paper_graph();
    let arch = paper_arch();
    let m = map_network(&g, &arch, strategy).expect("paper workload must map");
    let r = simulate(&g, &m, &arch, batch);
    (g, m, r)
}

/// Reads the batch size from the first CLI argument (default 16, the
/// paper's batch).
pub fn batch_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_is_consistent() {
        let g = paper_graph();
        assert_eq!(g.len(), 28);
        assert_eq!(paper_arch().n_clusters(), 512);
    }

    #[test]
    fn run_paper_small_batch() {
        let (_, m, r) = run_paper(MappingStrategy::OnChipResiduals, 2);
        assert!(m.n_clusters_used <= 512);
        assert_eq!(r.batch, 2);
        assert!(r.tops() > 1.0);
    }
}
