//! Overload benchmark for the QoS admission-control subsystem: a small
//! CNN on modeled PCM crossbars behind a QoS-gated serving fleet, driven
//! at offered loads up to 10× measured capacity with a 10% high-priority
//! / 90% low-priority class mix.
//!
//! What it demonstrates (and attests in `BENCH_serve_overload.json`):
//!
//! * **Typed shedding.** Under overload, low-priority requests shed with
//!   typed reasons (`overload` from the AIMD pacer, `class_budget`,
//!   `queue_full`) instead of blocking the submitter — the shed-rate
//!   curve per load multiplier is emitted per class.
//! * **Priority isolation.** High-priority requests bypass the pacer
//!   window (never the hard in-flight cap) and are composed
//!   earliest-deadline-first into batches, so the high-priority p95 under
//!   10× offered load stays within 2× of its unloaded p95
//!   (`high_priority_p95_bounded`).
//! * **Admission invariance.** Shedding changes *which* requests run,
//!   never *what* an admitted request computes: for {all-local, all-tcp,
//!   mixed} fleets with a zero-budget class forcing deterministic sheds,
//!   the admitted subset's logits are bit-identical to a solo
//!   `Session::infer_one` stream of the admitted images
//!   (`qos_invariance_ok` — the binary also exits non-zero on a
//!   violation).
//!
//! ```text
//! cargo run --release -p aimc-bench --bin serve_overload [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: fewer
//! requests and only the 1× / 10× points — it still exercises the pacer,
//! the class ledgers, and all three invariance legs end to end.

use aimc_core::ArchConfig;
use aimc_dnn::{ConvCfg, Graph, GraphBuilder, Shape, Tensor};
use aimc_platform::serve::{
    Admission, BatchPolicy, FleetHandle, FleetPolicy, PacerConfig, Pending, Priority, QosClass,
    QosOrdering, QosPolicy, RoutePolicy, ShardTransport, ShedReason, TcpTransport,
};
use aimc_platform::{Backend, Error, Platform};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::time::{Duration, Instant};

const MAX_BATCH: usize = 8;
const QUEUE_DEPTH: usize = 16;
/// One in ten requests is high priority: enough tail samples for a p95,
/// small enough that low-priority traffic carries the overload.
const HIGH_EVERY: usize = 10;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

fn platform() -> Result<Platform, Error> {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect()
}

/// The shard batch policy used by every serving phase: EDF-within-
/// priority composition (legal on fleet shards — they honor stamped
/// indices) under the given latency budget.
fn batch_policy(max_wait: Duration) -> BatchPolicy {
    BatchPolicy::new(MAX_BATCH, max_wait)
        .with_queue_depth(QUEUE_DEPTH)
        .with_qos(QosPolicy::default().with_ordering(QosOrdering::EdfWithinPriority))
}

/// A one-shard QoS fleet: AIMD pacer on (low priority rides the window,
/// high priority is capped only by the hard in-flight limit).
fn overload_fleet(platform: &Platform, batch: BatchPolicy) -> Result<FleetHandle, Error> {
    let shard = platform.local_shard(batch, &backend())?;
    let pacer = PacerConfig {
        enabled: true,
        min_window: 1,
        max_window: MAX_BATCH,
        hard_limit: QUEUE_DEPTH,
        decrease_cooldown: Duration::from_millis(1),
    };
    platform.serve_fleet_with(
        vec![Box::new(shard) as Box<dyn ShardTransport>],
        FleetPolicy::new(RoutePolicy::RoundRobin).with_pacer(pacer),
    )
}

fn p95_us(fleet: &FleetHandle, priority: Priority) -> f64 {
    fleet
        .stats()
        .aggregate()
        .qos
        .class(priority)
        .latency_percentile(0.95)
        .map_or(0.0, |d| d.as_secs_f64() * 1e6)
}

/// Per-class client-side tally of one load point.
#[derive(Default, Clone, Copy)]
struct Tally {
    offered: u64,
    admitted: u64,
    shed_overload: u64,
    shed_class_budget: u64,
    shed_queue_full: u64,
    infeasible: u64,
}

impl Tally {
    fn shed_total(&self) -> u64 {
        self.shed_overload + self.shed_class_budget + self.shed_queue_full
    }
}

/// One open-loop load point: `n` requests offered at `mult × capacity`
/// on an absolute arrival schedule (a slow iteration bursts to catch up,
/// so the *offered* rate holds even when sleeps overshoot). Returns the
/// per-class tallies and the high/low p95 from the completion ledger.
fn run_load_point(
    platform: &Platform,
    images: &[Tensor],
    capacity: f64,
    max_wait: Duration,
    mult: f64,
    n: usize,
) -> Result<([Tally; Priority::COUNT], f64, f64), Error> {
    let fleet = overload_fleet(platform, batch_policy(max_wait))?;
    let interval = Duration::from_secs_f64(1.0 / (capacity * mult));
    let mut tallies = [Tally::default(); Priority::COUNT];
    let mut pendings: Vec<Pending> = Vec::new();
    let t0 = Instant::now();
    for i in 0..n {
        let due = t0 + interval * i as u32;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let class = if i % HIGH_EVERY == 0 {
            QosClass::high()
        } else {
            QosClass::low()
        };
        let tally = &mut tallies[class.priority.rank()];
        tally.offered += 1;
        match fleet
            .submit_qos(images[i % images.len()].clone(), class)
            .expect("fleet is open")
        {
            Admission::Admitted(p) => {
                tally.admitted += 1;
                pendings.push(p);
            }
            Admission::Shed(ShedReason::Overload) => tally.shed_overload += 1,
            Admission::Shed(ShedReason::ClassBudget) => tally.shed_class_budget += 1,
            Admission::Shed(ShedReason::QueueFull) => tally.shed_queue_full += 1,
            Admission::DeadlineInfeasible { .. } => tally.infeasible += 1,
        }
    }
    for p in pendings {
        p.wait().expect("admitted request completes");
    }
    fleet.drain();
    let high = p95_us(&fleet, Priority::High);
    let low = p95_us(&fleet, Priority::Low);
    fleet.shutdown();
    Ok((tallies, high, low))
}

/// One invariance leg: a two-shard fleet under `mix` with the Low class
/// budgeted to zero (deterministic sheds), fed a fixed class mix; the
/// admitted subset must be bit-identical to a solo stream of the admitted
/// images.
fn invariance_leg(platform: &Platform, mix: &str, images: &[Tensor]) -> Result<bool, Error> {
    let batch = batch_policy(Duration::from_millis(1));
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    let mut servers = Vec::new();
    for shard_id in 0..2 {
        let remote = match mix {
            "local" => false,
            "tcp" => true,
            _ => shard_id == 1,
        };
        if remote {
            let server = platform.shard_server(batch, &backend())?;
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("loopback addr");
            servers.push(std::thread::spawn(move || {
                server
                    .serve_next(&listener)
                    .expect("serve shard connection");
            }));
            transports.push(Box::new(
                TcpTransport::connect(addr).expect("connect to shard server"),
            ));
        } else {
            transports.push(Box::new(platform.local_shard(batch, &backend())?));
        }
    }
    let fleet = platform.serve_fleet_with(
        transports,
        FleetPolicy::new(RoutePolicy::RoundRobin)
            .with_lease_len(2)
            .with_class_budget(Priority::Low, 0),
    )?;
    let mut admitted_images = Vec::new();
    let mut pendings = Vec::new();
    let mut ok = true;
    for (i, image) in images.iter().enumerate() {
        // A deterministic class cycle with some generous deadlines, so
        // the EDF sort keys and wire encoding are exercised too.
        let class = match i % 4 {
            0 => QosClass::high(),
            1 => QosClass::low(),
            2 => QosClass::default().with_deadline(Duration::from_secs(60)),
            _ => QosClass::low().with_deadline(Duration::from_secs(60)),
        };
        match fleet
            .submit_qos(image.clone(), class)
            .expect("fleet is open")
        {
            Admission::Admitted(p) => {
                ok &= class.priority != Priority::Low;
                admitted_images.push(image.clone());
                pendings.push(p);
            }
            Admission::Shed(reason) => {
                ok &= class.priority == Priority::Low && reason == ShedReason::ClassBudget;
            }
            Admission::DeadlineInfeasible { .. } => ok = false,
        }
    }
    let got: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| p.wait().expect("admitted request completes"))
        .collect();
    fleet.shutdown();
    for s in servers {
        s.join().expect("shard server settles");
    }
    // Solo reference over the admitted subset only: shedding must not
    // have shifted any survivor's stream coordinate.
    let mut session = platform.session();
    for (x, got) in admitted_images.iter().zip(&got) {
        let want = session.infer_one(x, backend())?;
        ok &= &want == got;
    }
    Ok(ok)
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n_capacity, n_unloaded, n_load) = if smoke { (24, 12, 60) } else { (64, 32, 400) };
    let multipliers: &[f64] = if smoke {
        &[1.0, 10.0]
    } else {
        &[1.0, 2.0, 5.0, 10.0]
    };

    println!(
        "QoS overload — small CNN, analog backend, {n_load} requests per load point, \
         1-in-{HIGH_EVERY} high priority{}",
        if smoke { " [smoke]" } else { "" }
    );
    let platform = platform()?;
    let images = random_images(32, 9);

    // Capacity: an ungated burst through the same shard configuration —
    // the denominator every offered-load multiplier is scaled from.
    let capacity = {
        let fleet = overload_fleet(&platform, batch_policy(Duration::from_millis(2)))?;
        let burst: Vec<Tensor> = (0..n_capacity)
            .map(|i| images[i % images.len()].clone())
            .collect();
        let t0 = Instant::now();
        let pendings: Vec<Pending> = burst
            .iter()
            .map(|x| fleet.submit(x.clone()).expect("fleet is open"))
            .collect();
        for p in pendings {
            p.wait().expect("request completes");
        }
        let dt = t0.elapsed().as_secs_f64();
        fleet.shutdown();
        n_capacity as f64 / dt
    };
    let service_us = 1e6 / capacity;
    // The latency budget dominates both the unloaded and the loaded
    // high-priority latency (EDF puts High at the front of every batch),
    // which is what keeps the 2× bound meaningful across host speeds.
    let max_wait = Duration::from_secs_f64((24.0 / capacity).max(0.004));
    println!(
        "capacity {capacity:.1} img/s (service ≈ {service_us:.0} µs, max_wait {:.1} ms)",
        max_wait.as_secs_f64() * 1e3
    );

    // Unloaded high-priority p95: closed loop, one request in flight.
    let unloaded_high_p95_us = {
        let fleet = overload_fleet(&platform, batch_policy(max_wait))?;
        for i in 0..n_unloaded {
            fleet
                .submit_qos(images[i % images.len()].clone(), QosClass::high())
                .expect("fleet is open")
                .admitted()
                .expect("idle fleet admits high priority")
                .wait()
                .expect("request completes");
        }
        let p95 = p95_us(&fleet, Priority::High);
        fleet.shutdown();
        p95
    };
    println!("unloaded high-priority p95: {unloaded_high_p95_us:.0} µs");

    println!(
        "{:>5} {:>9} {:>14} {:>14} {:>12} {:>12}",
        "load", "offered", "high adm/shed", "low adm/shed", "high p95", "low p95"
    );
    let mut curve = Vec::new();
    let mut high_p95_at_10x = f64::NAN;
    let mut low_shed_at_10x = 0u64;
    let mut tallies_at_10x = [Tally::default(); Priority::COUNT];
    for &mult in multipliers {
        let (tallies, high_p95, low_p95) =
            run_load_point(&platform, &images, capacity, max_wait, mult, n_load)?;
        let high = tallies[Priority::High.rank()];
        let low = tallies[Priority::Low.rank()];
        println!(
            "{:>4.0}x {:>9} {:>8}/{:<5} {:>8}/{:<5} {:>10.0}us {:>10.0}us",
            mult,
            n_load,
            high.admitted,
            high.shed_total(),
            low.admitted,
            low.shed_total(),
            high_p95,
            low_p95
        );
        if mult == 10.0 {
            high_p95_at_10x = high_p95;
            low_shed_at_10x = low.shed_total();
            tallies_at_10x = tallies;
        }
        curve.push(format!(
            "    {{\"multiplier\": {mult:.0}, \"offered\": {n_load}, \
             \"high\": {{\"offered\": {}, \"admitted\": {}, \"shed\": {}, \"p95_us\": {high_p95:.1}}}, \
             \"low\": {{\"offered\": {}, \"admitted\": {}, \"shed\": {}, \"p95_us\": {low_p95:.1}}}}}",
            high.offered,
            high.admitted,
            high.shed_total(),
            low.offered,
            low.admitted,
            low.shed_total(),
        ));
    }
    let high_priority_p95_bounded =
        high_p95_at_10x.is_finite() && high_p95_at_10x <= 2.0 * unloaded_high_p95_us;
    let low_sheds_under_overload = low_shed_at_10x > 0;
    println!(
        "10x: high p95 {high_p95_at_10x:.0} µs vs 2×unloaded {:.0} µs → bounded: \
         {high_priority_p95_bounded}; low sheds: {low_shed_at_10x}",
        2.0 * unloaded_high_p95_us
    );

    // Admission invariance across transports, with deterministic sheds.
    let n_inv = if smoke { 8 } else { 16 };
    let inv_images = random_images(n_inv, 23);
    let mut inv = Vec::new();
    let mut qos_invariance_ok = true;
    for mix in ["local", "tcp", "mixed"] {
        let ok = invariance_leg(&platform, mix, &inv_images)?;
        println!("qos invariance [{mix}]: {ok}");
        qos_invariance_ok &= ok;
        inv.push(format!("\"{mix}\": {ok}"));
    }

    let shed_10x: Tally = {
        let mut t = Tally::default();
        for c in &tallies_at_10x {
            t.shed_overload += c.shed_overload;
            t.shed_class_budget += c.shed_class_budget;
            t.shed_queue_full += c.shed_queue_full;
            t.infeasible += c.infeasible;
        }
        t
    };
    let json = format!(
        "{{\n  \"bench\": \"serve_overload\",\n  \"workload\": \"small_cnn_analog\",\n  \
         \"xbar\": \"hermes_256_32x4\",\n  \"smoke\": {smoke},\n  \
         \"requests_per_load_point\": {n_load},\n  \"high_every\": {HIGH_EVERY},\n  \
         \"capacity_images_per_s\": {capacity:.2},\n  \"service_est_us\": {service_us:.1},\n  \
         \"max_wait_us\": {:.1},\n  \
         \"unloaded_high_p95_us\": {unloaded_high_p95_us:.1},\n  \
         \"overload_curve\": [\n{}\n  ],\n  \
         \"shed_reasons_at_10x\": {{\"overload\": {}, \"class_budget\": {}, \
         \"queue_full\": {}, \"infeasible\": {}}},\n  \
         \"low_sheds_under_overload\": {low_sheds_under_overload},\n  \
         \"high_p95_at_10x_us\": {high_p95_at_10x:.1},\n  \
         \"high_priority_p95_bounded\": {high_priority_p95_bounded},\n  \
         \"qos_invariance\": {{{}}},\n  \
         \"qos_invariance_ok\": {qos_invariance_ok}\n}}\n",
        max_wait.as_secs_f64() * 1e6,
        curve.join(",\n"),
        shed_10x.shed_overload,
        shed_10x.shed_class_budget,
        shed_10x.shed_queue_full,
        shed_10x.infeasible,
        inv.join(", "),
    );
    let path = "BENCH_serve_overload.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");

    assert!(
        qos_invariance_ok,
        "QoS invariance violation: an admitted subset diverged from its solo reference"
    );
    assert!(
        low_sheds_under_overload,
        "10x offered load produced no low-priority sheds — admission control is not engaging"
    );
    Ok(())
}
