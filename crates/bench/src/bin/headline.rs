//! Regenerates the **Sec. VI headline metrics**: TOPS, images/s, batch
//! latency, energy, TOPS/W, GOPS/mm², clusters used — side by side with the
//! paper's reported values.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin headline [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::{Error, RunSpec};
use aimc_runtime::{AreaModel, EnergyModel};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args();
    let mut session = aimc_bench::paper_session(MappingStrategy::OnChipResiduals)?;
    let tops_executed = session.run(RunSpec::batch(batch))?.tops_executed();
    let h = session.headline(&EnergyModel::default(), &AreaModel::default())?;
    println!("Headline — end-to-end ResNet-18 inference, batch {batch}\n");
    println!("{}", h.render());
    println!(
        "energy breakdown [mJ]: analog {:.2}, digital {:.2}, noc {:.2}, hbm {:.2}, static {:.2}",
        h.energy.analog_mj,
        h.energy.digital_mj,
        h.energy.noc_mj,
        h.energy.hbm_mj,
        h.energy.static_mj
    );
    println!(
        "\ncrossbar-executed throughput: {tops_executed:.1} TOPS (full-array ops; nominal-op convention above)"
    );
    Ok(())
}
