//! Ablation: batch size. The paper's pipeline needs batches to fill
//! (Sec. IV-3: "assuming the possibility of having large batches of images
//! allows for the creation of the software pipeline"); this sweep shows
//! throughput saturating as fill/drain amortize.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin ablation_batch
//! ```

use aimc_core::{map_network, MappingStrategy};
use aimc_runtime::simulate;

fn main() {
    let g = aimc_bench::paper_graph();
    let arch = aimc_bench::paper_arch();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).expect("mapping");
    println!("Ablation — batch size on the final mapping\n");
    println!(
        "{:<7} {:>12} {:>10} {:>10} {:>14}",
        "batch", "makespan", "TOPS", "img/s", "ms per image"
    );
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let r = simulate(&g, &m, &arch, batch);
        println!(
            "{:<7} {:>12} {:>10.2} {:>10.0} {:>14.3}",
            batch,
            r.makespan.to_string(),
            r.tops(),
            r.images_per_s(),
            r.makespan.as_ms_f64() / batch as f64
        );
    }
    println!("\nexpected shape: throughput rises with batch and saturates once the");
    println!("pipeline fill/drain is amortized (the paper evaluates batch 16).");
}
