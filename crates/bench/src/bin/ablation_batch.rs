//! Ablation: batch size. The paper's pipeline needs batches to fill
//! (Sec. IV-3: "assuming the possibility of having large batches of images
//! allows for the creation of the software pipeline"); this sweep shows
//! throughput saturating as fill/drain amortize.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin ablation_batch
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::{Error, RunSpec};

fn main() -> Result<(), Error> {
    // One compiled platform; the session re-simulates per batch size only.
    let mut session = aimc_bench::paper_session(MappingStrategy::OnChipResiduals)?;
    println!("Ablation — batch size on the final mapping\n");
    println!(
        "{:<7} {:>12} {:>10} {:>10} {:>14}",
        "batch", "makespan", "TOPS", "img/s", "ms per image"
    );
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let r = session.run(RunSpec::batch(batch))?;
        println!(
            "{:<7} {:>12} {:>10.2} {:>10.0} {:>14.3}",
            batch,
            r.makespan.to_string(),
            r.tops(),
            r.images_per_s(),
            r.makespan.as_ms_f64() / batch as f64
        );
    }
    println!("\nexpected shape: throughput rises with batch and saturates once the");
    println!("pipeline fill/drain is amortized (the paper evaluates batch 16).");
    Ok(())
}
