//! Scaling benchmark for the sharded serving fleet: single-image requests
//! through `Platform::serve_fleet` (ResNet-18/CIFAR on modeled PCM
//! crossbars) at 1, 2, and 4 shards, with a built-in **fleet invariance**
//! check against direct solo `Session::infer_one` calls — same seed ⇒
//! bit-identical logits at every shard count and routing policy.
//!
//! Also runs a **remote** leg: a mixed fleet of one local shard and one
//! wire-protocol shard behind a real `ShardServer` on loopback TCP
//! (`Platform::serve_fleet_with` + `TcpTransport`, lease length 4), with
//! the same bit-identity bar — placement must be invisible in the logits.
//!
//! Emits `BENCH_shard_scaling.json` in the working directory: images/s per
//! shard count, the scaling ratios, aggregated queue-wait percentiles, the
//! remote-leg throughput, and whether every fleet logit was bit-identical
//! to the solo reference (`fleet_invariance_ok` and `remote_invariance_ok`
//! — the binary also exits non-zero on a violation, so CI can gate on
//! either signal).
//!
//! ```text
//! cargo run --release -p aimc-bench --bin shard_scaling [images] [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: fewer
//! images and reps — it still programs replica fleets at all three sizes
//! and exercises both routing policies plus the invariance check.

use aimc_core::ArchConfig;
use aimc_dnn::{resnet18_cifar, Shape, Tensor};
use aimc_platform::serve::{
    BatchPolicy, FleetPolicy, Pending, RoutePolicy, ServeStats, ShardTransport, TcpTransport,
};
use aimc_platform::{Backend, Error, Parallelism, Platform};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::time::{Duration, Instant};

fn backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256())
}

/// Direct solo reference: sequential `infer_one` calls on one session, no
/// serving layer — the stream every fleet must reproduce bit for bit.
fn run_direct(platform: &Platform, images: &[Tensor]) -> Result<(f64, Vec<Tensor>), Error> {
    let mut session = platform.session();
    session.program(&backend())?;
    let t0 = Instant::now();
    let logits = images
        .iter()
        .map(|x| session.infer_one(x, backend()))
        .collect::<Result<Vec<_>, _>>()?;
    let dt = t0.elapsed().as_secs_f64();
    Ok((images.len() as f64 / dt, logits))
}

/// One fleet measurement: program `n_shards` replicas, submit every image
/// in order through the router, wait for all completions. Programming is
/// excluded from the timing (a one-off deployment cost on non-volatile
/// hardware). Returns images/s, the logits in stream order, and the
/// aggregated stats.
fn run_fleet(
    platform: &Platform,
    images: &[Tensor],
    n_shards: usize,
    route: RoutePolicy,
    par: Parallelism,
) -> Result<(f64, Vec<Tensor>, ServeStats), Error> {
    let policy =
        BatchPolicy::new(4, Duration::from_millis(5)).with_queue_depth(images.len().max(1));
    let fleet = platform.serve_fleet(n_shards, policy, route, &backend())?;
    fleet.set_parallelism(par);
    let t0 = Instant::now();
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| fleet.submit(x.clone()).expect("fleet is open"))
        .collect();
    let logits: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| p.wait().expect("request completes"))
        .collect();
    let dt = t0.elapsed().as_secs_f64();
    fleet.shutdown();
    let stats = fleet.stats().aggregate();
    Ok((images.len() as f64 / dt, logits, stats))
}

/// The remote leg: one local shard plus one wire-protocol shard behind a
/// `ShardServer` on loopback TCP, assembled through `serve_fleet_with`
/// with lease length 4 — requests stream over a real socket and the
/// logits must still be bit-identical to the solo reference.
fn run_remote_fleet(
    platform: &Platform,
    images: &[Tensor],
) -> Result<(f64, Vec<Tensor>, ServeStats), Error> {
    let policy =
        BatchPolicy::new(4, Duration::from_millis(5)).with_queue_depth(images.len().max(1));
    let server = platform.shard_server(policy, &backend())?;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("loopback addr");
    let server_thread = std::thread::spawn(move || {
        server
            .serve_next(&listener)
            .expect("serve shard connection");
    });
    let remote = TcpTransport::connect(addr).expect("connect to shard server");
    let local = platform.local_shard(policy, &backend())?;
    let transports: Vec<Box<dyn ShardTransport>> = vec![Box::new(local), Box::new(remote)];
    let fleet = platform.serve_fleet_with(
        transports,
        FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(4),
    )?;
    let t0 = Instant::now();
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| fleet.submit(x.clone()).expect("fleet is open"))
        .collect();
    let logits: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| p.wait().expect("request completes"))
        .collect();
    let dt = t0.elapsed().as_secs_f64();
    let stats = fleet.stats().aggregate();
    fleet.shutdown();
    server_thread.join().expect("shard server settles");
    Ok((images.len() as f64 / dt, logits, stats))
}

fn percentile_us(stats: &ServeStats, p: f64) -> f64 {
    stats
        .queue_wait_percentile(p)
        .map_or(0.0, |d| d.as_secs_f64() * 1e6)
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let images_n = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 8 } else { 32 });
    let reps = if smoke { 1 } else { 3 };
    let shard_counts = [1usize, 2, 4];

    let shape = Shape::new(3, 32, 32);
    let mut rng = StdRng::seed_from_u64(9);
    let images: Vec<Tensor> = (0..images_n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Sharded-fleet scaling — ResNet-18/CIFAR, analog backend, \
         {images_n} images, {reps} rep(s), host parallelism {host_cpus}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;

    // Reference logits and direct (no serving layer) throughput.
    let (direct_ips, reference) = run_direct(&platform, &images)?;
    let mut invariance_ok = true;

    // Shards run concurrently (one worker thread each); per-shard batches
    // additionally fan out across images where the host allows. Neither
    // changes a logit (checked below), only wall-clock.
    let par = if host_cpus > 1 {
        Parallelism::Threads((host_cpus / shard_counts[shard_counts.len() - 1]).max(1))
    } else {
        Parallelism::Serial
    };

    // Both routing policies must agree bit-for-bit; round-robin is the
    // throughput-reported configuration.
    let (_, lqd_logits, _) = run_fleet(
        &platform,
        &images,
        2,
        RoutePolicy::LeastQueueDepth,
        Parallelism::Serial,
    )?;
    invariance_ok &= lqd_logits == reference;

    // Remote leg: mixed local + loopback-TCP fleet, same bit-identity bar.
    let (remote_ips, remote_logits, remote_stats) = run_remote_fleet(&platform, &images)?;
    let remote_invariance_ok = remote_logits == reference;

    let mut best: Vec<(usize, f64, ServeStats)> = Vec::new();
    for &n_shards in &shard_counts {
        let mut best_ips = 0.0f64;
        let mut best_stats = ServeStats::default();
        for _ in 0..reps {
            let (ips, logits, stats) =
                run_fleet(&platform, &images, n_shards, RoutePolicy::RoundRobin, par)?;
            invariance_ok &= logits == reference;
            if ips > best_ips {
                best_ips = ips;
                best_stats = stats;
            }
        }
        best.push((n_shards, best_ips, best_stats));
    }

    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "mode", "img/s", "scaling", "p50 wait", "p95 wait"
    );
    println!(
        "{:<16} {:>10.3} {:>10} {:>12} {:>12}",
        "direct", direct_ips, "-", "-", "-"
    );
    let base_ips = best[0].1;
    for (n_shards, ips, stats) in &best {
        println!(
            "{:<16} {:>10.3} {:>9.2}x {:>10.0}us {:>10.0}us",
            format!("fleet x{n_shards}"),
            ips,
            ips / base_ips,
            percentile_us(stats, 0.5),
            percentile_us(stats, 0.95),
        );
    }
    println!(
        "{:<16} {:>10.3} {:>10} {:>10.0}us {:>10.0}us",
        "remote 1L+1T",
        remote_ips,
        "-",
        percentile_us(&remote_stats, 0.5),
        percentile_us(&remote_stats, 0.95),
    );
    println!("fleet-invariance (any shard count, any policy): {invariance_ok}");
    println!("remote-invariance (mixed local + loopback TCP): {remote_invariance_ok}");

    let shard_json: Vec<String> = best
        .iter()
        .map(|(n_shards, ips, stats)| {
            format!(
                "{{\"shards\": {n_shards}, \"images_per_s\": {ips:.4}, \
                 \"scaling_vs_1\": {:.4}, \"queue_wait_p50_us\": {:.1}, \
                 \"queue_wait_p95_us\": {:.1}, \"mean_batch\": {:.3}}}",
                ips / base_ips,
                percentile_us(stats, 0.5),
                percentile_us(stats, 0.95),
                stats.mean_batch(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"workload\": \"resnet18_cifar10_analog\",\n  \
         \"xbar\": \"hermes_256\",\n  \"images\": {images_n},\n  \"reps\": {reps},\n  \
         \"smoke\": {smoke},\n  \"host_cpus\": {host_cpus},\n  \
         \"route_policies_checked\": [\"round_robin\", \"least_queue_depth\"],\n  \
         \"direct_images_per_s\": {direct_ips:.4},\n  \
         \"fleet\": [\n    {}\n  ],\n  \
         \"remote\": {{\"transports\": \"1 local + 1 tcp-loopback\", \"lease_len\": 4, \
         \"images_per_s\": {remote_ips:.4}, \"queue_wait_p95_us\": {:.1}}},\n  \
         \"fleet_invariance_ok\": {invariance_ok},\n  \
         \"remote_invariance_ok\": {remote_invariance_ok}\n}}\n",
        shard_json.join(",\n    "),
        percentile_us(&remote_stats, 0.95),
    );
    let path = "BENCH_shard_scaling.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");

    assert!(
        invariance_ok,
        "fleet invariance violation: sharded logits diverged from solo reference"
    );
    assert!(
        remote_invariance_ok,
        "remote invariance violation: wire-transported logits diverged from solo reference"
    );
    Ok(())
}
