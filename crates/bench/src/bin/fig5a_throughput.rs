//! Regenerates **Fig. 5A** — throughput across the mapping optimizations:
//! naive → data-replication/parallelization → on-chip residuals.
//!
//! The paper reports ≈1.6× for replication/parallelization and ≈1.9× for
//! the on-chip residual placement; our factors are larger because the naive
//! baseline is more unbalanced (see EXPERIMENTS.md §Fig. 5A).
//!
//! ```text
//! cargo run --release -p aimc-bench --bin fig5a_throughput [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::Error;

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args();
    println!("Fig. 5A — ResNet-18 throughput by mapping optimization (batch {batch})\n");
    println!(
        "{:<30} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "strategy", "clusters", "TOPS", "img/s", "gain", "cum."
    );
    let mut prev: Option<f64> = None;
    let mut first: Option<f64> = None;
    for strategy in MappingStrategy::ALL {
        let (_, m, r) = aimc_bench::run_paper(strategy, batch)?;
        let tops = r.tops();
        let gain = prev.map_or(1.0, |p| tops / p);
        let cum = first.map_or(1.0, |f| tops / f);
        println!(
            "{:<30} {:>9} {:>10.2} {:>10.0} {:>7.2}x {:>7.2}x",
            strategy.label(),
            m.n_clusters_used,
            tops,
            r.images_per_s(),
            gain,
            cum
        );
        prev = Some(tops);
        first = first.or(Some(tops));
    }
    println!("\npaper gains: replication+parallelization 1.6x (+61 clusters), on-chip residuals 1.9x (+2 clusters)");
    Ok(())
}
