//! Regenerates **Table I** — the architecture parameters of the platform.
//!
//! ```text
//! cargo run -p aimc-bench --bin table1_params
//! ```

fn main() {
    println!("Table I: GVSOC architecture parameters (reproduced platform)\n");
    println!("{}", aimc_bench::paper_arch());
}
