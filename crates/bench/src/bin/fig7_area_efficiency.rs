//! Regenerates **Fig. 7** — area efficiency (GOPS/mm²) per layer group,
//! communication inefficiencies excluded.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin fig7_area_efficiency
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::Error;
use aimc_runtime::{group_area_efficiency, AreaModel};

fn main() -> Result<(), Error> {
    // A static analysis of the compiled mapping — no timing run needed.
    let platform = aimc_bench::paper_platform(MappingStrategy::OnChipResiduals)?;
    let eff = group_area_efficiency(
        platform.graph(),
        platform.mapping(),
        platform.arch(),
        &AreaModel::default(),
    );
    println!("Fig. 7 — area efficiency per layer group (no communication)\n");
    println!(
        "{:<6} {:<12} {:>9} {:>12} {:>14}",
        "group", "IFM shape", "clusters", "GOP/image", "GOPS/mm2"
    );
    let max = eff.iter().map(|e| e.gops_per_mm2).fold(0.0f64, f64::max);
    for e in &eff {
        let bar = "#".repeat(((e.gops_per_mm2 / max.max(1e-9)) * 40.0) as usize);
        println!(
            "{:<6} {:<12} {:>9} {:>12.3} {:>14.1}  {bar}",
            e.group,
            e.label,
            e.clusters,
            e.ops_per_image as f64 / 1e9,
            e.gops_per_mm2
        );
    }
    println!("\npaper: group 3 peaks (Layer 12 at 600 GOPS/mm2); group 5 lowest (~50 GOPS/mm2)");
    Ok(())
}
