//! Throughput benchmark for the async micro-batching serving layer:
//! single-image requests through `Session::serve` (ResNet-18/CIFAR on
//! modeled PCM crossbars), solo (`max_batch = 1`) vs batched
//! (`max_batch = 16`) scheduling, with a built-in batch-composition
//! invariance check against direct solo `Session::infer_one` calls.
//!
//! Emits `BENCH_serve_throughput.json` in the working directory:
//! images/s per serving mode, p50/p95 queue latency, the batched/solo
//! speedup, and whether every served logit was bit-identical to the solo
//! reference (`batch_invariance_ok` — the binary also exits non-zero on a
//! violation, so CI can gate on either signal).
//!
//! Throughput and latency are measured in **separate phases**: throughput
//! from a burst that submits the whole stream up front (keeps the
//! scheduler saturated), latency from a closed loop that holds at most
//! `max_batch` requests in flight. Reporting queue waits from the burst
//! would only restate the backlog — the median request sits behind half
//! the stream, reading ~0.4 s of "wait" at trivial load.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin serve_throughput [images] [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: fewer
//! images and reps — it still exercises programming, the scheduler, and
//! the invariance check end to end.

use aimc_core::ArchConfig;
use aimc_dnn::{resnet18_cifar, Shape, Tensor};
use aimc_platform::serve::{BatchPolicy, Pending, ServeStats};
use aimc_platform::{Backend, Error, Parallelism, Platform, RunSpec, Session};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256())
}

/// A fresh programmed session (programming excluded from all timings —
/// it is a one-off deployment cost on non-volatile hardware).
fn programmed_session(platform: &Platform) -> Result<Session, Error> {
    let mut session = platform.session();
    session.program(&backend())?;
    Ok(session)
}

/// Direct solo reference: sequential `infer_one` calls, no serving layer.
fn run_direct(platform: &Platform, images: &[Tensor]) -> Result<(f64, Vec<Tensor>), Error> {
    let mut session = programmed_session(platform)?;
    let t0 = Instant::now();
    let logits = images
        .iter()
        .map(|x| session.infer_one(x, backend()))
        .collect::<Result<Vec<_>, _>>()?;
    let dt = t0.elapsed().as_secs_f64();
    Ok((images.len() as f64 / dt, logits))
}

/// One serving measurement: submit every image in order through a fresh
/// handle, wait for all completions. Returns images/s, the logits in
/// stream order, and the handle's stats.
fn run_served(
    platform: &Platform,
    images: &[Tensor],
    max_batch: usize,
    par: Parallelism,
) -> Result<(f64, Vec<Tensor>, ServeStats), Error> {
    let mut session = programmed_session(platform)?;
    session.set_parallelism(par);
    let policy =
        BatchPolicy::new(max_batch, Duration::from_millis(5)).with_queue_depth(images.len().max(1));
    let handle = session.serve(policy)?;
    let t0 = Instant::now();
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| handle.submit(x.clone()).expect("handle is open"))
        .collect();
    let logits: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| p.wait().expect("request completes"))
        .collect();
    let dt = t0.elapsed().as_secs_f64();
    handle.shutdown();
    let stats = handle.stats();
    Ok((images.len() as f64 / dt, logits, stats))
}

/// Latency measurement, decoupled from the burst: a closed loop holding
/// at most `max_batch` requests in flight, so each queue-wait sample
/// reflects scheduling and service delay rather than the self-inflicted
/// backlog of an up-front burst. Returns the logits (stream order) and
/// the handle's stats, whose queue waits feed the reported percentiles.
fn run_paced(
    platform: &Platform,
    images: &[Tensor],
    max_batch: usize,
    par: Parallelism,
) -> Result<(Vec<Tensor>, ServeStats), Error> {
    let mut session = programmed_session(platform)?;
    session.set_parallelism(par);
    let policy =
        BatchPolicy::new(max_batch, Duration::from_millis(5)).with_queue_depth(images.len().max(1));
    let handle = session.serve(policy)?;
    let window = max_batch.max(1);
    let mut in_flight: std::collections::VecDeque<Pending> = std::collections::VecDeque::new();
    let mut logits = Vec::with_capacity(images.len());
    for x in images {
        if in_flight.len() >= window {
            let p = in_flight.pop_front().expect("non-empty window");
            logits.push(p.wait().expect("request completes"));
        }
        in_flight.push_back(handle.submit(x.clone()).expect("handle is open"));
    }
    for p in in_flight {
        logits.push(p.wait().expect("request completes"));
    }
    handle.shutdown();
    let stats = handle.stats();
    Ok((logits, stats))
}

fn percentile_us(stats: &ServeStats, p: f64) -> f64 {
    stats
        .queue_wait_percentile(p)
        .map_or(0.0, |d| d.as_secs_f64() * 1e6)
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let images_n = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 8 } else { 32 });
    let reps = if smoke { 1 } else { 5 };
    // The paper's batch-16 pipeline, capped to the largest batch size
    // that divides the stream into full batches (a trailing partial batch
    // would idle for `max_wait` once the submitter stops — a tail
    // artifact, not a throughput fact).
    let batched_max = (1..=images_n.min(16))
        .rev()
        .find(|d| images_n % d == 0)
        .unwrap_or(1);

    let shape = Shape::new(3, 32, 32);
    let mut rng = StdRng::seed_from_u64(9);
    let images: Vec<Tensor> = (0..images_n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Serving-layer throughput — ResNet-18/CIFAR, analog backend, \
         {images_n} images, {reps} rep(s), host parallelism {host_cpus}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;

    // Reference logits and direct (no serving layer) throughput.
    let (mut direct_ips, reference) = run_direct(&platform, &images)?;
    let mut invariance_ok = true;

    // Batched serving fans images across workers where the host allows;
    // solo serving (one image per batch) has nothing to fan out. Thread
    // count never changes a logit (checked below), only wall-clock.
    let batched_par = if host_cpus > 1 {
        Parallelism::Threads(host_cpus.min(4))
    } else {
        Parallelism::Serial
    };
    let mut solo_best: Option<(f64, ServeStats)> = None;
    let mut batched_best: Option<(f64, ServeStats)> = None;
    for _ in 0..reps {
        let (ips, _) = run_direct(&platform, &images)?;
        direct_ips = direct_ips.max(ips);
        for (max_batch, par, best) in [
            (1usize, Parallelism::Serial, &mut solo_best),
            (batched_max, batched_par, &mut batched_best),
        ] {
            let (ips, logits, stats) = run_served(&platform, &images, max_batch, par)?;
            invariance_ok &= logits == reference;
            if best.as_ref().is_none_or(|(b, _)| ips > *b) {
                *best = Some((ips, stats));
            }
        }
    }
    let (solo_ips, solo_stats) = solo_best.expect("reps >= 1");
    let (batched_ips, batched_stats) = batched_best.expect("reps >= 1");
    let speedup = batched_ips / solo_ips;

    // Latency phase (closed loop, window = max_batch): the queue-wait
    // percentiles reported below come from here, not from the saturating
    // burst above.
    let (solo_paced_logits, solo_paced) = run_paced(&platform, &images, 1, Parallelism::Serial)?;
    invariance_ok &= solo_paced_logits == reference;
    let (batched_paced_logits, batched_paced) =
        run_paced(&platform, &images, batched_max, batched_par)?;
    invariance_ok &= batched_paced_logits == reference;

    // The modeled AIMC platform's view of the same trade (deterministic,
    // from the timing simulator): pipelined batches amortize fill/drain
    // across the cluster pipeline — the paper's reason to serve batch-16.
    let mut timing = platform.session();
    let modeled_b1 = timing.run(RunSpec::batch(1))?.images_per_s();
    let modeled_bn = timing.run(RunSpec::batch(batched_max))?.images_per_s();

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "mode", "img/s", "p50 wait", "p95 wait", "mean batch"
    );
    println!(
        "{:<22} {:>10.3} {:>12} {:>12} {:>12}",
        "direct", direct_ips, "-", "-", "-"
    );
    let batched_label = format!("serve max_batch={batched_max}");
    for (name, ips, paced, burst) in [
        ("serve max_batch=1", solo_ips, &solo_paced, &solo_stats),
        (
            batched_label.as_str(),
            batched_ips,
            &batched_paced,
            &batched_stats,
        ),
    ] {
        println!(
            "{:<22} {:>10.3} {:>10.0}us {:>10.0}us {:>12.2}",
            name,
            ips,
            percentile_us(paced, 0.5),
            percentile_us(paced, 0.95),
            burst.mean_batch()
        );
    }
    println!("batched/solo speedup: {speedup:.3}x   batch-invariance: {invariance_ok}");
    println!(
        "modeled AIMC pipeline: batch 1 {:.0} img/s, batch {batched_max} {:.0} img/s ({:.2}x)",
        modeled_b1,
        modeled_bn,
        modeled_bn / modeled_b1
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"workload\": \"resnet18_cifar10_analog\",\n  \
         \"xbar\": \"hermes_256\",\n  \"images\": {images_n},\n  \"reps\": {reps},\n  \
         \"smoke\": {smoke},\n  \"host_cpus\": {host_cpus},\n  \
         \"queue_wait_measurement\": \"closed_loop_window_max_batch\",\n  \
         \"direct_images_per_s\": {direct_ips:.4},\n  \
         \"solo\": {{\"max_batch\": 1, \"images_per_s\": {solo_ips:.4}, \
         \"queue_wait_p50_us\": {:.1}, \"queue_wait_p95_us\": {:.1}, \
         \"mean_batch\": {:.3}}},\n  \
         \"batched\": {{\"max_batch\": {batched_max}, \"images_per_s\": {batched_ips:.4}, \
         \"queue_wait_p50_us\": {:.1}, \"queue_wait_p95_us\": {:.1}, \
         \"mean_batch\": {:.3}}},\n  \
         \"batched_over_solo\": {speedup:.4},\n  \
         \"modeled_pipeline\": {{\"batch1_images_per_s\": {modeled_b1:.1}, \
         \"batch{batched_max}_images_per_s\": {modeled_bn:.1}}},\n  \
         \"batch_invariance_ok\": {invariance_ok}\n}}\n",
        percentile_us(&solo_paced, 0.5),
        percentile_us(&solo_paced, 0.95),
        solo_stats.mean_batch(),
        percentile_us(&batched_paced, 0.5),
        percentile_us(&batched_paced, 0.95),
        batched_stats.mean_batch(),
    );
    let path = "BENCH_serve_throughput.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");

    assert!(
        invariance_ok,
        "batch-composition invariance violation: served logits diverged from solo reference"
    );
    Ok(())
}
