//! Cross-network comparison: maps and executes several DNNs on the paper's
//! platform — the generality the paper claims over VGG-only prior work
//! (ISAAC, PUMA) by handling residual dataflow loops.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin networks [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_dnn::{mobilenet_v1_lite, resnet18, resnet34, vgg11, vgg16, Graph};
use aimc_platform::{Error, Platform, RunSpec};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args().min(8);
    let nets: Vec<(&str, Graph)> = vec![
        ("resnet18@256", resnet18(256, 256, 1000)),
        ("resnet34@256", resnet34(256, 256, 1000)),
        ("vgg11@224", vgg11(224, 224, 1000)),
        ("vgg16@224", vgg16(224, 224, 1000)),
        ("mobilenetv1@224", mobilenet_v1_lite(224, 224, 1000)),
    ];
    println!("Cross-network mapping + execution (batch {batch})\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "network", "GMAC/img", "params M", "clusters", "resid KB", "TOPS", "img/s"
    );
    for (name, g) in nets {
        let macs = g.total_macs();
        let params = g.total_params();
        match Platform::builder()
            .graph(g)
            .arch(aimc_bench::paper_arch())
            .strategy(MappingStrategy::OnChipResiduals)
            .build()
        {
            Ok(platform) => {
                let clusters = platform.mapping().n_clusters_used;
                let resid_kb = platform.mapping().residuals.total_bytes as f64 / 1024.0;
                let mut session = platform.session();
                let r = session.run(RunSpec::batch(batch))?;
                println!(
                    "{:<14} {:>9.2} {:>9.2} {:>9} {:>10.0} {:>9.2} {:>10.0}",
                    name,
                    macs as f64 / 1e9,
                    params as f64 / 1e6,
                    clusters,
                    resid_kb,
                    r.tops(),
                    r.images_per_s()
                );
            }
            Err(e) => println!("{:<14} does not map: {e}", name),
        }
    }
    println!("\nVGG nets carry zero residual storage; ResNets pay for their skip edges —");
    println!("the dataflow-loop handling that distinguishes this architecture from");
    println!("pipelined VGG-only designs (Sec. I).");
    Ok(())
}
