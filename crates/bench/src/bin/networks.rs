//! Cross-network comparison: maps and executes several DNNs on the paper's
//! platform — the generality the paper claims over VGG-only prior work
//! (ISAAC, PUMA) by handling residual dataflow loops.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin networks [batch]
//! ```

use aimc_core::{map_network, MappingStrategy};
use aimc_dnn::{mobilenet_v1_lite, resnet18, resnet34, vgg11, vgg16, Graph};
use aimc_runtime::simulate;

fn main() {
    let batch = aimc_bench::batch_from_args().min(8);
    let arch = aimc_bench::paper_arch();
    let nets: Vec<(&str, Graph)> = vec![
        ("resnet18@256", resnet18(256, 256, 1000)),
        ("resnet34@256", resnet34(256, 256, 1000)),
        ("vgg11@224", vgg11(224, 224, 1000)),
        ("vgg16@224", vgg16(224, 224, 1000)),
        ("mobilenetv1@224", mobilenet_v1_lite(224, 224, 1000)),
    ];
    println!("Cross-network mapping + execution (batch {batch})\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "network", "GMAC/img", "params M", "clusters", "resid KB", "TOPS", "img/s"
    );
    for (name, g) in nets {
        match map_network(&g, &arch, MappingStrategy::OnChipResiduals) {
            Ok(m) => {
                let r = simulate(&g, &m, &arch, batch);
                println!(
                    "{:<14} {:>9.2} {:>9.2} {:>9} {:>10.0} {:>9.2} {:>10.0}",
                    name,
                    g.total_macs() as f64 / 1e9,
                    g.total_params() as f64 / 1e6,
                    m.n_clusters_used,
                    m.residuals.total_bytes as f64 / 1024.0,
                    r.tops(),
                    r.images_per_s()
                );
            }
            Err(e) => println!("{:<14} does not map: {e}", name),
        }
    }
    println!("\nVGG nets carry zero residual storage; ResNets pay for their skip edges —");
    println!("the dataflow-loop handling that distinguishes this architecture from");
    println!("pipelined VGG-only designs (Sec. I).");
}
