//! `mvm_kernels` — single-core analog-MVM kernel benchmark.
//!
//! Three kernels over the ResNet-18/CIFAR-10 tile census of a `hermes_256`
//! deployment (the per-image analog hot loop):
//!
//! * **legacy** — a faithful in-bench reimplementation of the pre-packing
//!   `mvm_core`: per-call `Vec` allocations, divide-form normalize /
//!   quantize / ADC, Box–Muller read noise per bit line. This is the
//!   baseline the headline speedup is measured against, compiled with the
//!   same flags as everything else in this binary.
//! * **reference** — the current scalar reference kernel
//!   ([`Crossbar::mvm_reference_at`]): same audited helpers and noise
//!   stream as the packed kernel, old loop structure, allocating.
//! * **packed** — the production bit-packed kernel
//!   ([`Crossbar::mvm_into_with`]) with a warm caller-owned scratch.
//!
//! Also sweeps the bit-serial kernels over input bit widths and asserts
//! the packed ↔ reference **bit-identity** contract; the `--smoke` mode
//! used by CI runs the assertions with shortened timing loops. Results go
//! to `BENCH_mvm_kernels.json`; the `kernel_equivalence_ok=true` line on
//! stdout is the CI grep gate.
//!
//! Timing is min-of-rounds: the minimum mean ns/call over several
//! measurement rounds, which is robust against host frequency and steal
//! noise on small shared machines.
//!
//! Setting `AIMC_BENCH_SIGMA0=1` times the census with read noise
//! disabled — a diagnostic split separating accumulation cost from the
//! Gaussian sampler's share (the JSON records which mode ran).

use aimc_xbar::{noise, stream, Crossbar, MvmScratch, XbarConfig, DAC_BATCH};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// ResNet-18/CIFAR-10 on 256×256 arrays: `(rows, cols, MVMs per image)`.
///
/// Rows/cols are the dominant tile shapes after im2col tiling (3×3×{3,16}
/// and 3×3×16→192-row blocks, 1×1 projections fold into neighbours);
/// the MVM counts are the per-image tile-invocation census of the
/// `parallel_infer` workload's analog layers.
const CENSUS: [(usize, usize, u64); 4] = [
    (27, 16, 1024),
    (144, 16, 4096),
    (144, 32, 2048),
    (192, 64, 960),
];

/// Bit widths of the bit-serial sweep.
const SWEEP_BITS: [u32; 4] = [4, 8, 12, 16];

/// Shapes of the bit-serial sweep (narrow and wide).
const SWEEP_SHAPES: [(usize, usize); 2] = [(144, 16), (192, 64)];

/// Min-of-rounds ns/call.
fn time_min(rounds: usize, reps: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for i in 0..reps {
            f(i);
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64 * 1e9);
    }
    best
}

/// The pre-packing analog MVM kernel, reimplemented verbatim from the old
/// `mvm_core` against a conductance matrix read back from the array.
struct LegacyKernel {
    g: Vec<f64>,
    rows: usize,
    cols: usize,
    cfg: XbarConfig,
    noise_seed: u64,
    w_scale: f64,
}

impl LegacyKernel {
    /// Rebuilds the legacy kernel's state from a programmed array. The
    /// conductances round-trip through `stored_weight`'s f32, so legacy
    /// outputs match the packed kernel only to f32 precision — enough for
    /// the sanity check below; timing is unaffected.
    fn from_xbar(xb: &Crossbar) -> Self {
        let (rows, cols) = (xb.rows_used(), xb.cols_used());
        let w_scale = xb.weight_scale();
        let g = (0..rows)
            .flat_map(|r| (0..cols).map(move |c| xb.stored_weight(r, c) as f64 / w_scale))
            .collect();
        LegacyKernel {
            g,
            rows,
            cols,
            cfg: xb.config().clone(),
            noise_seed: xb.noise_seed(),
            w_scale,
        }
    }

    /// The old hot path: allocates `xq` and `acc` every call, normalizes
    /// and quantizes with divisions, draws Box–Muller read noise.
    fn mvm_into_at(&self, x: &[f32], out: &mut [f32], invocation: u64) {
        let dac_levels = ((1u64 << self.cfg.dac_bits) - 1) as f64 / 2.0; // per polarity
        let clip = self.cfg.x_clip;
        let mut xq = Vec::with_capacity(x.len());
        let mut x_scale = 0.0f64;
        for &xi in x {
            x_scale = x_scale.max(xi.abs() as f64);
        }
        let x_scale = if x_scale > 0.0 { x_scale } else { 1.0 };
        for &xi in x {
            let v = (xi as f64 / x_scale).clamp(-clip, clip);
            xq.push((v * dac_levels).round() / dac_levels);
        }

        let cols = self.cols;
        let mut acc = vec![0.0f64; cols];
        for (r, &xr) in xq.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.g[r * cols..(r + 1) * cols];
            for (c, &g) in row.iter().enumerate() {
                acc[c] += xr * g;
            }
        }

        if self.cfg.read_noise_sigma > 0.0 {
            let mut rng = StdRng::seed_from_u64(stream::derive(self.noise_seed, invocation));
            let sigma = self.cfg.read_noise_sigma * (self.rows as f64).sqrt();
            for a in acc.iter_mut() {
                *a += noise::gaussian(&mut rng, sigma);
            }
        }

        let fs = self.cfg.adc_headroom * self.rows as f64 * clip;
        let adc_levels = ((1u64 << self.cfg.adc_bits.min(31)) - 1) as f64 / 2.0;
        let back_scale = self.w_scale * x_scale;
        for (c, a) in acc.iter().enumerate() {
            let clipped = a.clamp(-fs, fs);
            let q = (clipped / fs * adc_levels).round() / adc_levels * fs;
            out[c] = (q * back_scale) as f32;
        }
    }
}

/// A programmed array plus a ReLU-like input (≈half the rows silent, like
/// post-activation feature maps).
fn make_case(cfg: &XbarConfig, rows: usize, cols: usize, seed: u64) -> (Crossbar, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f32> = (0..rows * cols)
        .map(|i| ((i * 37 % 64) as f32 - 32.0) / 32.0)
        .collect();
    let xb = Crossbar::program(cfg, &w, rows, cols, &mut rng).unwrap();
    let x: Vec<f32> = (0..rows)
        .map(|_| {
            let v: f32 = rng.gen_range(-1.0..1.0);
            if v < 0.0 {
                0.0
            } else {
                v
            }
        })
        .collect();
    (xb, x)
}

/// Packed ≡ reference bit-identity over DAC and bit-serial paths, plus
/// adversarial input patterns (zeros, sign flips, saturation).
fn check_equivalence() -> bool {
    let cfg = XbarConfig::hermes_256();
    let mut scratch = MvmScratch::new();
    let mut ok = true;
    for &(rows, cols, _) in &CENSUS {
        let (xb, relu_x) = make_case(&cfg, rows, cols, 7 + rows as u64);
        let patterns: Vec<Vec<f32>> = vec![
            relu_x.clone(),
            vec![0.0; rows],
            (0..rows)
                .map(|i| if i % 2 == 0 { -1.0 } else { 1.0 })
                .collect(),
            (0..rows)
                .map(|i| (i as f32 - rows as f32 / 2.0) * 100.0)
                .collect(),
        ];
        for (p, x) in patterns.iter().enumerate() {
            for inv in [0u64, 3, 11] {
                let want = xb.mvm_reference_at(x, inv).unwrap();
                let mut got = vec![0.0f32; cols];
                xb.mvm_into_with(x, &mut got, inv, &mut scratch).unwrap();
                if want
                    .iter()
                    .zip(&got)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    eprintln!("MISMATCH dac {rows}x{cols} pattern {p} inv {inv}");
                    ok = false;
                }
                for bits in [1u32, 4, 8, 12, 16] {
                    let want = xb.mvm_bit_serial_reference_at(x, bits, inv).unwrap();
                    let mut got = vec![0.0f32; cols];
                    xb.mvm_bit_serial_into_with(x, bits, &mut got, inv, &mut scratch)
                        .unwrap();
                    if want
                        .iter()
                        .zip(&got)
                        .any(|(a, b)| a.to_bits() != b.to_bits())
                    {
                        eprintln!("MISMATCH bs{bits} {rows}x{cols} pattern {p} inv {inv}");
                        ok = false;
                    }
                }
            }
        }
        // Batched path: all patterns as one batch (4 + 0-remainder here is
        // covered by the unit tests; this exercises census shapes), each
        // patch bit-identical to its single call.
        let k = patterns.len();
        let xs: Vec<f32> = patterns.iter().flat_map(|p| p.iter().copied()).collect();
        let invocations: Vec<u64> = (0..k as u64).map(|p| 100 + 7 * p).collect();
        let mut batch = vec![0.0f32; k * cols];
        xb.mvm_batch_into_with(&xs, &mut batch, &invocations, &mut scratch)
            .unwrap();
        for (p, x) in patterns.iter().enumerate() {
            let mut single = vec![0.0f32; cols];
            xb.mvm_into_with(x, &mut single, invocations[p], &mut scratch)
                .unwrap();
            if single
                .iter()
                .zip(&batch[p * cols..(p + 1) * cols])
                .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                eprintln!("MISMATCH batch {rows}x{cols} patch {p}");
                ok = false;
            }
        }
    }
    ok
}

/// Legacy ↔ packed agreement on a noiseless array. The legacy matrix is
/// an f32 read-back and its quantize divides where the packed kernel
/// multiplies by reciprocals, so a pre-ADC value sitting on a rounding
/// boundary may land one ADC code apart — the tolerance is one ADC step
/// (any indexing or scaling bug would miss by many steps).
fn check_legacy_sanity() -> bool {
    let mut cfg = XbarConfig::hermes_256();
    cfg.read_noise_sigma = 0.0;
    let mut scratch = MvmScratch::new();
    let mut ok = true;
    for &(rows, cols, _) in &CENSUS {
        let (xb, x) = make_case(&cfg, rows, cols, 19 + cols as u64);
        let legacy = LegacyKernel::from_xbar(&xb);
        let mut want = vec![0.0f32; cols];
        legacy.mvm_into_at(&x, &mut want, 5);
        let mut got = vec![0.0f32; cols];
        xb.mvm_into_with(&x, &mut got, 5, &mut scratch).unwrap();
        let fs = cfg.adc_headroom * rows as f64 * cfg.x_clip;
        let adc_levels = ((1u64 << cfg.adc_bits.min(31)) - 1) as f64 / 2.0;
        let x_scale = x
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs() as f64))
            .max(1.0);
        let step = fs / adc_levels * xb.weight_scale() * x_scale;
        if want
            .iter()
            .zip(&got)
            .any(|(a, b)| (a - b).abs() as f64 > 1.01 * step)
        {
            eprintln!("LEGACY MISMATCH {rows}x{cols}");
            ok = false;
        }
    }
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, reps_dac, reps_bs) = if smoke { (2, 40, 10) } else { (7, 2000, 400) };

    let equivalence_ok = check_equivalence() && check_legacy_sanity();
    println!("kernel_equivalence_ok={equivalence_ok}");
    assert!(
        equivalence_ok,
        "packed kernels are not bit-identical to the scalar reference"
    );

    let mut cfg = XbarConfig::hermes_256();
    let sigma0 = std::env::var("AIMC_BENCH_SIGMA0").is_ok_and(|v| v == "1");
    if sigma0 {
        cfg.read_noise_sigma = 0.0;
    }
    let mut scratch = MvmScratch::new();
    let mut census_rows = Vec::new();
    let (mut tot_legacy, mut tot_ref, mut tot_packed, mut tot_batch) =
        (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut tot_mvms = 0u64;
    for &(rows, cols, n) in &CENSUS {
        let (xb, x) = make_case(&cfg, rows, cols, 40 + rows as u64);
        let legacy = LegacyKernel::from_xbar(&xb);
        let mut out = vec![0.0f32; cols];
        // Four distinct ReLU-like patches for the batched call, patch 0
        // being the single-call input.
        let mut rng = StdRng::seed_from_u64(77 + rows as u64);
        let mut xs = x.clone();
        for _ in 1..DAC_BATCH {
            xs.extend((0..rows).map(|_| {
                let v: f32 = rng.gen_range(-1.0..1.0);
                if v < 0.0 {
                    0.0
                } else {
                    v
                }
            }));
        }
        let mut outs = vec![0.0f32; DAC_BATCH * cols];

        let ns_legacy = time_min(rounds, reps_dac, |i| {
            legacy.mvm_into_at(&x, &mut out, i);
            black_box(&out);
        });
        let ns_ref = time_min(rounds, reps_dac, |i| {
            black_box(xb.mvm_reference_at(&x, i).unwrap());
        });
        let ns_packed = time_min(rounds, reps_dac, |i| {
            xb.mvm_into_with(&x, &mut out, i, &mut scratch).unwrap();
            black_box(&out);
        });
        // Batched: amortized per MVM over a DAC_BATCH lock-step call (the
        // executors' convolution loops batch patches exactly like this).
        let ns_batch = time_min(rounds, reps_dac / DAC_BATCH as u64, |i| {
            let b = DAC_BATCH as u64;
            let inv = [b * i, b * i + 1, b * i + 2, b * i + 3];
            xb.mvm_batch_into_with(&xs, &mut outs, &inv, &mut scratch)
                .unwrap();
            black_box(&outs);
        }) / DAC_BATCH as f64;
        println!(
            "dac {rows}x{cols}: legacy {ns_legacy:.0} ns, reference {ns_ref:.0} ns, packed {ns_packed:.0} ns, batched {ns_batch:.0} ns/mvm ({:.2}x vs legacy)",
            ns_legacy / ns_batch
        );
        census_rows.push(format!(
            "{{\"rows\": {rows}, \"cols\": {cols}, \"mvms_per_image\": {n}, \"legacy_ns\": {ns_legacy:.1}, \"reference_ns\": {ns_ref:.1}, \"packed_ns\": {ns_packed:.1}, \"batched_ns_per_mvm\": {ns_batch:.1}}}"
        ));
        tot_legacy += ns_legacy * n as f64;
        tot_ref += ns_ref * n as f64;
        tot_packed += ns_packed * n as f64;
        tot_batch += ns_batch * n as f64;
        tot_mvms += n;
    }

    let mut sweep_rows = Vec::new();
    for &(rows, cols) in &SWEEP_SHAPES {
        let (xb, x) = make_case(&cfg, rows, cols, 60 + rows as u64);
        let mut out = vec![0.0f32; cols];
        for bits in SWEEP_BITS {
            let ns_ref = time_min(rounds, reps_bs, |i| {
                black_box(xb.mvm_bit_serial_reference_at(&x, bits, i).unwrap());
            });
            let ns_packed = time_min(rounds, reps_bs, |i| {
                xb.mvm_bit_serial_into_with(&x, bits, &mut out, i, &mut scratch)
                    .unwrap();
                black_box(&out);
            });
            println!(
                "bit_serial {rows}x{cols} {bits}b: reference {ns_ref:.0} ns, packed {ns_packed:.0} ns ({:.2}x)",
                ns_ref / ns_packed
            );
            sweep_rows.push(format!(
                "{{\"rows\": {rows}, \"cols\": {cols}, \"bits\": {bits}, \"reference_ns\": {ns_ref:.1}, \"packed_ns\": {ns_packed:.1}}}"
            ));
        }
    }

    // The headline compares the pre-packing kernel against the production
    // conv path, which batches DAC_BATCH patches per tile call.
    let speedup = tot_legacy / tot_batch;
    let images_per_s_legacy = 1e9 / tot_legacy;
    let images_per_s_batch = 1e9 / tot_batch;
    println!(
        "census ({tot_mvms} MVMs/image): legacy {:.2} ms/image ({images_per_s_legacy:.1} img/s), packed {:.2} ms/image, batched {:.2} ms/image ({images_per_s_batch:.1} img/s)",
        tot_legacy / 1e6,
        tot_packed / 1e6,
        tot_batch / 1e6,
    );
    println!("speedup_hermes256_resnet18={speedup:.2}");

    let json = format!(
        "{{\n  \"bench\": \"mvm_kernels\",\n  \"workload\": \"resnet18_cifar10_analog\",\n  \"xbar\": \"hermes_256\",\n  \"read_noise_sigma\": {sigma},\n  \"smoke\": {smoke},\n  \"timing\": \"min over {rounds} rounds of {reps_dac} (dac) / {reps_bs} (bit-serial) calls\",\n  \"kernel_equivalence_ok\": {equivalence_ok},\n  \"census\": [{census}],\n  \"census_totals\": {{\"mvms_per_image\": {tot_mvms}, \"legacy_ms_per_image\": {lm:.3}, \"reference_ms_per_image\": {rm:.3}, \"packed_ms_per_image\": {pm:.3}, \"batched_ms_per_image\": {bm:.3}}},\n  \"analog_images_per_s\": {{\"legacy\": {il:.2}, \"packed\": {ip:.2}, \"batched\": {ib:.2}}},\n  \"serial_ns_per_mvm\": {npm:.1},\n  \"speedup_hermes256_resnet18\": {speedup:.2},\n  \"speedup_vs_reference\": {sref:.2},\n  \"bit_serial_sweep\": [{sweep}]\n}}\n",
        sigma = cfg.read_noise_sigma,
        census = census_rows.join(", "),
        lm = tot_legacy / 1e6,
        rm = tot_ref / 1e6,
        pm = tot_packed / 1e6,
        bm = tot_batch / 1e6,
        il = images_per_s_legacy,
        ip = 1e9 / tot_packed,
        ib = images_per_s_batch,
        npm = tot_batch / tot_mvms as f64,
        sref = tot_ref / tot_batch,
        sweep = sweep_rows.join(", "),
    );
    std::fs::write("BENCH_mvm_kernels.json", json).expect("write BENCH_mvm_kernels.json");
    println!("wrote BENCH_mvm_kernels.json");
}
