//! Ablation: PCM conductance drift over deployment time. Non-volatile AIMC
//! stores weights once and infers for months (Sec. I: parameters "do not
//! need to be transferred from on- or off-chip storage"); drift slowly
//! decays conductances as `g(t) = g₀ (t/t₀)^{-ν}`. This study measures
//! classification agreement of the analog executor against the digital
//! golden model as a function of time since programming.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin ablation_drift
//! ```

use aimc_core::ArchConfig;
use aimc_dnn::{resnet18_cifar, Shape, Tensor};
use aimc_platform::{Backend, Error, Platform};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Error> {
    // Functional study on the CIFAR-scale network: the timing platform is
    // irrelevant here, so compile onto the small configuration.
    let mut session = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?
        .session();

    let mut rng = StdRng::seed_from_u64(9);
    let n = 20;
    let images: Vec<Tensor> = (0..n)
        .map(|_| {
            let s = Shape::new(3, 32, 32);
            Tensor::from_vec(
                s,
                (0..s.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect();
    let golden: Vec<usize> = session
        .infer(&images, Backend::Golden)?
        .iter()
        .map(|y| y.argmax())
        .collect();

    println!("Ablation — PCM drift vs classification agreement ({n} inputs)\n");
    println!(
        "{:<22} {:>12} {:>12}",
        "time since program", "g decay", "agreement"
    );
    let analog = Backend::analog(1, XbarConfig::hermes_256());
    for (label, hours) in [
        ("1 hour", 1.0),
        ("1 day", 24.0),
        ("1 month", 24.0 * 30.0),
        ("1 year", 24.0 * 365.0),
    ] {
        // Fresh conductances per time point: drift compounds, so each level
        // starts from a forced re-programming of the arrays.
        session.reprogram(&analog)?;
        session.apply_drift(hours)?;
        let agree = session
            .infer(&images, analog.clone())?
            .iter()
            .zip(&golden)
            .filter(|(y, &g)| y.argmax() == g)
            .count();
        let decay = hours.max(1.0).powf(-XbarConfig::hermes_256().drift_nu);
        println!(
            "{:<22} {:>11.1}% {:>9}/{:<2}",
            label,
            decay * 100.0,
            agree,
            n
        );
    }
    println!("\nnote: uniform drift mostly rescales logits; agreement degrades slowly —");
    println!("the known robustness of ratio-preserving drift (compensable by a single");
    println!("per-layer gain, as HERMES-class systems do).");
    Ok(())
}
