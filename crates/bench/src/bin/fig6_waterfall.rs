//! Regenerates **Fig. 6** — performance degradation from the 516-TOPS ideal
//! through global mapping, local mapping, intra-layer unbalance and
//! communication.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin fig6_waterfall [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::{Error, RunSpec};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args();
    let mut session = aimc_bench::paper_session(MappingStrategy::OnChipResiduals)?;
    session.run(RunSpec::batch(batch))?;
    let w = session.waterfall()?;
    println!("Fig. 6 — performance degradation by non-ideality (batch {batch})\n");
    println!("{}", w.render());
    let f = w.cumulative_factors();
    println!(
        "cumulative factors: global {:.1}x, local {:.1}x, unbalance {:.1}x, communication {:.1}x",
        f[0], f[1], f[2], f[3]
    );
    println!("paper:              global 1.6x, local 4.7x, unbalance 23.8x, communication 28.4x");
    Ok(())
}
