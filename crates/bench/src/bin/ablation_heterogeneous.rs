//! Ablation: heterogeneous clusters (Sec. VI discussion). The paper
//! suggests mitigating the "local mapping" inefficiency by provisioning
//! *analog clusters* (IMA + one core) for analog-bound stages and *digital
//! clusters* (16 cores, no IMA) for digital/reduction stages. This study
//! re-costs the final ResNet-18 mapping under that provisioning and reports
//! the area and area-efficiency gains.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin ablation_heterogeneous [batch]
//! ```

use aimc_core::{MappingStrategy, StageRole};
use aimc_platform::Error;
use aimc_runtime::{AreaModel, ClusterVariant};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args();
    let (_, m, r) = aimc_bench::run_paper(MappingStrategy::OnChipResiduals, batch)?;
    let area = AreaModel::default();

    let mut counts = [
        (ClusterVariant::Full, 0usize),
        (ClusterVariant::Analog, 0),
        (ClusterVariant::Digital, 0),
        (ClusterVariant::Memory, 0),
    ];
    let mut hetero_mm2 = 0.0;
    for s in m.stages() {
        let n = s.total_clusters();
        // Analog stages with absorbed reduction levels still need the full
        // core complex; pure-MVM stages can drop to a single control core.
        let variant = match (&s.role, &s.analog) {
            (StageRole::Analog, Some(a))
                if a.reduction.absorbed_levels == 0 && s.digital_per_chunk.len() <= 1 =>
            {
                ClusterVariant::Analog
            }
            (StageRole::Analog, Some(_)) => ClusterVariant::Full,
            (StageRole::Reduction { .. }, _) | (StageRole::Digital, _) => ClusterVariant::Digital,
            _ => ClusterVariant::Full,
        };
        hetero_mm2 += n as f64 * area.variant_mm2(variant);
        for c in counts.iter_mut() {
            if c.0 == variant {
                c.1 += n;
            }
        }
    }
    let n_storage = m.residuals.storage_clusters.len();
    hetero_mm2 += n_storage as f64 * area.variant_mm2(ClusterVariant::Memory);
    for c in counts.iter_mut() {
        if c.0 == ClusterVariant::Memory {
            c.1 += n_storage;
        }
    }

    let homo_mm2 = m.n_clusters_used as f64 * area.cluster_mm2();
    let gops = r.tops() * 1000.0;

    println!("Ablation — heterogeneous cluster provisioning (batch {batch})\n");
    println!("{:<10} {:>9} {:>12}", "variant", "clusters", "mm2 each");
    for (v, n) in counts {
        println!(
            "{:<10} {:>9} {:>12.3}",
            format!("{v:?}"),
            n,
            area.variant_mm2(v)
        );
    }
    println!(
        "\nhomogeneous mapped area:   {homo_mm2:>8.1} mm2 -> {:.1} GOPS/mm2",
        gops / homo_mm2
    );
    println!(
        "heterogeneous mapped area: {hetero_mm2:>8.1} mm2 -> {:.1} GOPS/mm2 ({:.1}% smaller)",
        gops / hetero_mm2,
        100.0 * (1.0 - hetero_mm2 / homo_mm2)
    );
    println!("\n(the paper proposes exactly this split — Sec. VI, 'local mapping' discussion)");
    Ok(())
}
