//! Churn benchmark for the elastic serving fleet: single-image requests
//! (ResNet-18/CIFAR on modeled PCM crossbars) through
//! `Platform::serve_fleet_with` while the fleet is disturbed mid-stream —
//! a severed link that reconnects and replays (go-back-N), a shard killed
//! permanently (eviction + orphan rescue on survivors), and a shard
//! joining live (`FleetHandle::add_shard`, programmed from the fleet
//! seed). Each scenario carries the fleet's hard invariant as a built-in
//! check: the completed logits must be **bit-identical** to a solo
//! `Session::infer_one` stream of the same images — churn may cost
//! wall-clock, never a logit and never a coordinate.
//!
//! Faults are injected with the seeded frame-aware `FaultyEnd` from
//! `aimc-wire`: the disturbed shard is a real `ShardServer` speaking the
//! wire protocol over an in-memory duplex pipe, with each (re)dial wired
//! through the next scripted `FaultPlan` (an exhausted script refuses
//! dials — a permanently dead host).
//!
//! Emits `BENCH_serve_churn.json` in the working directory: images/s per
//! scenario against the undisturbed baseline, the surviving/total seat
//! counts, and `churn_invariance_ok` — the binary also exits non-zero on
//! a violation, so CI can gate on either signal.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin serve_churn [images] [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: fewer
//! images — it still exercises all three churn scenarios and the
//! invariance check.

use aimc_core::ArchConfig;
use aimc_dnn::{resnet18_cifar, Shape, Tensor};
use aimc_platform::serve::{
    BatchPolicy, Connect, FleetHandle, FleetPolicy, Pending, RetryPolicy, RoutePolicy,
    ShardTransport, TcpTransport,
};
use aimc_platform::wire::{duplex, FaultPlan, FaultyEnd};
use aimc_platform::{Backend, Error, Platform};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256())
}

fn batch_policy(images_n: usize) -> BatchPolicy {
    BatchPolicy::new(4, Duration::from_millis(5)).with_queue_depth(images_n.max(1))
}

/// A [`Connect`]or over in-memory pipes with a scripted fault schedule:
/// each dial serves a fresh protocol session against the shared server,
/// writing through the next [`FaultPlan`]; an exhausted script refuses
/// further dials.
struct PipeConnector {
    server: Arc<aimc_platform::serve::ShardServer>,
    plans: Mutex<VecDeque<FaultPlan>>,
}

impl Connect for PipeConnector {
    fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let Some(plan) = self.plans.lock().unwrap().pop_front() else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "host is gone",
            ));
        };
        let (client_end, server_end) = duplex();
        let server = Arc::clone(&self.server);
        std::thread::spawn(move || {
            let reader = server_end.clone();
            let writer = server_end.clone();
            let _ = server.serve_stream(reader, writer);
            server_end.close();
        });
        let reader = client_end.clone();
        Ok((Box::new(reader), Box::new(FaultyEnd::new(client_end, plan))))
    }
}

/// A wire-protocol shard whose link follows `plans`, one per dial.
fn wire_shard(
    platform: &Platform,
    images_n: usize,
    plans: Vec<FaultPlan>,
) -> Result<Box<dyn ShardTransport>, Error> {
    let server = Arc::new(platform.shard_server(batch_policy(images_n), &backend())?);
    let connector = PipeConnector {
        server,
        plans: Mutex::new(plans.into()),
    };
    Ok(Box::new(
        TcpTransport::with_connector(
            Box::new(connector),
            RetryPolicy::new(2, Duration::from_millis(1)),
        )
        .expect("first dial of a scripted connector succeeds"),
    ))
}

fn local_shard(platform: &Platform, images_n: usize) -> Result<Box<dyn ShardTransport>, Error> {
    Ok(Box::new(
        platform.local_shard(batch_policy(images_n), &backend())?,
    ))
}

/// Submits every image in order, drains (rescuing anything stranded by a
/// permanent death), and waits for all completions. Returns images/s and
/// the logits in stream order.
fn run_stream(
    fleet: &FleetHandle,
    images: &[Tensor],
    join_mid_stream: Option<Box<dyn ShardTransport>>,
) -> (f64, Vec<Tensor>) {
    let t0 = Instant::now();
    let mut pendings: Vec<Pending> = Vec::with_capacity(images.len());
    let half = images.len() / 2;
    for x in &images[..half] {
        pendings.push(fleet.submit(x.clone()).expect("fleet is open"));
    }
    if let Some(joiner) = join_mid_stream {
        fleet.add_shard(joiner).expect("fleet accepts a joiner");
    }
    for x in &images[half..] {
        pendings.push(fleet.submit(x.clone()).expect("fleet is open"));
    }
    fleet.drain();
    let logits: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| p.wait().expect("request settles under churn"))
        .collect();
    let dt = t0.elapsed().as_secs_f64();
    (images.len() as f64 / dt, logits)
}

struct Scenario {
    name: &'static str,
    images_per_s: f64,
    live_shards: usize,
    seats: usize,
    invariant: bool,
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let images_n = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 8 } else { 32 });

    let shape = Shape::new(3, 32, 32);
    let mut rng = StdRng::seed_from_u64(13);
    let images: Vec<Tensor> = (0..images_n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect();

    println!(
        "Elastic-fleet churn — ResNet-18/CIFAR, analog backend, {images_n} images{}",
        if smoke { " [smoke]" } else { "" }
    );

    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;

    // Solo reference: the stream every churned fleet must reproduce.
    let mut session = platform.session();
    session.program(&backend())?;
    let t0 = Instant::now();
    let reference = images
        .iter()
        .map(|x| session.infer_one(x, backend()))
        .collect::<Result<Vec<_>, _>>()?;
    let direct_ips = images_n as f64 / t0.elapsed().as_secs_f64();

    let policy = FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(4);
    let mut scenarios: Vec<Scenario> = Vec::new();

    // Baseline: the same 2-shard mixed fleet, no faults.
    {
        let transports = vec![
            wire_shard(&platform, images_n, vec![FaultPlan::new(1)])?,
            local_shard(&platform, images_n)?,
        ];
        let fleet = platform.serve_fleet_with(transports, policy)?;
        let (ips, logits) = run_stream(&fleet, &images, None);
        scenarios.push(Scenario {
            name: "baseline",
            images_per_s: ips,
            live_shards: fleet.live_shard_count(),
            seats: fleet.shard_count(),
            invariant: logits == reference,
        });
        fleet.shutdown();
    }

    // Sever + replay: the wire shard's link dies mid-stream (truncating a
    // frame) and the redial succeeds — the transport replays its
    // unacknowledged window at the original coordinates.
    {
        let transports = vec![
            wire_shard(
                &platform,
                images_n,
                vec![
                    FaultPlan::new(2)
                        .swap_per_mille(250)
                        .sever_after(6)
                        .sever_mid_frame(),
                    FaultPlan::new(3),
                ],
            )?,
            local_shard(&platform, images_n)?,
        ];
        let fleet = platform.serve_fleet_with(transports, policy)?;
        let (ips, logits) = run_stream(&fleet, &images, None);
        scenarios.push(Scenario {
            name: "sever_replay",
            images_per_s: ips,
            live_shards: fleet.live_shard_count(),
            seats: fleet.shard_count(),
            invariant: logits == reference,
        });
        fleet.shutdown();
    }

    // Permanent kill: same sever, but every redial is refused — the
    // router evicts the shard and rescues its strays on the survivor.
    {
        let transports = vec![
            wire_shard(
                &platform,
                images_n,
                vec![FaultPlan::new(4).sever_after(6).sever_mid_frame()],
            )?,
            local_shard(&platform, images_n)?,
        ];
        let fleet = platform.serve_fleet_with(transports, policy)?;
        let (ips, logits) = run_stream(&fleet, &images, None);
        scenarios.push(Scenario {
            name: "kill_rescue",
            images_per_s: ips,
            live_shards: fleet.live_shard_count(),
            seats: fleet.shard_count(),
            invariant: logits == reference,
        });
        fleet.shutdown();
    }

    // Live join: a second shard joins after half the stream and serves
    // its share of the rest.
    {
        let transports = vec![local_shard(&platform, images_n)?];
        let fleet = platform.serve_fleet_with(transports, policy)?;
        let joiner = local_shard(&platform, images_n)?;
        let (ips, logits) = run_stream(&fleet, &images, Some(joiner));
        scenarios.push(Scenario {
            name: "live_join",
            images_per_s: ips,
            live_shards: fleet.live_shard_count(),
            seats: fleet.shard_count(),
            invariant: logits == reference,
        });
        fleet.shutdown();
    }

    let churn_invariance_ok = scenarios.iter().all(|s| s.invariant);

    println!(
        "{:<14} {:>10} {:>8} {:>6} {:>10}",
        "scenario", "img/s", "live", "seats", "invariant"
    );
    println!(
        "{:<14} {:>10.3} {:>8} {:>6} {:>10}",
        "direct", direct_ips, "-", "-", "-"
    );
    for s in &scenarios {
        println!(
            "{:<14} {:>10.3} {:>8} {:>6} {:>10}",
            s.name, s.images_per_s, s.live_shards, s.seats, s.invariant
        );
    }
    println!("churn-invariance (all scenarios bit-identical to solo): {churn_invariance_ok}");

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "{{\"name\": \"{}\", \"images_per_s\": {:.4}, \"live_shards\": {}, \
                 \"seats\": {}, \"invariant\": {}}}",
                s.name, s.images_per_s, s.live_shards, s.seats, s.invariant
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_churn\",\n  \"workload\": \"resnet18_cifar10_analog\",\n  \
         \"xbar\": \"hermes_256\",\n  \"images\": {images_n},\n  \"smoke\": {smoke},\n  \
         \"lease_len\": 4,\n  \"retry\": {{\"max_attempts\": 2, \"backoff_ms\": 1}},\n  \
         \"direct_images_per_s\": {direct_ips:.4},\n  \
         \"scenarios\": [\n    {}\n  ],\n  \
         \"churn_invariance_ok\": {churn_invariance_ok}\n}}\n",
        scenario_json.join(",\n    "),
    );
    let path = "BENCH_serve_churn.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");

    assert!(
        churn_invariance_ok,
        "churn invariance violation: a disturbed fleet diverged from the solo reference"
    );
    Ok(())
}
