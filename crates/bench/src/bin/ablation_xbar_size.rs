//! Ablation: crossbar array size (the Sec. VI discussion — "another
//! approach could be to use larger IMA arrays. However, this would require
//! more data transfers per cluster").
//!
//! Sweeps the IMA geometry and reports cluster usage, utilization and
//! throughput on the paper workload.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin ablation_xbar_size [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::{Error, Platform, RunSpec};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args().min(8);
    println!("Ablation — IMA crossbar size (batch {batch})\n");
    println!(
        "{:<10} {:>9} {:>12} {:>10} {:>10}",
        "xbar", "clusters", "utilization", "TOPS", "img/s"
    );
    for size in [128usize, 256, 512, 1024] {
        let mut arch = aimc_bench::paper_arch();
        arch.cluster.ima.xbar.rows = size;
        arch.cluster.ima.xbar.cols = size;
        // Each geometry is its own compiled platform; infeasible mappings
        // surface as build errors rather than panics.
        match Platform::builder()
            .graph(aimc_bench::paper_graph())
            .arch(arch)
            .strategy(MappingStrategy::OnChipResiduals)
            .build()
        {
            Ok(platform) => {
                let n_clusters = platform.mapping().n_clusters_used;
                let utilization = platform.mapping().local_mapping_utilization(size, size);
                let mut session = platform.session();
                let r = session.run(RunSpec::batch(batch))?;
                println!(
                    "{:<10} {:>9} {:>11.1}% {:>10.2} {:>10.0}",
                    format!("{size}x{size}"),
                    n_clusters,
                    100.0 * utilization,
                    r.tops(),
                    r.images_per_s()
                );
            }
            Err(e) => println!("{:<10} mapping failed: {e}", format!("{size}x{size}")),
        }
    }
    println!(
        "\nexpected shape: larger arrays need fewer clusters but waste cells (lower utilization);"
    );
    println!("smaller arrays multiply row splits and reduction stages.");
    Ok(())
}
