//! Pipeline timeline (the executable counterpart of Fig. 2C): an ASCII
//! Gantt of every stage's activity across a small batch, plus per-stage
//! utilization — shows the software pipeline filling, streaming and
//! draining.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin timeline [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::Error;
use aimc_runtime::trace::{gantt_ascii, stage_traces};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args().min(4);
    let (_, m, r) = aimc_bench::run_paper(MappingStrategy::OnChipResiduals, batch)?;
    println!(
        "Pipeline timeline — final mapping, batch {batch} (makespan {})\n",
        r.makespan
    );
    print!("{}", gantt_ascii(&m, &r, 96));
    println!("\nper-stage utilization (busy / lanes x makespan):\n");
    let traces = stage_traces(&m, &r);
    let mut sorted: Vec<_> = traces.iter().filter(|t| t.chunks > 0).collect();
    sorted.sort_by(|a, b| b.utilization.partial_cmp(&a.utilization).unwrap());
    println!(
        "{:<16} {:>8} {:>10} {:>12}",
        "stage", "chunks", "busy", "utilization"
    );
    for t in sorted.iter().take(12) {
        println!(
            "{:<16} {:>8} {:>10} {:>11.1}%",
            t.name,
            t.chunks,
            t.busy.to_string(),
            100.0 * t.utilization
        );
    }
    println!("\nthe most-utilized stage is the pipeline bottleneck (Sec. V-2).");
    Ok(())
}
