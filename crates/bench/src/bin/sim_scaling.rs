//! Scaling benchmark for the sharded timing simulator: `simulate_with` on
//! ResNet-18 over the paper's 512-cluster platform, serial vs 1/2/4
//! workers, with the bit-identity invariant asserted on every point.
//!
//! Emits `BENCH_sim_scaling.json` in the working directory: events/s per
//! worker count, speedups over serial, a per-link peak-demand summary
//! (HBM channel plus the hottest links of the run), and the
//! `sim_invariance_ok` flag the CI grep gate checks. Speedups are bounded
//! by the host's available parallelism — on a 1-core CI runner every ratio
//! is ≈1 by construction, but the invariance check still has teeth.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin sim_scaling [batch] [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: a small
//! batch and one threaded point — it still exercises the windowed sharded
//! loop and the invariance assert end to end.

use aimc_core::{map_network, ArchConfig, MappingStrategy};
use aimc_dnn::resnet18;
use aimc_parallel::Parallelism;
use aimc_runtime::{link_loads, simulate_with, RunReport};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let batch = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 2 } else { 8 });
    let worker_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };

    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).expect("paper mapping");

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Timing-simulator scaling — ResNet-18 on the 512-cluster platform, \
         batch {batch}, host parallelism {host_cpus}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<12} {:>14} {:>10} {:>14}",
        "mode", "events/s", "speedup", "bit-identical"
    );

    let timed = |par: Parallelism| -> (f64, RunReport) {
        let t0 = Instant::now();
        let r = simulate_with(&g, &m, &arch, batch, par).expect("simulate");
        let dt = t0.elapsed().as_secs_f64();
        (r.events as f64 / dt, r)
    };

    let (serial_eps, serial) = timed(Parallelism::Serial);
    println!(
        "{:<12} {:>14.0} {:>9.2}x {:>14}   ({} events, makespan {})",
        "serial", serial_eps, 1.0, "-", serial.events, serial.makespan
    );

    let mut rows = String::new();
    let mut invariance_ok = true;
    for &n in worker_counts {
        for (label, par, pinned) in [
            (format!("threads({n})"), Parallelism::Threads(n), false),
            (format!("pinned({n})"), Parallelism::PinnedThreads(n), true),
        ] {
            let (eps, r) = timed(par);
            let identical = r == serial;
            invariance_ok &= identical;
            let speedup = eps / serial_eps;
            println!("{label:<12} {eps:>14.0} {speedup:>9.2}x {identical:>14}");
            let _ = write!(
                rows,
                "{}{{\"workers\": {n}, \"pinned\": {pinned}, \"events_per_s\": {eps:.0}, \
                 \"speedup_vs_serial\": {speedup:.4}, \"bit_identical\": {identical}}}",
                if rows.is_empty() { "" } else { ", " },
            );
        }
    }
    assert!(
        invariance_ok,
        "determinism violation: sharded RunReport diverged from serial"
    );

    // Per-link peak-demand summary: interconnect tiers plus the hottest
    // individual links of the run.
    let span = serial.makespan.as_ps().max(1) as f64;
    println!(
        "\n{:<14} {:>6} {:>7} {:>14} {:>6}",
        "tier", "links", "peak", "bytes", "queue"
    );
    let mut tiers = String::new();
    for l in link_loads(&serial) {
        println!(
            "{:<14} {:>6} {:>6.1}% {:>14} {:>6}",
            l.label,
            l.links,
            l.peak_util * 100.0,
            l.bytes,
            l.peak_queued
        );
        let _ = write!(
            tiers,
            "{}{{\"tier\": \"{}\", \"links\": {}, \"peak_util\": {:.4}, \
             \"mean_util\": {:.4}, \"bytes\": {}, \"peak_queued\": {}}}",
            if tiers.is_empty() { "" } else { ", " },
            l.label,
            l.links,
            l.peak_util,
            l.mean_util,
            l.bytes,
            l.peak_queued
        );
    }
    let mut hottest = String::new();
    for l in serial.fabric.hottest(5) {
        let _ = write!(
            hottest,
            "{}{{\"link\": \"{:?}\", \"util\": {:.4}, \"bytes\": {}, \"peak_queued\": {}}}",
            if hottest.is_empty() { "" } else { ", " },
            l.id,
            l.busy.as_ps() as f64 / span,
            l.bytes,
            l.peak_queued
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"sim_scaling\",\n  \"workload\": \"resnet18_paper512\",\n  \
         \"batch\": {batch},\n  \"smoke\": {smoke},\n  \"host_cpus\": {host_cpus},\n  \
         \"events\": {},\n  \"makespan_us\": {:.3},\n  \
         \"serial_events_per_s\": {serial_eps:.0},\n  \
         \"sharded\": [{rows}],\n  \"link_tiers\": [{tiers}],\n  \
         \"hottest_links\": [{hottest}],\n  \"sim_invariance_ok\": {invariance_ok}\n}}\n",
        serial.events,
        serial.makespan.as_us_f64()
    );
    let path = "BENCH_sim_scaling.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");
}
