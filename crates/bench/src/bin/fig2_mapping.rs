//! Regenerates **Fig. 2A/B** — the ResNet-18 DAG and its static mapping on
//! the 512-cluster platform.
//!
//! ```text
//! cargo run -p aimc-bench --bin fig2_mapping
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::Error;

fn main() -> Result<(), Error> {
    let platform = aimc_bench::paper_platform(MappingStrategy::OnChipResiduals)?;
    let g = platform.graph();

    println!("Fig. 2A — ResNet-18 DAG (node id, op, output shape, params):\n");
    println!("{g}");
    println!(
        "total: {:.2} GMAC/image, {:.2} M parameters\n",
        g.total_macs() as f64 / 1e9,
        g.total_params() as f64 / 1e6
    );

    println!("Fig. 2B — mapping on the 512-cluster system (final strategy):\n");
    let m = platform.mapping();
    println!("{}", m.summary());
    println!(
        "residual storage: {:.2} MB staged on clusters {:?} (paper: ~1.6 MB, +2 clusters)",
        m.residuals.total_bytes as f64 / (1024.0 * 1024.0),
        m.residuals.storage_clusters,
    );
    Ok(())
}
