//! Recalibration benchmark for the heterogeneous serving fleet:
//! single-image requests (ResNet-18/CIFAR on modeled PCM crossbars) for
//! **two model groups at once** through `Platform::serve_hetero_fleet`,
//! while the fleet drifts mid-stream and replicas are rotated through a
//! drain → reprogram-from-spec → drift-replay recalibration — manually
//! seat by seat, and under the background scheduler
//! (`FleetHandle::start_recal`). Each scenario carries the registry's
//! hard invariant as a built-in check: each model's completed logits must
//! be **bit-identical** to a solo `Session::infer_one` stream over that
//! model's backend taken through the same drift transition — rotation may
//! cost wall-clock, never a logit and never a coordinate.
//!
//! Emits `BENCH_serve_recal.json` in the working directory: images/s per
//! scenario against the no-rotation baseline, rotation counts, and
//! `recal_invariance_ok` — the binary also exits non-zero on a violation,
//! so CI can gate on either signal.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin serve_recal [images] [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: fewer
//! images per model — it still exercises both rotation scenarios, the
//! two-group registry, and the invariance check.

use aimc_core::ArchConfig;
use aimc_dnn::{resnet18_cifar, Shape, Tensor};
use aimc_platform::serve::{
    BatchPolicy, FleetHandle, Pending, RecalHandle, RecalPolicy, RoutePolicy,
};
use aimc_platform::{Backend, Error, ModelGroup, Platform};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The drift transition every scenario (and the solo references) takes
/// after the first half of the stream.
const DRIFT_T_HOURS: f64 = 250.0;

fn alpha_backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256())
}

fn beta_backend() -> Backend {
    Backend::analog(11, XbarConfig::hermes_256())
}

fn batch_policy(images_n: usize) -> BatchPolicy {
    BatchPolicy::new(4, Duration::from_millis(5)).with_queue_depth((2 * images_n).max(1))
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 32, 32);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect()
}

/// Solo reference for one model: first half, the drift transition, second
/// half — the stream its fleet group must reproduce bit-for-bit.
fn solo_reference(
    platform: &Platform,
    backend: &Backend,
    images: &[Tensor],
) -> Result<Vec<Tensor>, Error> {
    let mut session = platform.session();
    let half = images.len() / 2;
    let mut out = images[..half]
        .iter()
        .map(|x| session.infer_one(x, backend.clone()))
        .collect::<Result<Vec<_>, _>>()?;
    session.apply_drift(DRIFT_T_HOURS)?;
    out.extend(
        images[half..]
            .iter()
            .map(|x| session.infer_one(x, backend.clone()))
            .collect::<Result<Vec<_>, _>>()?,
    );
    Ok(out)
}

/// A scenario's mid-stream action: runs between the two stream halves and
/// may hand back a background scheduler to wind down after the drain.
type MidAction = Box<dyn FnOnce(&FleetHandle) -> Option<RecalHandle>>;

/// Drives both model streams through the fleet: first halves, the drift
/// transition (which drains, so every submitted request ran pre-drift),
/// the scenario's mid-stream action, then the second halves. Returns
/// images/s over the full run and each model's logits in stream order.
fn run_hetero_stream(
    fleet: &FleetHandle,
    a_images: &[Tensor],
    b_images: &[Tensor],
    mid: impl FnOnce(&FleetHandle) -> Option<RecalHandle>,
) -> (f64, Vec<Tensor>, Vec<Tensor>) {
    let wait_all = |pend: Vec<Pending>| -> Vec<Tensor> {
        pend.into_iter()
            .map(|p| p.wait().expect("request settles across rotations"))
            .collect()
    };
    let submit_half = |images: &[Tensor], model: &str, from: usize, to: usize| -> Vec<Pending> {
        images[from..to]
            .iter()
            .map(|x| fleet.submit_to(model, x.clone()).expect("fleet is open"))
            .collect()
    };
    let t0 = Instant::now();
    let half = a_images.len() / 2;
    let a_first = submit_half(a_images, "alpha", 0, half);
    let b_first = submit_half(b_images, "beta", 0, half);
    let mut a_got = wait_all(a_first);
    let mut b_got = wait_all(b_first);
    assert!(fleet.apply_drift(DRIFT_T_HOURS), "analog replicas drift");
    let mut recal = mid(fleet);
    let a_second = submit_half(a_images, "alpha", half, a_images.len());
    let b_second = submit_half(b_images, "beta", half, b_images.len());
    fleet.drain();
    a_got.extend(wait_all(a_second));
    b_got.extend(wait_all(b_second));
    if let Some(handle) = recal.as_mut() {
        // Let the background worker finish rotating every aged seat so
        // scenarios report comparable rotation counts.
        let deadline = Instant::now() + Duration::from_secs(60);
        while fleet.shard_health().iter().any(|h| h.drift_age > 0) {
            assert!(
                Instant::now() < deadline,
                "background scheduler stalled: {:?}",
                handle.stats()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        handle.stop();
    }
    let dt = t0.elapsed().as_secs_f64();
    ((a_images.len() + b_images.len()) as f64 / dt, a_got, b_got)
}

struct Scenario {
    name: &'static str,
    images_per_s: f64,
    rotations: u64,
    invariant: bool,
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let images_n = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 6 } else { 24 });

    let a_images = random_images(images_n, 17);
    let b_images = random_images(images_n, 29);

    println!(
        "Heterogeneous-fleet recalibration — ResNet-18/CIFAR, two analog model groups, \
         {images_n} images per model{}",
        if smoke { " [smoke]" } else { "" }
    );

    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;

    // Solo references: the per-model streams every fleet must reproduce.
    let t0 = Instant::now();
    let a_reference = solo_reference(&platform, &alpha_backend(), &a_images)?;
    let b_reference = solo_reference(&platform, &beta_backend(), &b_images)?;
    let direct_ips = (2 * images_n) as f64 / t0.elapsed().as_secs_f64();

    let groups = [
        ModelGroup::new("alpha", 2, alpha_backend()),
        ModelGroup::new("beta", 2, beta_backend()),
    ];
    let serve =
        |scenarios: &mut Vec<Scenario>, name: &'static str, mid: MidAction| -> Result<(), Error> {
            let fleet = platform.serve_hetero_fleet(
                &groups,
                batch_policy(images_n),
                RoutePolicy::RoundRobin,
            )?;
            let (ips, a_got, b_got) = run_hetero_stream(&fleet, &a_images, &b_images, mid);
            let rotations = fleet.shard_health().iter().map(|h| h.recals).sum();
            scenarios.push(Scenario {
                name,
                images_per_s: ips,
                rotations,
                invariant: a_got == a_reference && b_got == b_reference,
            });
            fleet.shutdown();
            Ok(())
        };

    let mut scenarios: Vec<Scenario> = Vec::new();

    // Baseline: the drift transition lands, no seat is rotated.
    serve(&mut scenarios, "baseline", Box::new(|_| None))?;

    // Manual rotation: every seat is drained, reprogrammed from its spec
    // seed, and replayed through the drift log before the second half.
    serve(
        &mut scenarios,
        "manual_rotation",
        Box::new(|fleet| {
            for seat in 0..fleet.shard_count() {
                fleet
                    .recalibrate_shard(seat)
                    .expect("every seat has a routable peer");
            }
            None
        }),
    )?;

    // Background scheduler: the worker notices the aged seats and rotates
    // them (one per scan, behind the live floor) while the second half of
    // both streams is being served.
    serve(
        &mut scenarios,
        "background_sched",
        Box::new(|fleet| {
            Some(fleet.start_recal(RecalPolicy::new(1).with_cadence(Duration::from_millis(2))))
        }),
    )?;

    let recal_invariance_ok = scenarios.iter().all(|s| s.invariant);

    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "scenario", "img/s", "rotations", "invariant"
    );
    println!(
        "{:<18} {:>10.3} {:>10} {:>10}",
        "direct", direct_ips, "-", "-"
    );
    for s in &scenarios {
        println!(
            "{:<18} {:>10.3} {:>10} {:>10}",
            s.name, s.images_per_s, s.rotations, s.invariant
        );
    }
    println!(
        "recal-invariance (every model bit-identical to its solo stream): {recal_invariance_ok}"
    );

    let scenario_json: Vec<String> = scenarios
        .iter()
        .map(|s| {
            format!(
                "{{\"name\": \"{}\", \"images_per_s\": {:.4}, \"rotations\": {}, \
                 \"invariant\": {}}}",
                s.name, s.images_per_s, s.rotations, s.invariant
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_recal\",\n  \"workload\": \"resnet18_cifar10_analog\",\n  \
         \"xbar\": \"hermes_256\",\n  \"models\": [\"alpha\", \"beta\"],\n  \
         \"replicas_per_model\": 2,\n  \"images_per_model\": {images_n},\n  \
         \"smoke\": {smoke},\n  \"drift_t_hours\": {DRIFT_T_HOURS},\n  \
         \"direct_images_per_s\": {direct_ips:.4},\n  \
         \"scenarios\": [\n    {}\n  ],\n  \
         \"recal_invariance_ok\": {recal_invariance_ok}\n}}\n",
        scenario_json.join(",\n    "),
    );
    let path = "BENCH_serve_recal.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");

    assert!(
        recal_invariance_ok,
        "recal invariance violation: a rotated fleet diverged from a solo reference"
    );
    Ok(())
}
