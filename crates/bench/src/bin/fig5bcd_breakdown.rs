//! Regenerates **Fig. 5B/C/D** — per-cluster execution-time breakdowns
//! (compute / communication / synchronization / sleep) for the three
//! mapping strategies. Writes one CSV per strategy next to the current
//! directory and prints a compressed ASCII rendering.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin fig5bcd_breakdown [batch]
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::Error;
use aimc_runtime::report::{breakdown_ascii, breakdown_csv, run_summary};

fn main() -> Result<(), Error> {
    let batch = aimc_bench::batch_from_args();
    for (fig, strategy) in [
        ("5B", MappingStrategy::Naive),
        ("5C", MappingStrategy::Balanced),
        ("5D", MappingStrategy::OnChipResiduals),
    ] {
        let (_, m, r) = aimc_bench::run_paper(strategy, batch)?;
        let csv = breakdown_csv(&r.clusters);
        let path = format!("fig{fig}_breakdown.csv");
        std::fs::write(&path, &csv).expect("write CSV");
        println!(
            "Fig. {fig} — {} ({} clusters) -> {path}",
            strategy.label(),
            m.n_clusters_used
        );
        println!("  {}", run_summary(&r));
        println!("  per-cluster time ('#' compute, '~' comm+sync, '.' sleep):");
        for line in breakdown_ascii(&r.clusters, 16, 48).lines() {
            println!("  {line}");
        }
        let analog_bound = r.clusters.iter().filter(|c| c.analog_bound).count();
        println!(
            "  {} of {} clusters analog-bound (green in the paper), rest digital-bound\n",
            analog_bound,
            r.clusters.len()
        );
    }
    Ok(())
}
