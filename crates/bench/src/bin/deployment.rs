//! Deployment-cost study: one-time weight programming of the full mapping
//! (the reason the paper's computational model is *statically* mapped,
//! Sec. I) versus the recurring inference cost.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin deployment
//! ```

use aimc_core::MappingStrategy;
use aimc_platform::Error;
use aimc_xbar::ProgrammingModel;

fn main() -> Result<(), Error> {
    let (g, m, r) = aimc_bench::run_paper(MappingStrategy::OnChipResiduals, 16)?;
    let model = ProgrammingModel::default();

    // Occupied cells per programmed array: every split of every lane of
    // every analog stage holds its slice of the layer's weights.
    let mut arrays: Vec<u64> = Vec::new();
    for s in m.stages() {
        if let Some(a) = &s.analog {
            for _lane in 0..s.lanes {
                for &rows in &a.split.rows_per_split {
                    for &cols in &a.split.cols_per_split {
                        arrays.push((rows * cols) as u64);
                    }
                }
            }
        }
    }
    let cost = model.deployment_cost(&arrays);

    println!("Deployment (weight programming) vs inference — final mapping\n");
    println!(
        "network parameters:        {:>12.2} M",
        g.total_params() as f64 / 1e6
    );
    println!(
        "programmed cells:          {:>12.2} M (replicas included)",
        cost.cells as f64 / 1e6
    );
    println!("programmed arrays:         {:>12}", arrays.len());
    println!(
        "deployment time:           {:>12.2} ms (arrays program in parallel)",
        cost.time_ms
    );
    println!("deployment energy:         {:>12.2} mJ", cost.energy_mj);
    println!();
    println!(
        "batch-16 inference:        {:>12.2} ms",
        r.makespan.as_ms_f64()
    );
    println!(
        "deployment amortized after {:>12.0} images",
        cost.time_ms / (r.makespan.as_ms_f64() / 16.0)
    );
    println!("\nthe write/read asymmetry (ms-scale programming vs 130 ns MVMs) is why");
    println!("the paper maps layers statically and replicates rather than re-programs");
    println!("(Sec. I / Sec. IV-1).");
    Ok(())
}
