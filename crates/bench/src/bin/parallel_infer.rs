//! Throughput benchmark for the parallel execution engine: functional
//! analog inference (ResNet-18/CIFAR on modeled PCM crossbars) through
//! `Session::infer`, serial vs N worker threads, with a built-in
//! bit-identity cross-check.
//!
//! Emits `BENCH_parallel_infer.json` in the working directory:
//! images/s per thread count, speedups over serial, the host's available
//! parallelism (speedups are bounded by it — on a 1-core CI runner every
//! ratio is ≈1 by construction), and whether the determinism check passed.
//!
//! ```text
//! cargo run --release -p aimc-bench --bin parallel_infer [images] [--smoke]
//! ```
//!
//! `--smoke` (or `AIMC_BENCH_SMOKE=1`) shrinks the run for CI: fewer
//! images, one threaded point — it still exercises programming, batching,
//! and the determinism check end to end.

use aimc_core::ArchConfig;
use aimc_dnn::{resnet18_cifar, Shape, Tensor};
use aimc_platform::{Backend, Error, Parallelism, Platform, Session};
use aimc_xbar::XbarConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

fn session_with(par: Parallelism) -> Result<Session, Error> {
    Ok(Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .parallelism(par)
        .build()?
        .session())
}

fn backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256())
}

/// Programs the backend, then times one batched infer (programming excluded
/// — it is a one-off deployment cost). Returns (images/s, analog MVMs
/// evaluated, logits).
fn timed_infer(par: Parallelism, images: &[Tensor]) -> Result<(f64, u64, Vec<Tensor>), Error> {
    let mut session = session_with(par)?;
    session.program(&backend())?;
    let t0 = Instant::now();
    let logits = session.infer(images, backend())?;
    let dt = t0.elapsed().as_secs_f64();
    Ok((images.len() as f64 / dt, session.total_mvms(), logits))
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("AIMC_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let images_n = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 2 } else { 8 });
    let thread_counts: &[usize] = if smoke { &[2] } else { &[2, 4] };

    let shape = Shape::new(3, 32, 32);
    let mut rng = StdRng::seed_from_u64(9);
    let images: Vec<Tensor> = (0..images_n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect(),
            )
        })
        .collect();

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Parallel inference throughput — ResNet-18/CIFAR, analog backend, \
         {images_n} images, host parallelism {host_cpus}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<12} {:>12} {:>10} {:>14}",
        "mode", "img/s", "speedup", "bit-identical"
    );

    let (serial_ips, serial_mvms, serial_logits) = timed_infer(Parallelism::Serial, &images)?;
    // The single-core figure of merit alongside images/s: wall-clock per
    // analog tile-MVM, the quantity the packed kernels attack directly
    // (cross-check against BENCH_mvm_kernels.json, which times the kernels
    // without the digital layers around them).
    let serial_ns_per_mvm = 1e9 / (serial_ips * serial_mvms as f64 / images_n as f64);
    println!(
        "{:<12} {:>12.3} {:>9.2}x {:>14}   ({serial_ns_per_mvm:.0} ns/MVM over {serial_mvms} MVMs)",
        "serial", serial_ips, 1.0, "-"
    );

    let mut rows = String::new();
    let mut all_identical = true;
    for &n in thread_counts {
        for (label, par, pinned) in [
            (format!("threads({n})"), Parallelism::Threads(n), false),
            (format!("pinned({n})"), Parallelism::PinnedThreads(n), true),
        ] {
            let (ips, _, logits) = timed_infer(par, &images)?;
            let identical = logits == serial_logits;
            all_identical &= identical;
            let speedup = ips / serial_ips;
            println!("{label:<12} {ips:>12.3} {speedup:>9.2}x {identical:>14}");
            let _ = write!(
                rows,
                "{}{{\"threads\": {n}, \"pinned\": {pinned}, \"images_per_s\": {ips:.4}, \
                 \"speedup_vs_serial\": {speedup:.4}, \"bit_identical\": {identical}}}",
                if rows.is_empty() { "" } else { ", " },
            );
        }
    }
    assert!(
        all_identical,
        "determinism violation: threaded logits diverged from serial"
    );

    let json = format!(
        "{{\n  \"bench\": \"parallel_infer\",\n  \"workload\": \"resnet18_cifar10_analog\",\n  \
         \"xbar\": \"hermes_256\",\n  \"images\": {images_n},\n  \"smoke\": {smoke},\n  \
         \"host_cpus\": {host_cpus},\n  \"serial_images_per_s\": {serial_ips:.4},\n  \
         \"serial_ns_per_mvm\": {serial_ns_per_mvm:.1},\n  \
         \"mvms_per_image\": {},\n  \
         \"threaded\": [{rows}],\n  \"deterministic\": {all_identical}\n}}\n",
        serial_mvms / images_n as u64
    );
    let path = "BENCH_parallel_infer.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");
    Ok(())
}
