//! Criterion bench: golden executor and analog functional executor on a
//! CIFAR-scale ResNet-18.

use aimc_dnn::{he_init, infer_golden, resnet18_cifar, AimcExecutor, Shape, Tensor};
use aimc_xbar::XbarConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_dnn(c: &mut Criterion) {
    let g = resnet18_cifar(10);
    let w = he_init(&g, 0);
    let mut rng = StdRng::seed_from_u64(3);
    let shape = Shape::new(3, 32, 32);
    let x = Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    );
    let mut group = c.benchmark_group("dnn");
    group.sample_size(10);
    group.bench_function("golden_resnet18_cifar", |b| {
        b.iter(|| infer_golden(&g, &w, &x))
    });
    let exec = AimcExecutor::program(&g, &w, &XbarConfig::hermes_256(), 1).unwrap();
    group.bench_function("analog_resnet18_cifar", |b| b.iter(|| exec.infer(&x)));
    group.finish();
}

criterion_group!(benches, bench_dnn);
criterion_main!(benches);
