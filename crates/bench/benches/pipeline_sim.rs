//! Criterion bench: full-platform event simulation (512 clusters, batch 2).

use aimc_core::{map_network, MappingStrategy};
use aimc_runtime::simulate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_sim(c: &mut Criterion) {
    let g = aimc_bench::paper_graph();
    let arch = aimc_bench::paper_arch();
    let mut group = c.benchmark_group("pipeline_sim");
    group.sample_size(10);
    for strategy in MappingStrategy::ALL {
        let m = map_network(&g, &arch, strategy).unwrap();
        group.bench_with_input(
            BenchmarkId::new("resnet18_batch2", strategy.label()),
            &m,
            |b, m| b.iter(|| simulate(&g, m, &arch, 2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
