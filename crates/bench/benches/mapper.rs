//! Criterion bench: mapping-compiler cost for the three strategies.

use aimc_core::{map_network, MappingStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mapper(c: &mut Criterion) {
    let g = aimc_bench::paper_graph();
    let arch = aimc_bench::paper_arch();
    let mut group = c.benchmark_group("mapper");
    for strategy in MappingStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("resnet18_256", strategy.label()),
            &strategy,
            |b, &s| b.iter(|| map_network(&g, &arch, s).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapper);
criterion_main!(benches);
