//! Criterion bench: analog MVM evaluation cost (functional model).

use aimc_xbar::{Crossbar, XbarConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("xbar_mvm");
    for &size in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let w: Vec<f32> = (0..size * size).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x: Vec<f32> = (0..size).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ideal =
            Crossbar::program(&XbarConfig::ideal(size, size), &w, size, size, &mut rng).unwrap();
        let noisy = Crossbar::program(
            &XbarConfig::hermes_256().with_size(size, size),
            &w,
            size,
            size,
            &mut rng,
        )
        .unwrap();
        let mut out = vec![0.0f32; size];
        group.bench_with_input(BenchmarkId::new("ideal", size), &size, |b, _| {
            b.iter(|| ideal.mvm_into(&x, &mut out).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("noisy", size), &size, |b, _| {
            b.iter(|| noisy.mvm_into(&x, &mut out).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvm);
criterion_main!(benches);
