//! Criterion bench: interconnect transfer cost (reservation walk).

use aimc_noc::{Endpoint, Noc, NocConfig, TxnKind};
use aimc_sim::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_transfer");
    group.bench_function("neighbor_4KiB", |b| {
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            noc.transfer(
                SimTime::from_ns(t),
                TxnKind::Write,
                Endpoint::Cluster(0),
                Endpoint::Cluster(1),
                4096,
            )
        })
    });
    group.bench_function("cross_chip_4KiB", |b| {
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            noc.transfer(
                SimTime::from_ns(t),
                TxnKind::Write,
                Endpoint::Cluster(0),
                Endpoint::Cluster(511),
                4096,
            )
        })
    });
    group.bench_function("hbm_read_4KiB", |b| {
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut t = 0u64;
        b.iter(|| {
            t += 1000;
            noc.transfer(
                SimTime::from_ns(t),
                TxnKind::Read,
                Endpoint::Cluster(7),
                Endpoint::Hbm,
                4096,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transfers);
criterion_main!(benches);
