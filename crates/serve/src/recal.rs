//! Drift-aware background recalibration: rotating replicas through a
//! reprogram while the fleet keeps serving.
//!
//! Analog conductances decay (the paper's §IV drift model), so a real
//! deployment periodically re-writes each tile from its digital weights.
//! Doing that fleet-wide means downtime; doing it **one replica at a
//! time** means none — a model group with N members serves on N−1 while
//! the Nth is re-written. [`RecalHandle`] is that rotation: a background
//! worker that wakes every [`RecalPolicy::cadence`], scans the router's
//! [`ShardHealth`] rows, and recalibrates the *stalest eligible* seat via
//! [`FleetHandle::recalibrate_shard`].
//!
//! ## What a rotation does — and what it never does
//!
//! One rotation drains exactly one seat, reprograms its replica from the
//! [`ShardSpec`](aimc_wire::ShardSpec) seed, replays the fleet's recorded
//! drift history so the fresh conductances match the incumbents'
//! bit-for-bit, and returns the seat to the routing rotation. Because
//! every request carries its global stream coordinate and noise is keyed
//! by coordinate, the recalibrated replica computes **the same bits at
//! every coordinate** as any incumbent — so a rotation never changes a
//! completed logit, never changes an in-flight logit, and never shifts a
//! coordinate. The scheduler models the *operational procedure* (which
//! seat is out of rotation when, and what that costs in capacity); the
//! accuracy effect of skipping recalibration is quantified separately by
//! the drift ablation bench.
//!
//! ## Eligibility
//!
//! A seat is a candidate when it is live, not already draining, and its
//! [`ShardHealth::drift_age`] has reached [`RecalPolicy::max_drift_age`].
//! A candidate is **eligible** only if taking it out of rotation leaves at
//! least [`RecalPolicy::min_live_per_group`] routable members serving its
//! model group — the live floor. The scheduler picks the eligible seat
//! with the largest drift age (ties break toward the lowest seat id), so
//! under steady drift every member of every group is rotated through in a
//! deterministic order.

use crate::handle::ServeError;
use crate::router::{FleetHandle, ShardHealth};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the background scheduler recalibrates, and what it refuses to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecalPolicy {
    /// Drift transitions a replica may accumulate before it becomes a
    /// recalibration candidate (compared against
    /// [`ShardHealth::drift_age`]).
    pub max_drift_age: u64,
    /// The live floor: routable members a model group must keep **while
    /// one of its seats is out of rotation**. A candidate whose group
    /// would drop below this is skipped (and counted in
    /// [`RecalStats::skipped_live_floor`]).
    pub min_live_per_group: usize,
    /// How often the worker wakes to scan the fleet's health rows.
    pub cadence: Duration,
}

impl RecalPolicy {
    /// A policy recalibrating any replica older than `max_drift_age`
    /// drift transitions, with a live floor of 1 and a 100 ms scan
    /// cadence.
    pub fn new(max_drift_age: u64) -> Self {
        RecalPolicy {
            max_drift_age,
            min_live_per_group: 1,
            cadence: Duration::from_millis(100),
        }
    }

    /// Overrides the live floor (clamped to ≥ 1 at use — the router
    /// refuses to drain a group's last member regardless).
    pub fn with_live_floor(mut self, min_live_per_group: usize) -> Self {
        self.min_live_per_group = min_live_per_group;
        self
    }

    /// Overrides the scan cadence.
    pub fn with_cadence(mut self, cadence: Duration) -> Self {
        self.cadence = cadence;
        self
    }

    /// The seat one scan would recalibrate, given the router's health
    /// rows: the stalest eligible seat, ties toward the lowest id. Pure —
    /// unit-testable without a fleet. The second return reports whether
    /// any aged-out candidate was blocked by the live floor.
    pub fn candidate(&self, health: &[ShardHealth]) -> (Option<usize>, bool) {
        let groups = health.iter().map(|h| h.group).max().map_or(0, |g| g + 1);
        let mut routable = vec![0usize; groups];
        for h in health {
            if h.live && !h.draining {
                routable[h.group] += 1;
            }
        }
        let floor = self.min_live_per_group.max(1);
        let mut best: Option<(u64, usize)> = None;
        let mut floor_blocked = false;
        for (idx, h) in health.iter().enumerate() {
            if !h.live || h.draining || h.drift_age < self.max_drift_age {
                continue;
            }
            if routable[h.group] <= floor {
                floor_blocked = true;
                continue;
            }
            if best.is_none_or(|(age, _)| h.drift_age > age) {
                best = Some((h.drift_age, idx));
            }
        }
        (best.map(|(_, idx)| idx), floor_blocked)
    }
}

impl Default for RecalPolicy {
    /// Recalibrate after a single drift transition, floor 1, 100 ms scans.
    fn default() -> Self {
        RecalPolicy::new(1)
    }
}

/// The background scheduler's ledger (see [`RecalHandle::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecalStats {
    /// Health scans performed.
    pub scans: u64,
    /// Seats successfully recalibrated.
    pub rotations: u64,
    /// Scans where an aged-out seat existed but every candidate was
    /// blocked by the live floor.
    pub skipped_live_floor: u64,
    /// Recalibrations that failed (the router retires such a seat).
    pub failures: u64,
    /// The seat id of the most recent successful rotation.
    pub last_rotated: Option<usize>,
}

struct RecalShared {
    stop: Mutex<bool>,
    cv: Condvar,
    stats: Mutex<RecalStats>,
}

/// A running background recalibration worker over one fleet. Stop it with
/// [`RecalHandle::stop`]; dropping the handle stops it too.
pub struct RecalHandle {
    shared: Arc<RecalShared>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RecalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecalHandle")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl RecalHandle {
    /// Starts the background worker over `fleet` (any clone) under
    /// `policy`. The worker holds a fleet clone, so the fleet outlives the
    /// scheduler; stop the scheduler before fleet shutdown for a clean
    /// exit (a scan against a closed fleet just counts a failure).
    pub fn start(fleet: FleetHandle, policy: RecalPolicy) -> Self {
        let shared = Arc::new(RecalShared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
            stats: Mutex::new(RecalStats::default()),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("aimc-recal".into())
            .spawn(move || loop {
                {
                    let stopped = worker_shared.stop.lock().unwrap();
                    let (stopped, _) = worker_shared
                        .cv
                        .wait_timeout_while(stopped, policy.cadence, |s| !*s)
                        .unwrap();
                    if *stopped {
                        return;
                    }
                }
                Self::scan(&fleet, &policy, &worker_shared);
            })
            .expect("spawn recal worker");
        RecalHandle {
            shared,
            worker: Some(worker),
        }
    }

    /// One scan: pick the stalest eligible seat and rotate it.
    fn scan(fleet: &FleetHandle, policy: &RecalPolicy, shared: &RecalShared) {
        let (candidate, floor_blocked) = policy.candidate(&fleet.shard_health());
        let mut stats = shared.stats.lock().unwrap();
        stats.scans += 1;
        if floor_blocked {
            stats.skipped_live_floor += 1;
        }
        let Some(idx) = candidate else { return };
        // Rotate outside the stats lock: a drain can take a while and
        // stats() must stay responsive.
        drop(stats);
        let outcome = fleet.recalibrate_shard(idx);
        let mut stats = shared.stats.lock().unwrap();
        match outcome {
            Ok(()) => {
                stats.rotations += 1;
                stats.last_rotated = Some(idx);
            }
            // The health snapshot raced a concurrent eviction or drain:
            // the floor held at decision time, count it as a skip.
            Err(ServeError::LiveFloor) => stats.skipped_live_floor += 1,
            Err(_) => stats.failures += 1,
        }
    }

    /// Point-in-time scheduler counters.
    pub fn stats(&self) -> RecalStats {
        self.shared.stats.lock().unwrap().clone()
    }

    /// Stops the worker and waits for any in-progress rotation to finish.
    /// Idempotent.
    pub fn stop(&mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for RecalHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl FleetHandle {
    /// Starts a background recalibration scheduler over this fleet (see
    /// [`RecalHandle`]).
    pub fn start_recal(&self, policy: RecalPolicy) -> RecalHandle {
        RecalHandle::start(self.clone(), policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(group: usize, live: bool, draining: bool, drift_age: u64) -> ShardHealth {
        ShardHealth {
            model_id: format!("m{group}"),
            group,
            live,
            draining,
            drift_age,
            recals: 0,
        }
    }

    #[test]
    fn candidate_picks_the_stalest_eligible_seat() {
        let policy = RecalPolicy::new(2);
        // Seat 2 is stalest; seat 0 aged out but younger; seat 1 fresh.
        let health = vec![
            row(0, true, false, 2),
            row(0, true, false, 0),
            row(0, true, false, 5),
        ];
        assert_eq!(policy.candidate(&health), (Some(2), false));
        // Ties break toward the lowest seat id.
        let health = vec![
            row(0, true, false, 5),
            row(0, true, false, 5),
            row(0, true, false, 5),
        ];
        assert_eq!(policy.candidate(&health), (Some(0), false));
        // Nothing aged out: no candidate, no floor pressure.
        let health = vec![row(0, true, false, 1), row(0, true, false, 0)];
        assert_eq!(policy.candidate(&health), (None, false));
    }

    #[test]
    fn candidate_respects_the_live_floor_per_group() {
        let policy = RecalPolicy::new(1);
        // Group 0 has one member: aged out but rotating it would empty the
        // group — floor-blocked. Group 1 has two: its stale seat rotates.
        let health = vec![
            row(0, true, false, 9),
            row(1, true, false, 3),
            row(1, true, false, 0),
        ];
        assert_eq!(policy.candidate(&health), (Some(1), true));
        // A higher floor blocks the two-member group too.
        let policy = policy.with_live_floor(2);
        assert_eq!(policy.candidate(&health), (None, true));
    }

    #[test]
    fn candidate_ignores_dead_and_draining_seats() {
        let policy = RecalPolicy::new(1);
        // The evicted seat is stalest but not a candidate — and it does
        // not count toward its group's routable floor either.
        let health = vec![
            row(0, false, false, 99),
            row(0, true, false, 4),
            row(0, true, false, 2),
        ];
        assert_eq!(policy.candidate(&health), (Some(1), false));
        // A draining seat neither rotates nor holds the floor: with it
        // out, the group's only other member is floor-blocked.
        let health = vec![row(0, true, true, 9), row(0, true, false, 4)];
        assert_eq!(policy.candidate(&health), (None, true));
    }
}
