//! The remote transport: the `aimc-wire` shard protocol over a byte
//! stream.
//!
//! [`ShardServer`] is the host side — it owns a shard (any
//! [`ShardTransport`], typically a [`LocalTransport`](crate::LocalTransport)
//! whose replica was programmed from the fleet's seed) and serves the
//! protocol: [`ShardServer::serve_forever`] accepts concurrent
//! connections, each with its own protocol loop, so a dropped client can
//! reconnect to a still-programmed replica while other clients keep
//! streaming. [`TcpTransport`] is the router side — it implements
//! [`ShardTransport`] by encoding every operation as wire frames, so the
//! router cannot tell a remote shard from a local one.
//!
//! Both ends are stream-agnostic: a real `TcpStream`, or an in-memory
//! [`aimc_wire::duplex`] pipe in tests — the protocol bytes are identical.
//!
//! ## Flow control and correlation
//!
//! Requests and replies correlate by **global stream index** (unique per
//! request by construction — the router's lease allocator never issues an
//! index twice between reprogram rewinds), so replies may arrive
//! interleaved with control replies on one connection. Control commands
//! are strictly one-outstanding-at-a-time (serialized client-side), so
//! control replies need no id at all. Backpressure is the shard's own
//! bounded queue: when it fills, the server stops reading frames, the
//! byte stream fills, and the client's `submit_indexed` blocks in `write`
//! — the same push-back a local submitter feels, propagated through the
//! pipe.
//!
//! ## Link death, reconnect, and go-back-N replay
//!
//! A transport built with [`TcpTransport::connect`] (or
//! [`TcpTransport::with_connector`]) survives link death: every submitted
//! request keeps its `(index, image)` pair buffered until its reply
//! arrives, so when the connection drops the transport re-dials (bounded
//! attempts with backoff, per [`RetryPolicy`]), announces itself with
//! `Hello { resumed: true }`, and retransmits the unacknowledged tail of
//! each lease in ascending index order — go-back-N per lease, framed by
//! an advisory `ReplayLeases`. Replay may re-execute a request whose
//! reply was lost in flight; that is harmless by construction, because
//! noise is keyed by the global coordinate (re-running index `k` yields
//! bit-identical logits) and the client ignores a reply for an index it
//! no longer has pending. Control commands are level-based (drift to an
//! absolute time, reprogram from the seed), so the client resends one
//! that was cut off mid-call.
//!
//! When the retry budget is exhausted the transport closes and parks its
//! unacknowledged requests as [`Orphan`]s instead of cancelling them —
//! the fleet router harvests those with
//! [`ShardTransport::take_orphans`] and re-routes each at its original
//! coordinate, so eviction never shifts an index.

use crate::handle::{pending_pair, CompletionSlot, Pending, ServeError, ServeStats};
use crate::qos::{Admission, Priority, QosClass, ShardLoad};
use crate::transport::{Orphan, ShardTransport};
use aimc_dnn::Tensor;
use aimc_parallel::Parallelism;
use aimc_wire::{
    read_frame, write_frame, Frame, IndexLease, ReplyError, ShardReply, ShardRequest, ShardSpec,
    WireClassStats, WireStats,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- server

/// Channel from the server's decode loop to its replier thread: one
/// `(global_index, completion)` entry per accepted request.
type ReplySender = Sender<(u64, Pending)>;
type ReplyReceiver = Receiver<(u64, Pending)>;

/// Serves one shard over the wire protocol (see the module docs).
///
/// The server is connection-oriented: [`ShardServer::serve_stream`] runs
/// the protocol loop for one client until it disconnects or sends
/// `Shutdown`, and [`ShardServer::serve_forever`] accepts connections
/// concurrently, each on its own session thread. The shard itself
/// outlives connections, so a dropped client can reconnect to a
/// still-programmed replica and replay its unacknowledged requests.
#[derive(Clone)]
pub struct ShardServer {
    shard: Arc<dyn ShardTransport>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer").finish_non_exhaustive()
    }
}

impl ShardServer {
    /// Wraps a shard for serving. The shard's replica should already be
    /// programmed from the fleet's seed (the facade's
    /// `Platform::shard_server` does both).
    pub fn new(shard: Box<dyn ShardTransport>) -> Self {
        ShardServer {
            shard: Arc::from(shard),
        }
    }

    /// Accepts one connection on `listener` and serves it to completion
    /// (client disconnect or `Shutdown`).
    ///
    /// # Errors
    /// Accept or protocol-level I/O errors.
    pub fn serve_next(&self, listener: &TcpListener) -> io::Result<()> {
        let (stream, _peer) = listener.accept()?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        self.serve_stream(stream, writer)
    }

    /// Accepts connections until the shard shuts down, serving each on its
    /// own session thread — so a reconnecting client never waits behind an
    /// established one, and several routers can stream to one replica.
    ///
    /// Returns once the shard is closed (a client sent `Shutdown`, or the
    /// shard was shut down out-of-band) and every session has ended;
    /// sessions end when their client disconnects.
    ///
    /// # Errors
    /// Accept failures other than transient unreadiness.
    pub fn serve_forever(&self, listener: &TcpListener) -> io::Result<()> {
        // Non-blocking accept so shard shutdown is noticed promptly even
        // with no connection attempts arriving.
        listener.set_nonblocking(true)?;
        let mut sessions = Vec::new();
        while !self.shard.is_closed() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true).ok();
                    let writer = stream.try_clone()?;
                    let server = self.clone();
                    sessions.push(
                        std::thread::Builder::new()
                            .name("aimc-shard-session".into())
                            .spawn(move || {
                                let _ = server.serve_stream(stream, writer);
                            })
                            .expect("spawn shard session"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
            sessions.retain(|s| !s.is_finished());
        }
        for session in sessions {
            let _ = session.join();
        }
        Ok(())
    }

    /// Runs the protocol loop on an established connection: decodes frames
    /// from `reader`, drives the shard, and writes replies to `writer`.
    /// Returns on clean disconnect (EOF between frames) or after answering
    /// `Shutdown`; all replies for accepted requests are written before
    /// either return.
    ///
    /// # Errors
    /// Protocol violations (`InvalidData`) or underlying I/O failures.
    pub fn serve_stream(
        &self,
        mut reader: impl Read,
        writer: impl Write + Send + 'static,
    ) -> io::Result<()> {
        let writer = Arc::new(Mutex::new(writer));
        // Completed requests flow back on their own thread: the shard
        // fulfills tickets in FIFO dispatch order, so one replier waiting
        // each Pending in turn streams replies without head-of-line cost.
        let (tx, rx): (ReplySender, ReplyReceiver) = mpsc::channel();
        let replier = {
            let writer = Arc::clone(&writer);
            let shard = Arc::clone(&self.shard);
            std::thread::Builder::new()
                .name("aimc-shard-replier".into())
                .spawn(move || {
                    // Once the writer dies the channel is still drained —
                    // each remaining Pending is waited (so serve_stream
                    // returns only after every accepted request's shard
                    // ticket settled) and its reply discarded.
                    let mut writer_alive = true;
                    for (global_index, pending) in rx {
                        let outcome = match pending.wait() {
                            Ok(t) => Ok(t),
                            Err(e) => Err(reply_error(e)),
                        };
                        if !writer_alive {
                            continue;
                        }
                        // ECN-style marking: each reply carries the
                        // shard's pressure bit at write time (level-
                        // triggered, like a switch marking packets while
                        // its queue is past the threshold).
                        let frame = Frame::Reply(ShardReply {
                            global_index,
                            marked: shard.load().pressure,
                            outcome,
                        });
                        if write_frame(&mut *writer.lock().unwrap(), &frame).is_err() {
                            writer_alive = false;
                        }
                    }
                })
                .expect("spawn shard replier")
        };

        let result = self.frame_loop(&mut reader, &writer, &tx);
        // Settle the replier before returning so every accepted request's
        // reply is on the wire (or the link is known dead).
        drop(tx);
        let _ = replier.join();
        // `Shutdown` acks only after all replies above were written.
        if let Ok(true) = result {
            let _ = write_frame(&mut *writer.lock().unwrap(), &Frame::ShutdownDone);
        }
        result.map(|_| ())
    }

    /// The decode/dispatch loop. Returns `Ok(true)` when the client asked
    /// for shutdown, `Ok(false)` on clean disconnect.
    fn frame_loop(
        &self,
        reader: &mut impl Read,
        writer: &Arc<Mutex<impl Write + Send + 'static>>,
        tx: &Sender<(u64, Pending)>,
    ) -> io::Result<bool> {
        let reply = |frame: &Frame| write_frame(&mut *writer.lock().unwrap(), frame);
        loop {
            let frame = match read_frame(reader) {
                Ok(f) => f,
                // EOF between frames: the client hung up without Shutdown.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
                Err(e) => return Err(e),
            };
            match frame {
                Frame::Hello { resumed: _ } => reply(&Frame::HelloAck)?,
                Frame::Request(ShardRequest {
                    global_index,
                    class,
                    image,
                }) => match self.shard.submit_admitted(global_index, image, class) {
                    Ok(pending) => {
                        let _ = tx.send((global_index, pending));
                    }
                    Err(e) => reply(&Frame::Reply(ShardReply {
                        global_index,
                        marked: false,
                        outcome: Err(reply_error(e)),
                    }))?,
                },
                Frame::Lease(lease) => self.shard.grant_lease(lease),
                // Advisory preface of a go-back-N retransmission: the
                // leases whose unacknowledged tails follow as Requests.
                // Replayed requests may duplicate already-executed ones;
                // coordinate-keyed noise makes the re-execution
                // bit-identical, and the client drops duplicate replies.
                Frame::ReplayLeases(leases) => {
                    for lease in leases {
                        self.shard.grant_lease(lease);
                    }
                }
                Frame::Drain => {
                    self.shard.drain();
                    reply(&Frame::DrainDone)?;
                }
                Frame::Shutdown => {
                    self.shard.shutdown();
                    // ShutdownDone is written by serve_stream after the
                    // replier settles, so it orders after every reply.
                    return Ok(true);
                }
                Frame::ApplyDrift(t_hours) => {
                    let modeled = self.shard.apply_drift(t_hours);
                    reply(&Frame::DriftDone(modeled))?;
                }
                Frame::Reprogram => {
                    let outcome = self.shard.reprogram().map_err(|e| e.to_string());
                    reply(&Frame::ReprogramDone(outcome))?;
                }
                Frame::SetParallelism(par) => {
                    self.shard.set_parallelism(par);
                    reply(&Frame::ParallelismSet)?;
                }
                Frame::StatsProbe => {
                    let stats = to_wire_stats(&self.shard.stats());
                    reply(&Frame::Stats(stats))?;
                }
                Frame::SpecProbe => {
                    reply(&Frame::Spec(self.shard.spec()))?;
                }
                // Server-to-client frames arriving at the server are a
                // protocol violation.
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected client frame: {other:?}"),
                    ))
                }
            }
        }
    }
}

fn reply_error(e: ServeError) -> ReplyError {
    match e {
        ServeError::ShutDown | ServeError::NoShards => ReplyError::ShutDown,
        ServeError::Canceled => ReplyError::Canceled,
        ServeError::Exec(err) => ReplyError::Exec(err.to_string()),
        ServeError::Remote(msg) => ReplyError::Exec(msg),
        // Registry errors never originate on a shard host, but the mapping
        // must stay total: render them like any other execution failure.
        e @ (ServeError::UnknownModel(_)
        | ServeError::SpecMismatch(_)
        | ServeError::LiveFloor
        | ServeError::UnknownShard(_)) => ReplyError::Exec(e.to_string()),
    }
}

fn serve_error(e: ReplyError) -> ServeError {
    match e {
        ReplyError::ShutDown => ServeError::ShutDown,
        ReplyError::Canceled => ServeError::Canceled,
        ReplyError::Exec(msg) => ServeError::Remote(msg),
    }
}

fn ns(d: &Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn to_wire_stats(s: &ServeStats) -> WireStats {
    let mut classes: [WireClassStats; Priority::COUNT] = Default::default();
    for (wire, local) in classes.iter_mut().zip(&s.qos.classes) {
        *wire = WireClassStats {
            admitted: local.admitted,
            shed_queue_full: local.shed_queue_full,
            shed_class_budget: local.shed_class_budget,
            shed_overload: local.shed_overload,
            infeasible: local.infeasible,
            deadline_misses: local.deadline_misses,
            latencies_ns: local.latencies.iter().map(ns).collect(),
        };
    }
    WireStats {
        submitted: s.submitted,
        completed: s.completed,
        rejected: s.rejected,
        batches: s.batches,
        dispatched: s.dispatched,
        max_batch_observed: s.max_batch_observed as u64,
        ecn_marks: s.qos.ecn_marks,
        drift_age: s.drift_age,
        reprograms: s.reprograms,
        classes,
        queue_waits_ns: s.queue_waits.iter().map(ns).collect(),
    }
}

fn from_wire_stats(s: WireStats) -> ServeStats {
    let mut stats = ServeStats {
        submitted: s.submitted,
        completed: s.completed,
        rejected: s.rejected,
        batches: s.batches,
        dispatched: s.dispatched,
        max_batch_observed: s.max_batch_observed as usize,
        queue_waits: s
            .queue_waits_ns
            .into_iter()
            .map(Duration::from_nanos)
            .collect(),
        drift_age: s.drift_age,
        reprograms: s.reprograms,
        ..ServeStats::default()
    };
    stats.qos.ecn_marks = s.ecn_marks;
    for (local, wire) in stats.qos.classes.iter_mut().zip(s.classes) {
        local.admitted = wire.admitted;
        local.shed_queue_full = wire.shed_queue_full;
        local.shed_class_budget = wire.shed_class_budget;
        local.shed_overload = wire.shed_overload;
        local.infeasible = wire.infeasible;
        local.deadline_misses = wire.deadline_misses;
        local.latencies = wire
            .latencies_ns
            .into_iter()
            .map(Duration::from_nanos)
            .collect();
    }
    stats
}

// ---------------------------------------------------------------- client

/// Dials one fresh connection to a shard server.
///
/// A replay-capable [`TcpTransport`] keeps its connector for the
/// connection's whole lifetime: every time the link dies it re-dials
/// through it (within the [`RetryPolicy`] budget) and replays the
/// unacknowledged requests on the new stream. Tests implement this over
/// in-memory pipes (optionally wrapped in
/// [`aimc_wire::FaultyEnd`]) to script churn.
pub trait Connect: Send + Sync {
    /// Establishes a new connection, returning its reader and writer
    /// halves.
    ///
    /// # Errors
    /// Dial failures; the caller retries within its [`RetryPolicy`].
    fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)>;
}

/// Reconnect budget of a replay-capable transport: how many dials to
/// attempt after a link death, with linearly growing backoff between
/// them. Once the budget is exhausted the transport closes and parks its
/// unacknowledged requests as [`Orphan`]s for the router to re-route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    backoff: Duration,
}

impl RetryPolicy {
    /// At most `max_attempts` dials per outage, sleeping `backoff × n`
    /// before the n-th re-attempt.
    pub const fn new(max_attempts: u32, backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts,
            backoff,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(3, Duration::from_millis(10))
    }
}

/// A TCP [`Connect`]or: re-dials the same address.
struct TcpConnector {
    addr: SocketAddr,
}

impl Connect for TcpConnector {
    fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok((Box::new(reader), Box::new(stream)))
    }
}

/// One submitted-but-unanswered request. The image is retained so a
/// reconnect can retransmit it (go-back-N); it is dropped with the entry
/// when the reply lands.
struct PendingEntry {
    slot: Arc<CompletionSlot>,
    class: QosClass,
    image: Tensor,
}

/// How a replay-capable transport re-establishes its link.
struct ReplayConfig {
    connector: Box<dyn Connect>,
    retry: RetryPolicy,
}

struct RemoteState {
    /// Requests submitted and not yet answered, by global index — the
    /// go-back-N retransmission buffer.
    pending: HashMap<u64, PendingEntry>,
    /// Client-side refusals (the link was already closed) — the server
    /// never saw these, so they are merged into [`TcpTransport::stats`].
    rejected: u64,
    /// Last statistics snapshot fetched from the server; served after the
    /// link closes.
    last_stats: ServeStats,
    /// The shard's spec, fetched once over the wire and cached — a shard's
    /// identity never changes for the life of a connection.
    spec: Option<ShardSpec>,
    /// In-flight occupancy per priority class (client-side count).
    class_in_flight: [u64; Priority::COUNT],
    /// Latched congestion state: the `marked` bit of the most recent
    /// reply. Level-triggered like the server's marking — the router's
    /// pacer does its own edge detection.
    pressure: bool,
    /// Per-image service-time estimate from inter-reply gaps during busy
    /// periods (0 until two consecutive replies arrive with more work
    /// still outstanding).
    est_image_ns: u64,
    /// Arrival instant of the previous reply within the current busy
    /// period; `None` once the pipeline empties (so idle gaps never
    /// pollute the estimate).
    last_reply_at: Option<Instant>,
    /// Client-side deadline-infeasibility rejections per class — decided
    /// here before any frame is written, so the server never sees them;
    /// folded into [`ShardTransport::stats`] alongside the server ledger.
    infeasible: [u64; Priority::COUNT],
    /// Leases granted to this shard, kept so a reconnect can announce the
    /// blocks whose tails it retransmits. Pruned against `pending` when it
    /// grows.
    granted: Vec<IndexLease>,
    /// Whether the link currently has a live writer. `false` during an
    /// outage (between link death and a successful replay); submissions
    /// wait on `state_cv` for it rather than racing the reconnect.
    link_up: bool,
    /// Requests stranded by a permanent link death, awaiting
    /// [`ShardTransport::take_orphans`].
    orphans: Vec<Orphan>,
}

struct RemoteInner {
    writer: Mutex<Box<dyn Write + Send>>,
    state: Mutex<RemoteState>,
    /// Signals `pending` transitions (drain waits on it) and link
    /// up/down/epoch transitions.
    state_cv: Condvar,
    /// One-deep mailbox for control replies; the control lock serializes
    /// users, so depth one suffices.
    mailbox: Mutex<Option<Frame>>,
    mailbox_cv: Condvar,
    /// Serializes control commands (one outstanding per connection).
    control: Mutex<()>,
    /// Set on shutdown or permanent link death; checked lock-free on
    /// every path.
    closed: AtomicBool,
    /// Reconnect configuration; `None` for a transport over a fixed
    /// stream ([`TcpTransport::over`]), whose link death cancels instead
    /// of replaying.
    replay: Option<ReplayConfig>,
    /// Bumped on every link death, so a control call waiting for its
    /// reply can tell "the link I wrote on died" from a slow server and
    /// resend on the replacement link.
    link_epoch: AtomicU64,
    /// Set at the start of [`ShardTransport::shutdown`]: the EOF the
    /// server sends after `ShutdownDone` must not trigger a reconnect.
    shutting_down: AtomicBool,
}

impl RemoteInner {
    /// Marks the link permanently dead and cancels everything
    /// outstanding.
    fn close_link(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut st = self.state.lock().unwrap();
        st.link_up = false;
        for (_, entry) in st.pending.drain() {
            entry.slot.fulfill(Err(ServeError::Canceled));
        }
        st.class_in_flight = [0; Priority::COUNT];
        drop(st);
        // A reply parked by a link that died mid-control must not be
        // misdelivered to the next control call.
        *self.mailbox.lock().unwrap() = None;
        self.state_cv.notify_all();
        self.mailbox_cv.notify_all();
    }

    /// Marks the link down (but recoverable): submissions start waiting,
    /// the epoch moves so in-flight control calls abandon the dead link,
    /// and any stale control reply is dropped.
    fn note_link_down(&self) {
        let mut st = self.state.lock().unwrap();
        st.link_up = false;
        st.last_reply_at = None;
        self.link_epoch.fetch_add(1, Ordering::SeqCst);
        drop(st);
        *self.mailbox.lock().unwrap() = None;
        self.state_cv.notify_all();
        self.mailbox_cv.notify_all();
    }

    /// Permanent link death after a spent retry budget: closes the
    /// transport but parks the unacknowledged requests as [`Orphan`]s —
    /// the router re-routes them at their original coordinates instead of
    /// surfacing cancellations.
    fn park_orphans(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut st = self.state.lock().unwrap();
        st.link_up = false;
        let stranded: Vec<Orphan> = st
            .pending
            .drain()
            .map(|(index, entry)| Orphan {
                index,
                image: entry.image,
                class: entry.class,
                slot: entry.slot,
            })
            .collect();
        st.orphans.extend(stranded);
        st.class_in_flight = [0; Priority::COUNT];
        drop(st);
        *self.mailbox.lock().unwrap() = None;
        self.state_cv.notify_all();
        self.mailbox_cv.notify_all();
    }
}

impl Drop for RemoteInner {
    fn drop(&mut self) {
        // Orphans nobody harvested settle as cancellations rather than
        // hanging their callers forever.
        let state = self.state.get_mut().unwrap();
        for orphan in state.orphans.drain(..) {
            orphan.slot.fulfill(Err(ServeError::Canceled));
        }
    }
}

/// The router's side of a remote shard: implements [`ShardTransport`] by
/// speaking the wire protocol to a [`ShardServer`] (see the module docs).
///
/// Despite the name, the transport runs over **any** byte stream:
/// [`TcpTransport::connect`] for sockets (reconnect-and-replay capable),
/// [`TcpTransport::with_connector`] for a custom dialer, and
/// [`TcpTransport::over`] for a fixed `Read + Write` pair — e.g. an
/// [`aimc_wire::duplex`] pipe in tests — whose link death cancels
/// outstanding requests instead of replaying. Clone-able; clones share
/// the connection.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<RemoteInner>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("closed", &self.inner.closed.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Connects to a [`ShardServer`] listening at `addr`, with the default
    /// [`RetryPolicy`] governing reconnect-and-replay on link death.
    ///
    /// # Errors
    /// Connection or handshake failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Self::with_connector(Box::new(TcpConnector { addr }), RetryPolicy::default())
    }

    /// Connects through an arbitrary [`Connect`]or, keeping it for
    /// reconnect-and-replay under `retry` when the link dies.
    ///
    /// # Errors
    /// Initial dial or handshake failures.
    pub fn with_connector(connector: Box<dyn Connect>, retry: RetryPolicy) -> io::Result<Self> {
        let (mut reader, mut writer) = connector.connect()?;
        write_frame(&mut writer, &Frame::Hello { resumed: false })?;
        match read_frame(&mut reader)? {
            Frame::HelloAck => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected HelloAck, got {other:?}"),
                ))
            }
        }
        Ok(Self::start(
            reader,
            writer,
            Some(ReplayConfig { connector, retry }),
        ))
    }

    /// Wraps an established duplex byte stream (reader half + writer
    /// half). A background thread consumes `reader` for the connection's
    /// lifetime. No reconnect is possible on a fixed stream, so link
    /// death cancels outstanding requests.
    pub fn over(reader: impl Read + Send + 'static, writer: impl Write + Send + 'static) -> Self {
        Self::start(Box::new(reader), Box::new(writer), None)
    }

    fn start(
        reader: Box<dyn Read + Send>,
        writer: Box<dyn Write + Send>,
        replay: Option<ReplayConfig>,
    ) -> Self {
        let inner = Arc::new(RemoteInner {
            writer: Mutex::new(writer),
            state: Mutex::new(RemoteState {
                pending: HashMap::new(),
                rejected: 0,
                last_stats: ServeStats::default(),
                spec: None,
                class_in_flight: [0; Priority::COUNT],
                pressure: false,
                est_image_ns: 0,
                last_reply_at: None,
                infeasible: [0; Priority::COUNT],
                granted: Vec::new(),
                link_up: true,
                orphans: Vec::new(),
            }),
            state_cv: Condvar::new(),
            mailbox: Mutex::new(None),
            mailbox_cv: Condvar::new(),
            control: Mutex::new(()),
            closed: AtomicBool::new(false),
            replay,
            link_epoch: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let thread_inner = Arc::clone(&inner);
        // The thread settles everything in close_link/park_orphans before
        // exiting, so nothing needs to join it.
        std::thread::Builder::new()
            .name("aimc-remote-reader".into())
            .spawn(move || run_reader(reader, &thread_inner))
            .expect("spawn remote reader");
        TcpTransport { inner }
    }

    fn is_link_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Sends one control frame and blocks for its reply (control traffic
    /// is strictly one-outstanding, enforced by the control lock). On a
    /// replay-capable link a death mid-call resends the frame on the
    /// replacement link — control operations are level-based, so
    /// re-execution is safe.
    fn control(&self, request: &Frame) -> Result<Frame, ServeError> {
        let _serial = self.inner.control.lock().unwrap();
        loop {
            // Wait out any reconnect in progress before writing.
            {
                let mut st = self.inner.state.lock().unwrap();
                while !st.link_up {
                    if self.is_link_closed() {
                        return Err(ServeError::ShutDown);
                    }
                    st = self.inner.state_cv.wait(st).unwrap();
                }
            }
            let epoch = self.inner.link_epoch.load(Ordering::SeqCst);
            let write_ok = write_frame(&mut *self.inner.writer.lock().unwrap(), request).is_ok();
            if !write_ok {
                if self.inner.replay.is_none() {
                    self.inner.close_link();
                    return Err(ServeError::ShutDown);
                }
                // The reader thread notices the death and reconnects;
                // wait for the epoch to move (or the link to close) and
                // resend.
                self.wait_epoch_change(epoch);
                continue;
            }
            let mut mail = self.inner.mailbox.lock().unwrap();
            let reply = loop {
                if let Some(reply) = mail.take() {
                    break Some(reply);
                }
                if self.is_link_closed() {
                    return Err(ServeError::ShutDown);
                }
                if self.inner.link_epoch.load(Ordering::SeqCst) != epoch {
                    // Link died mid-call; the mailbox was flushed with it.
                    break None;
                }
                mail = self.inner.mailbox_cv.wait(mail).unwrap();
            };
            let Some(reply) = reply else { continue };
            if !control_reply_matches(request, &reply) {
                return Err(ServeError::Remote(format!(
                    "protocol violation: control reply {reply:?} does not answer {request:?}"
                )));
            }
            return Ok(reply);
        }
    }

    /// Blocks until the link epoch moves past `epoch` or the transport
    /// closes.
    fn wait_epoch_change(&self, epoch: u64) {
        let mut st = self.inner.state.lock().unwrap();
        while self.inner.link_epoch.load(Ordering::SeqCst) == epoch && !self.is_link_closed() {
            st = self.inner.state_cv.wait(st).unwrap();
        }
    }

    /// Waits until no submitted request is outstanding on this transport.
    fn wait_pending_empty(&self) {
        let mut st = self.inner.state.lock().unwrap();
        while !st.pending.is_empty() {
            st = self.inner.state_cv.wait(st).unwrap();
        }
    }
}

/// Whether `reply` is the reply type that answers control frame
/// `request`.
fn control_reply_matches(request: &Frame, reply: &Frame) -> bool {
    matches!(
        (request, reply),
        (Frame::Drain, Frame::DrainDone)
            | (Frame::Shutdown, Frame::ShutdownDone)
            | (Frame::ApplyDrift(_), Frame::DriftDone(_))
            | (Frame::Reprogram, Frame::ReprogramDone(_))
            | (Frame::SetParallelism(_), Frame::ParallelismSet)
            | (Frame::StatsProbe, Frame::Stats(_))
            | (Frame::SpecProbe, Frame::Spec(_))
    )
}

/// The reader thread: consumes replies until the link dies, then — on a
/// replay-capable transport — reconnects and retransmits go-back-N, or
/// parks the pendings as orphans once the retry budget is spent.
fn run_reader(mut reader: Box<dyn Read + Send>, inner: &Arc<RemoteInner>) {
    loop {
        reader_loop(&mut reader, inner);
        // The link is dead: EOF, a decode error, or a protocol violation.
        let resumable = inner.replay.is_some()
            && !inner.shutting_down.load(Ordering::SeqCst)
            && !inner.closed.load(Ordering::SeqCst);
        if !resumable {
            inner.close_link();
            return;
        }
        inner.note_link_down();
        match reconnect_and_replay(inner) {
            Ok(new_reader) => reader = new_reader,
            Err(_) => {
                inner.park_orphans();
                return;
            }
        }
    }
}

fn reader_loop(reader: &mut impl Read, inner: &RemoteInner) {
    loop {
        match read_frame(reader) {
            Ok(Frame::Reply(ShardReply {
                global_index,
                marked,
                outcome,
            })) => {
                let now = Instant::now();
                let mut st = inner.state.lock().unwrap();
                // A duplicate reply (the original raced a replayed
                // re-execution) finds no entry and is dropped — both carry
                // bit-identical logits, so either serves.
                if let Some(entry) = st.pending.remove(&global_index) {
                    let rank = entry.class.priority.rank();
                    st.class_in_flight[rank] = st.class_in_flight[rank].saturating_sub(1);
                    // Level-triggered latch of the shard's pressure bit.
                    st.pressure = marked;
                    // Service-time estimate from inter-reply gaps, but only
                    // while more work is outstanding (a gap that includes
                    // pipeline idle time is not a service time).
                    if let Some(prev) = st.last_reply_at {
                        if !st.pending.is_empty() {
                            let gap = ns(&now.saturating_duration_since(prev));
                            st.est_image_ns = if st.est_image_ns == 0 {
                                gap
                            } else {
                                (3 * (st.est_image_ns as u128) + gap as u128).div_euclid(4) as u64
                            };
                        }
                    }
                    st.last_reply_at = (!st.pending.is_empty()).then_some(now);
                    entry.slot.fulfill(outcome.map_err(serve_error));
                }
                drop(st);
                inner.state_cv.notify_all();
            }
            Ok(
                reply @ (Frame::DrainDone
                | Frame::ShutdownDone
                | Frame::DriftDone(_)
                | Frame::ReprogramDone(_)
                | Frame::ParallelismSet
                | Frame::Stats(_)
                | Frame::Spec(_)),
            ) => {
                *inner.mailbox.lock().unwrap() = Some(reply);
                inner.mailbox_cv.notify_all();
            }
            // Client-to-server frames echoed back, or decode/link errors:
            // the connection is unusable either way.
            Ok(_) | Err(_) => return,
        }
    }
}

/// Re-dials within the retry budget; on success the go-back-N replay has
/// already been written and the link marked up.
fn reconnect_and_replay(inner: &RemoteInner) -> io::Result<Box<dyn Read + Send>> {
    let replay = inner.replay.as_ref().expect("reconnect needs a connector");
    let mut last = io::Error::new(io::ErrorKind::ConnectionRefused, "retry budget is zero");
    for attempt in 0..replay.retry.max_attempts {
        if attempt > 0 {
            std::thread::sleep(replay.retry.backoff.saturating_mul(attempt));
        }
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "shutting down"));
        }
        match try_resume(inner, replay) {
            Ok(reader) => return Ok(reader),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// One resume attempt: dial, handshake with `Hello { resumed: true }`,
/// then — under the writer lock, so no submission interleaves — announce
/// the leases still carrying unacknowledged work and retransmit those
/// requests in ascending index order (go-back-N per lease: lease blocks
/// are contiguous, so the ascending replay is exactly each lease's
/// unacknowledged tail).
fn try_resume(inner: &RemoteInner, replay: &ReplayConfig) -> io::Result<Box<dyn Read + Send>> {
    let (mut reader, mut writer) = replay.connector.connect()?;
    write_frame(&mut writer, &Frame::Hello { resumed: true })?;
    match read_frame(&mut reader)? {
        Frame::HelloAck => {}
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            ))
        }
    }
    let mut current = inner.writer.lock().unwrap();
    // Snapshot under the state lock; anything registered later writes its
    // own frame once the writer lock frees (submissions wait for link_up,
    // which is still false here).
    let (leases, backlog) = {
        let st = inner.state.lock().unwrap();
        let leases: Vec<IndexLease> = st
            .granted
            .iter()
            .filter(|lease| st.pending.keys().any(|&i| lease.contains(i)))
            .copied()
            .collect();
        let mut backlog: Vec<(u64, QosClass, Tensor)> = st
            .pending
            .iter()
            .map(|(&i, entry)| (i, entry.class, entry.image.clone()))
            .collect();
        backlog.sort_unstable_by_key(|&(i, ..)| i);
        (leases, backlog)
    };
    write_frame(&mut writer, &Frame::ReplayLeases(leases))?;
    for (global_index, class, image) in backlog {
        write_frame(
            &mut writer,
            &Frame::Request(ShardRequest {
                global_index,
                class,
                image,
            }),
        )?;
    }
    *current = writer;
    drop(current);
    inner.state.lock().unwrap().link_up = true;
    inner.state_cv.notify_all();
    Ok(reader)
}

impl ShardTransport for TcpTransport {
    fn submit_indexed(&self, index: u64, image: Tensor) -> Result<Pending, ServeError> {
        self.submit_admitted(index, image, QosClass::default())
    }

    fn submit_admitted(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Pending, ServeError> {
        let (pending, slot) = pending_pair();
        let rank = class.priority.rank();
        {
            let mut st = self.inner.state.lock().unwrap();
            // During an outage, wait for the replay to finish rather than
            // racing it: registering mid-replay could miss both the
            // snapshot and the new writer.
            while !st.link_up {
                if self.is_link_closed() {
                    st.rejected += 1;
                    return Err(ServeError::ShutDown);
                }
                st = self.inner.state_cv.wait(st).unwrap();
            }
            if self.is_link_closed() {
                st.rejected += 1;
                return Err(ServeError::ShutDown);
            }
            // Registered before the frame is written, so a reply can never
            // race past its slot — and so a link death between here and
            // the write leaves the request in the replay buffer.
            st.pending.insert(
                index,
                PendingEntry {
                    slot,
                    class,
                    image: image.clone(),
                },
            );
            st.class_in_flight[rank] += 1;
        }
        let frame = Frame::Request(ShardRequest {
            global_index: index,
            class,
            image,
        });
        let write_ok = write_frame(&mut *self.inner.writer.lock().unwrap(), &frame).is_ok();
        if !write_ok {
            if self.inner.replay.is_some() && !self.is_link_closed() {
                // The link died mid-submit but is recoverable: the request
                // is registered, so the reconnect replay retransmits it.
                return Ok(pending);
            }
            // Permanently dead: roll the registration back and refuse. The
            // entry may have moved to the orphan list if the park raced
            // us — remove it from wherever it landed, since the caller
            // sees an error and the index will be re-issued.
            let mut st = self.inner.state.lock().unwrap();
            if st.pending.remove(&index).is_some() {
                st.class_in_flight[rank] = st.class_in_flight[rank].saturating_sub(1);
            } else if let Some(pos) = st.orphans.iter().position(|o| o.index == index) {
                st.orphans.swap_remove(pos);
            }
            st.rejected += 1;
            drop(st);
            if self.inner.replay.is_none() {
                self.inner.close_link();
            }
            return Err(ServeError::ShutDown);
        }
        Ok(pending)
    }

    fn submit_qos(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        // Client-side deadline feasibility from the local occupancy count
        // and the inter-reply service estimate — no round trip, and the
        // refusal happens before any frame is written, so the router can
        // roll the index back synchronously. Queue/budget shedding for
        // remote shards is the router's job (it owns the fleet budgets
        // and the AIMD pacer); the server never sheds admitted work.
        if let Some(deadline) = class.deadline {
            let mut st = self.inner.state.lock().unwrap();
            if st.est_image_ns > 0 {
                let estimated_wait =
                    Duration::from_nanos((st.pending.len() as u64).saturating_mul(st.est_image_ns));
                if estimated_wait > deadline {
                    st.infeasible[class.priority.rank()] += 1;
                    return Ok(Admission::DeadlineInfeasible { estimated_wait });
                }
            }
        }
        self.submit_admitted(index, image, class)
            .map(Admission::Admitted)
    }

    fn load(&self) -> ShardLoad {
        let st = self.inner.state.lock().unwrap();
        ShardLoad {
            in_flight: st.pending.len() as u64,
            per_class: st.class_in_flight,
            pressure: st.pressure,
            est_image_ns: st.est_image_ns,
        }
    }

    fn grant_lease(&self, lease: IndexLease) {
        if self.is_link_closed() {
            return;
        }
        {
            let mut st = self.inner.state.lock().unwrap();
            st.granted.push(lease);
            // Bound the record: leases whose every index was acknowledged
            // will never be replayed.
            if st.granted.len() > 64 {
                let live: Vec<u64> = st.pending.keys().copied().collect();
                st.granted
                    .retain(|l| live.iter().any(|&i| l.contains(i)) || *l == lease);
            }
        }
        // Advisory fire-and-forget; a failed write surfaces on the next
        // submission.
        let _ = write_frame(
            &mut *self.inner.writer.lock().unwrap(),
            &Frame::Lease(lease),
        );
    }

    fn in_flight(&self) -> u64 {
        self.inner.state.lock().unwrap().pending.len() as u64
    }

    fn drain(&self) {
        if !self.is_link_closed() {
            let _ = self.control(&Frame::Drain); // DrainDone or closed link
        }
        // Either way every outstanding request settles or parks: replies
        // were flushed before DrainDone, a dead link cancels its pendings,
        // and an exhausted retry budget moves them to the orphan list.
        self.wait_pending_empty();
    }

    fn shutdown(&self) {
        // From here the reader must not reconnect: the EOF after
        // ShutdownDone is the server hanging up, not an outage.
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        if !self.is_link_closed() {
            self.drain();
            // Cache the final server statistics while the link still
            // works; stats() serves this snapshot after close.
            if let Ok(Frame::Stats(ws)) = self.control(&Frame::StatsProbe) {
                self.inner.state.lock().unwrap().last_stats = from_wire_stats(ws);
            }
            // ShutdownDone orders after every reply, so nothing is lost.
            let _ = self.control(&Frame::Shutdown);
            self.inner.close_link();
        }
        self.wait_pending_empty();
        // Orphans nobody harvested settle as cancellations at shutdown.
        let stranded = std::mem::take(&mut self.inner.state.lock().unwrap().orphans);
        for orphan in stranded {
            orphan.slot.fulfill(Err(ServeError::Canceled));
        }
    }

    fn is_closed(&self) -> bool {
        self.is_link_closed()
    }

    fn take_orphans(&self) -> Vec<Orphan> {
        std::mem::take(&mut self.inner.state.lock().unwrap().orphans)
    }

    fn stats(&self) -> ServeStats {
        if !self.is_link_closed() {
            if let Ok(Frame::Stats(ws)) = self.control(&Frame::StatsProbe) {
                self.inner.state.lock().unwrap().last_stats = from_wire_stats(ws);
            }
        }
        let st = self.inner.state.lock().unwrap();
        let mut stats = st.last_stats.clone();
        // Client-side refusals and infeasibility rejections the server
        // never saw.
        stats.rejected += st.rejected;
        for (class, &n) in stats.qos.classes.iter_mut().zip(&st.infeasible) {
            class.infeasible += n;
        }
        stats
    }

    fn spec(&self) -> ShardSpec {
        if let Some(spec) = self.inner.state.lock().unwrap().spec.clone() {
            return spec;
        }
        if let Ok(Frame::Spec(spec)) = self.control(&Frame::SpecProbe) {
            self.inner.state.lock().unwrap().spec = Some(spec.clone());
            return spec;
        }
        // Dead link before the first probe: report the spec-less default.
        // The registry will group this transport with other defaults; a
        // transport that cannot even answer a probe is evicted on first
        // use anyway.
        ShardSpec::default()
    }

    fn apply_drift(&self, t_hours: f64) -> bool {
        matches!(
            self.control(&Frame::ApplyDrift(t_hours)),
            Ok(Frame::DriftDone(true))
        )
    }

    fn reprogram(&self) -> Result<(), ServeError> {
        match self.control(&Frame::Reprogram)? {
            Frame::ReprogramDone(Ok(())) => Ok(()),
            Frame::ReprogramDone(Err(msg)) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Remote(format!(
                "protocol violation: expected ReprogramDone, got {other:?}"
            ))),
        }
    }

    fn set_parallelism(&self, par: Parallelism) {
        let _ = self.control(&Frame::SetParallelism(par));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LocalTransport, ShardControl};
    use crate::{spawn, BatchPolicy};
    use aimc_dnn::{ExecError, Shape};
    use aimc_wire::{duplex, FaultPlan, FaultyEnd};
    use std::collections::VecDeque;
    use std::sync::atomic::AtomicU32;

    fn tensor(v: f32) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1), vec![v])
    }

    #[derive(Default)]
    struct RecordingControl {
        drifts: Mutex<Vec<f64>>,
        reprograms: Mutex<u32>,
        pars: Mutex<Vec<Parallelism>>,
        fail_reprogram: bool,
    }

    impl ShardControl for Arc<RecordingControl> {
        fn apply_drift(&self, t_hours: f64) -> bool {
            self.drifts.lock().unwrap().push(t_hours);
            true
        }
        fn reprogram(&self) -> Result<(), ExecError> {
            if self.fail_reprogram {
                return Err(ExecError::MissingWeights {
                    node: Default::default(),
                    name: "fc".into(),
                });
            }
            *self.reprograms.lock().unwrap() += 1;
            Ok(())
        }
        fn set_parallelism(&self, par: Parallelism) {
            self.pars.lock().unwrap().push(par);
        }
    }

    /// An echo shard server: results encode (index, value) so tests can
    /// verify the coordinate each request ran at.
    fn echo_server(control: Arc<RecordingControl>) -> ShardServer {
        let handle = spawn(
            BatchPolicy::new(2, Duration::from_millis(1)),
            |indices: &[u64], inputs: &[Tensor]| {
                Ok(indices
                    .iter()
                    .zip(inputs)
                    .map(|(&i, t)| tensor(i as f32 * 1000.0 + t.data()[0]))
                    .collect())
            },
        );
        ShardServer::new(Box::new(LocalTransport::new(handle, Box::new(control))))
    }

    /// An echo shard over a duplex pipe (the fixed-stream `over` path).
    fn piped_shard(control: Arc<RecordingControl>) -> (TcpTransport, std::thread::JoinHandle<()>) {
        let server = echo_server(control);
        let (client_end, server_end) = duplex();
        let server_thread = std::thread::spawn({
            let reader = server_end.clone();
            let writer = server_end;
            move || {
                server.serve_stream(reader, writer).unwrap();
            }
        });
        let reader = client_end.clone();
        (TcpTransport::over(reader, client_end), server_thread)
    }

    /// A [`Connect`]or over in-memory pipes: each dial spawns a fresh
    /// `serve_stream` session against the shared server and wires the
    /// client's writer through a scripted [`FaultyEnd`]. An exhausted
    /// script refuses further dials (a permanently dead host).
    struct PipeConnector {
        server: Arc<ShardServer>,
        plans: Mutex<VecDeque<FaultPlan>>,
        dials: AtomicU32,
    }

    impl PipeConnector {
        fn new(server: ShardServer, plans: Vec<FaultPlan>) -> Self {
            PipeConnector {
                server: Arc::new(server),
                plans: Mutex::new(plans.into()),
                dials: AtomicU32::new(0),
            }
        }
    }

    impl Connect for PipeConnector {
        fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
            let Some(plan) = self.plans.lock().unwrap().pop_front() else {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "host is gone",
                ));
            };
            self.dials.fetch_add(1, Ordering::SeqCst);
            let (client_end, server_end) = duplex();
            let server = Arc::clone(&self.server);
            std::thread::spawn(move || {
                let reader = server_end.clone();
                let writer = server_end.clone();
                let _ = server.serve_stream(reader, writer);
                // A finished session hangs up, so the client sees EOF.
                server_end.close();
            });
            let reader = client_end.clone();
            Ok((Box::new(reader), Box::new(FaultyEnd::new(client_end, plan))))
        }
    }

    #[test]
    fn requests_round_trip_with_their_coordinates() {
        let (t, server) = piped_shard(Arc::default());
        let pendings: Vec<Pending> = (0..6)
            .map(|i| t.submit_indexed(10 + i, tensor(i as f32)).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            assert_eq!(
                p.wait().unwrap().data(),
                &[(10 + i) as f32 * 1000.0 + i as f32],
                "request {i} evaluated at the wrong coordinate"
            );
        }
        t.drain();
        assert_eq!(t.in_flight(), 0);
        let stats = t.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        t.shutdown();
        assert!(t.is_closed());
        server.join().unwrap();
        // Post-shutdown submissions are refused client-side and merged
        // into the cached statistics.
        assert!(matches!(
            t.submit_indexed(99, tensor(0.0)),
            Err(ServeError::ShutDown)
        ));
        let stats = t.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn control_surface_reaches_the_remote_shard() {
        let control = Arc::new(RecordingControl::default());
        let (t, server) = piped_shard(Arc::clone(&control));
        assert!(t.apply_drift(24.0));
        assert_eq!(*control.drifts.lock().unwrap(), vec![24.0]);
        t.reprogram().unwrap();
        assert_eq!(*control.reprograms.lock().unwrap(), 1);
        t.set_parallelism(Parallelism::Threads(3));
        assert_eq!(*control.pars.lock().unwrap(), vec![Parallelism::Threads(3)]);
        // The spec probe answers over the *live* link (regression: a Spec
        // reply must land in the control mailbox, not sever the link).
        assert_eq!(t.spec(), ShardSpec::default());
        t.grant_lease(IndexLease::new(0, 8));
        let p = t.submit_indexed(0, tensor(5.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[5.0]);
        t.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn remote_reprogram_failure_carries_the_rendered_error() {
        let control = Arc::new(RecordingControl {
            fail_reprogram: true,
            ..Default::default()
        });
        let (t, server) = piped_shard(control);
        match t.reprogram() {
            Err(ServeError::Remote(msg)) => assert!(msg.contains("missing weights")),
            other => panic!("expected remote error, got {other:?}"),
        }
        t.shutdown();
        server.join().unwrap();
    }

    /// A vanished server cancels outstanding requests on a fixed-stream
    /// (`over`) transport instead of hanging the client, and later
    /// operations fail cleanly.
    #[test]
    fn dead_link_cancels_outstanding_requests() {
        let handle = spawn(
            BatchPolicy::new(1, Duration::from_secs(3600)), // never flushes
            |_idx: &[u64], inputs: &[Tensor]| Ok(inputs.to_vec()),
        );
        let server = ShardServer::new(Box::new(LocalTransport::new(
            handle.clone(),
            Box::new(Arc::new(RecordingControl::default())),
        )));
        let (client_end, server_end) = duplex();
        let server_thread = std::thread::spawn({
            let reader = server_end.clone();
            let writer = server_end.clone();
            move || {
                let _ = server.serve_stream(reader, writer);
            }
        });
        let t = TcpTransport::over(client_end.clone(), client_end.clone());
        let p = t.submit_indexed(0, tensor(1.0)).unwrap();
        assert_eq!(t.in_flight(), 1);
        // Sever the connection while the request sits in the coalescer.
        client_end.close();
        assert!(matches!(p.wait(), Err(ServeError::Canceled)));
        t.drain(); // returns immediately: nothing outstanding
        assert!(t.is_closed());
        assert!(!t.apply_drift(1.0));
        assert!(t.reprogram().is_err());
        handle.shutdown();
        server_thread.join().unwrap();
    }

    /// Regression for the replier short-circuit: after the client
    /// vanishes mid-stream, the replier must still wait every queued
    /// `Pending` (discarding the replies), so `serve_stream` returns only
    /// once all accepted requests' shard tickets settled.
    #[test]
    fn replier_waits_every_queued_reply_after_writer_death() {
        let handle = spawn(
            BatchPolicy::new(1, Duration::ZERO),
            |indices: &[u64], inputs: &[Tensor]| {
                if indices[0] > 0 {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Ok(inputs.to_vec())
            },
        );
        let server = ShardServer::new(Box::new(LocalTransport::new(
            handle.clone(),
            Box::new(Arc::new(RecordingControl::default())),
        )));
        let (client_end, server_end) = duplex();
        let server_thread = std::thread::spawn({
            let reader = server_end.clone();
            let writer = server_end;
            move || {
                let _ = server.serve_stream(reader, writer);
            }
        });
        let t = TcpTransport::over(client_end.clone(), client_end.clone());
        let p0 = t.submit_indexed(0, tensor(0.0)).unwrap();
        let _p1 = t.submit_indexed(1, tensor(1.0)).unwrap();
        let _p2 = t.submit_indexed(2, tensor(2.0)).unwrap();
        p0.wait().unwrap();
        // Kill the connection while requests 1 and 2 (slow) still queue
        // behind the replier.
        client_end.close();
        server_thread.join().unwrap();
        // With the old `break` the join returned while tickets 1 and 2
        // were still executing; now all three have settled.
        assert_eq!(handle.stats().completed, 3);
        handle.shutdown();
    }

    /// A stale control reply parked by a dying link must not leak into
    /// the next control call.
    #[test]
    fn link_death_flushes_the_control_mailbox() {
        let (reader, _writer) = duplex();
        let t = TcpTransport::over(reader.clone(), reader);
        *t.inner.mailbox.lock().unwrap() = Some(Frame::DrainDone);
        t.inner.close_link();
        assert!(t.inner.mailbox.lock().unwrap().is_none());

        let (reader2, _writer2) = duplex();
        let t2 = TcpTransport::over(reader2.clone(), reader2);
        *t2.inner.mailbox.lock().unwrap() = Some(Frame::ParallelismSet);
        t2.inner.note_link_down();
        assert!(t2.inner.mailbox.lock().unwrap().is_none());
    }

    /// A control reply of the wrong type is a typed protocol error, not a
    /// silently misdelivered answer.
    #[test]
    fn mismatched_control_reply_is_a_protocol_error() {
        let (client_end, server_end) = duplex();
        let confused_server = std::thread::spawn(move || {
            let mut reader = server_end.clone();
            let mut writer = server_end;
            // Answer Reprogram with DrainDone — a confused peer.
            assert_eq!(read_frame(&mut reader).unwrap(), Frame::Reprogram);
            write_frame(&mut writer, &Frame::DrainDone).unwrap();
        });
        let t = TcpTransport::over(client_end.clone(), client_end);
        match t.reprogram() {
            Err(ServeError::Remote(msg)) => {
                assert!(msg.contains("protocol violation"), "got: {msg}");
            }
            other => panic!("expected protocol violation, got {other:?}"),
        }
        confused_server.join().unwrap();
    }

    /// The tentpole reconnect path: a mid-stream sever triggers a
    /// re-dial, a resumed hello, and a go-back-N replay of the
    /// unacknowledged requests — every caller's `Pending` settles with
    /// logits from the correct coordinate and nobody sees the outage.
    #[test]
    fn link_death_replays_unacknowledged_requests() {
        let connector = Arc::new(PipeConnector::new(
            echo_server(Arc::default()),
            vec![
                // Connection 1 dies on its 5th frame (Hello + 3 requests
                // pass); connection 2 is clean.
                FaultPlan::new(5).sever_after(4),
                FaultPlan::new(6),
            ],
        ));
        let t = TcpTransport::with_connector(
            Box::new(ArcConnector(Arc::clone(&connector))),
            RetryPolicy::new(5, Duration::from_millis(1)),
        )
        .unwrap();
        let pendings: Vec<Pending> = (0..8)
            .map(|i| t.submit_indexed(i, tensor(i as f32 * 0.5)).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            assert_eq!(
                p.wait().unwrap().data(),
                &[i as f32 * 1000.0 + i as f32 * 0.5],
                "request {i} lost or re-run at the wrong coordinate"
            );
        }
        assert_eq!(connector.dials.load(Ordering::SeqCst), 2, "one reconnect");
        t.shutdown();
        assert!(t.is_closed());
    }

    /// Forwards [`Connect`] through an `Arc` so tests can keep a handle on
    /// the connector they hand to the transport.
    struct ArcConnector(Arc<PipeConnector>);

    impl Connect for ArcConnector {
        fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
            self.0.connect()
        }
    }

    /// When every reconnect attempt fails, the transport closes and parks
    /// its unacknowledged requests as orphans — fulfillable by a rescuer
    /// at their original coordinates — instead of cancelling them.
    #[test]
    fn reconnect_exhaustion_parks_orphans_for_rescue() {
        let handle = spawn(
            // The batch never fills and the latency budget never fires, so
            // no reply is ever written: both requests stay unacknowledged.
            BatchPolicy::new(3, Duration::from_secs(3600)),
            |_idx: &[u64], inputs: &[Tensor]| Ok(inputs.to_vec()),
        );
        let server = ShardServer::new(Box::new(LocalTransport::new(
            handle.clone(),
            Box::new(Arc::new(RecordingControl::default())),
        )));
        // One connection that dies after its 2nd frame, then a dead host.
        let connector = PipeConnector::new(server, vec![FaultPlan::new(1).sever_after(2)]);
        let t = TcpTransport::with_connector(
            Box::new(connector),
            RetryPolicy::new(2, Duration::from_millis(5)),
        )
        .unwrap();
        let p0 = t.submit_indexed(0, tensor(0.5)).unwrap();
        let p1 = t.submit_indexed(1, tensor(1.5)).unwrap(); // severs the link
        let deadline = Instant::now() + Duration::from_secs(10);
        while !t.is_closed() {
            assert!(Instant::now() < deadline, "retry budget never exhausted");
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut orphans = t.take_orphans();
        orphans.sort_by_key(|o| o.index());
        assert_eq!(
            orphans.iter().map(Orphan::index).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(t.take_orphans().len(), 0, "orphans are taken exactly once");
        // A rescuer fulfills the parked slots; the original Pendings see
        // the results as if nothing happened.
        for orphan in orphans {
            let v = tensor(orphan.index() as f32 * 7.0);
            orphan.slot.fulfill(Ok(v));
        }
        assert_eq!(p0.wait().unwrap().data(), &[0.0]);
        assert_eq!(p1.wait().unwrap().data(), &[7.0]);
        handle.shutdown();
    }

    /// The accept loop serves concurrent connections: a second client is
    /// answered while the first stays connected (serve_next would leave
    /// it waiting), and the loop exits once the shard shuts down.
    #[test]
    fn serve_forever_accepts_concurrent_clients() {
        let server = echo_server(Arc::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept_thread = {
            let server = server.clone();
            std::thread::spawn(move || server.serve_forever(&listener))
        };
        let a = TcpTransport::connect(addr).unwrap();
        let b = TcpTransport::connect(addr).unwrap();
        let pa = a.submit_indexed(0, tensor(1.0)).unwrap();
        let pb = b.submit_indexed(1, tensor(2.0)).unwrap();
        assert_eq!(pa.wait().unwrap().data(), &[1.0]);
        assert_eq!(pb.wait().unwrap().data(), &[1002.0]);
        b.shutdown();
        a.shutdown();
        accept_thread.join().unwrap().unwrap();
    }
}
