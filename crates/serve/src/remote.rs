//! The remote transport: the `aimc-wire` shard protocol over a byte
//! stream.
//!
//! [`ShardServer`] is the host side — it owns a shard (any
//! [`ShardTransport`], typically a [`LocalTransport`](crate::LocalTransport)
//! whose replica was programmed from the fleet's seed) and serves the
//! protocol on a connection. [`TcpTransport`] is the router side — it
//! implements [`ShardTransport`] by encoding every operation as wire
//! frames, so the router cannot tell a remote shard from a local one.
//!
//! Both ends are stream-agnostic: a real `TcpStream`, or an in-memory
//! [`aimc_wire::duplex`] pipe in tests — the protocol bytes are identical.
//!
//! ## Flow control and correlation
//!
//! Requests and replies correlate by **global stream index** (unique per
//! request by construction — the router's lease allocator never issues an
//! index twice between reprogram rewinds), so replies may arrive
//! interleaved with control replies on one connection. Control commands
//! are strictly one-outstanding-at-a-time (serialized client-side), so
//! control replies need no id at all. Backpressure is the shard's own
//! bounded queue: when it fills, the server stops reading frames, the
//! byte stream fills, and the client's `submit_indexed` blocks in `write`
//! — the same push-back a local submitter feels, propagated through the
//! pipe.

use crate::handle::{pending_pair, CompletionSlot, Pending, ServeError, ServeStats};
use crate::qos::{Admission, Priority, QosClass, ShardLoad};
use crate::transport::ShardTransport;
use aimc_dnn::Tensor;
use aimc_parallel::Parallelism;
use aimc_wire::{
    read_frame, write_frame, Frame, IndexLease, ReplyError, ShardReply, ShardRequest,
    WireClassStats, WireStats,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- server

/// Channel from the server's decode loop to its replier thread: one
/// `(global_index, completion)` entry per accepted request.
type ReplySender = Sender<(u64, Pending)>;
type ReplyReceiver = Receiver<(u64, Pending)>;

/// Serves one shard over the wire protocol (see the module docs).
///
/// The server is connection-oriented: [`ShardServer::serve_stream`] runs
/// the protocol loop for one client until it disconnects or sends
/// `Shutdown`. The shard itself outlives connections, so a dropped client
/// can reconnect to a still-programmed replica.
pub struct ShardServer {
    shard: Arc<dyn ShardTransport>,
}

impl std::fmt::Debug for ShardServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardServer").finish_non_exhaustive()
    }
}

impl ShardServer {
    /// Wraps a shard for serving. The shard's replica should already be
    /// programmed from the fleet's seed (the facade's
    /// `Platform::shard_server` does both).
    pub fn new(shard: Box<dyn ShardTransport>) -> Self {
        ShardServer {
            shard: Arc::from(shard),
        }
    }

    /// Accepts one connection on `listener` and serves it to completion
    /// (client disconnect or `Shutdown`).
    ///
    /// # Errors
    /// Accept or protocol-level I/O errors.
    pub fn serve_next(&self, listener: &TcpListener) -> io::Result<()> {
        let (stream, _peer) = listener.accept()?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        self.serve_stream(stream, writer)
    }

    /// Runs the protocol loop on an established connection: decodes frames
    /// from `reader`, drives the shard, and writes replies to `writer`.
    /// Returns on clean disconnect (EOF between frames) or after answering
    /// `Shutdown`; all replies for accepted requests are written before
    /// either return.
    ///
    /// # Errors
    /// Protocol violations (`InvalidData`) or underlying I/O failures.
    pub fn serve_stream(
        &self,
        mut reader: impl Read,
        writer: impl Write + Send + 'static,
    ) -> io::Result<()> {
        let writer = Arc::new(Mutex::new(writer));
        // Completed requests flow back on their own thread: the shard
        // fulfills tickets in FIFO dispatch order, so one replier waiting
        // each Pending in turn streams replies without head-of-line cost.
        let (tx, rx): (ReplySender, ReplyReceiver) = mpsc::channel();
        let replier = {
            let writer = Arc::clone(&writer);
            let shard = Arc::clone(&self.shard);
            std::thread::Builder::new()
                .name("aimc-shard-replier".into())
                .spawn(move || {
                    for (global_index, pending) in rx {
                        let outcome = match pending.wait() {
                            Ok(t) => Ok(t),
                            Err(e) => Err(reply_error(e)),
                        };
                        // ECN-style marking: each reply carries the
                        // shard's pressure bit at write time (level-
                        // triggered, like a switch marking packets while
                        // its queue is past the threshold).
                        let frame = Frame::Reply(ShardReply {
                            global_index,
                            marked: shard.load().pressure,
                            outcome,
                        });
                        if write_frame(&mut *writer.lock().unwrap(), &frame).is_err() {
                            // Writer gone: the client vanished; draining
                            // the channel keeps shard tickets settling.
                            break;
                        }
                    }
                })
                .expect("spawn shard replier")
        };

        let result = self.frame_loop(&mut reader, &writer, &tx);
        // Settle the replier before returning so every accepted request's
        // reply is on the wire (or the link is known dead).
        drop(tx);
        let _ = replier.join();
        // `Shutdown` acks only after all replies above were written.
        if let Ok(true) = result {
            let _ = write_frame(&mut *writer.lock().unwrap(), &Frame::ShutdownDone);
        }
        result.map(|_| ())
    }

    /// The decode/dispatch loop. Returns `Ok(true)` when the client asked
    /// for shutdown, `Ok(false)` on clean disconnect.
    fn frame_loop(
        &self,
        reader: &mut impl Read,
        writer: &Arc<Mutex<impl Write + Send + 'static>>,
        tx: &Sender<(u64, Pending)>,
    ) -> io::Result<bool> {
        let reply = |frame: &Frame| write_frame(&mut *writer.lock().unwrap(), frame);
        loop {
            let frame = match read_frame(reader) {
                Ok(f) => f,
                // EOF between frames: the client hung up without Shutdown.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
                Err(e) => return Err(e),
            };
            match frame {
                Frame::Request(ShardRequest {
                    global_index,
                    class,
                    image,
                }) => match self.shard.submit_admitted(global_index, image, class) {
                    Ok(pending) => {
                        let _ = tx.send((global_index, pending));
                    }
                    Err(e) => reply(&Frame::Reply(ShardReply {
                        global_index,
                        marked: false,
                        outcome: Err(reply_error(e)),
                    }))?,
                },
                Frame::Lease(lease) => self.shard.grant_lease(lease),
                Frame::Drain => {
                    self.shard.drain();
                    reply(&Frame::DrainDone)?;
                }
                Frame::Shutdown => {
                    self.shard.shutdown();
                    // ShutdownDone is written by serve_stream after the
                    // replier settles, so it orders after every reply.
                    return Ok(true);
                }
                Frame::ApplyDrift(t_hours) => {
                    let modeled = self.shard.apply_drift(t_hours);
                    reply(&Frame::DriftDone(modeled))?;
                }
                Frame::Reprogram => {
                    let outcome = self.shard.reprogram().map_err(|e| e.to_string());
                    reply(&Frame::ReprogramDone(outcome))?;
                }
                Frame::SetParallelism(par) => {
                    self.shard.set_parallelism(par);
                    reply(&Frame::ParallelismSet)?;
                }
                Frame::StatsProbe => {
                    let stats = to_wire_stats(&self.shard.stats());
                    reply(&Frame::Stats(stats))?;
                }
                // Server-to-client frames arriving at the server are a
                // protocol violation.
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected client frame: {other:?}"),
                    ))
                }
            }
        }
    }
}

fn reply_error(e: ServeError) -> ReplyError {
    match e {
        ServeError::ShutDown | ServeError::NoShards => ReplyError::ShutDown,
        ServeError::Canceled => ReplyError::Canceled,
        ServeError::Exec(err) => ReplyError::Exec(err.to_string()),
        ServeError::Remote(msg) => ReplyError::Exec(msg),
    }
}

fn serve_error(e: ReplyError) -> ServeError {
    match e {
        ReplyError::ShutDown => ServeError::ShutDown,
        ReplyError::Canceled => ServeError::Canceled,
        ReplyError::Exec(msg) => ServeError::Remote(msg),
    }
}

fn ns(d: &Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn to_wire_stats(s: &ServeStats) -> WireStats {
    let mut classes: [WireClassStats; Priority::COUNT] = Default::default();
    for (wire, local) in classes.iter_mut().zip(&s.qos.classes) {
        *wire = WireClassStats {
            admitted: local.admitted,
            shed_queue_full: local.shed_queue_full,
            shed_class_budget: local.shed_class_budget,
            shed_overload: local.shed_overload,
            infeasible: local.infeasible,
            deadline_misses: local.deadline_misses,
            latencies_ns: local.latencies.iter().map(ns).collect(),
        };
    }
    WireStats {
        submitted: s.submitted,
        completed: s.completed,
        rejected: s.rejected,
        batches: s.batches,
        dispatched: s.dispatched,
        max_batch_observed: s.max_batch_observed as u64,
        ecn_marks: s.qos.ecn_marks,
        classes,
        queue_waits_ns: s.queue_waits.iter().map(ns).collect(),
    }
}

fn from_wire_stats(s: WireStats) -> ServeStats {
    let mut stats = ServeStats {
        submitted: s.submitted,
        completed: s.completed,
        rejected: s.rejected,
        batches: s.batches,
        dispatched: s.dispatched,
        max_batch_observed: s.max_batch_observed as usize,
        queue_waits: s
            .queue_waits_ns
            .into_iter()
            .map(Duration::from_nanos)
            .collect(),
        ..ServeStats::default()
    };
    stats.qos.ecn_marks = s.ecn_marks;
    for (local, wire) in stats.qos.classes.iter_mut().zip(s.classes) {
        local.admitted = wire.admitted;
        local.shed_queue_full = wire.shed_queue_full;
        local.shed_class_budget = wire.shed_class_budget;
        local.shed_overload = wire.shed_overload;
        local.infeasible = wire.infeasible;
        local.deadline_misses = wire.deadline_misses;
        local.latencies = wire
            .latencies_ns
            .into_iter()
            .map(Duration::from_nanos)
            .collect();
    }
    stats
}

// ---------------------------------------------------------------- client

struct RemoteState {
    /// Requests submitted and not yet answered, by global index, with the
    /// priority band each occupies (for per-class load reporting).
    pending: HashMap<u64, (Arc<CompletionSlot>, Priority)>,
    /// Client-side refusals (the link was already closed) — the server
    /// never saw these, so they are merged into [`TcpTransport::stats`].
    rejected: u64,
    /// Last statistics snapshot fetched from the server; served after the
    /// link closes.
    last_stats: ServeStats,
    /// In-flight occupancy per priority class (client-side count).
    class_in_flight: [u64; Priority::COUNT],
    /// Latched congestion state: the `marked` bit of the most recent
    /// reply. Level-triggered like the server's marking — the router's
    /// pacer does its own edge detection.
    pressure: bool,
    /// Per-image service-time estimate from inter-reply gaps during busy
    /// periods (0 until two consecutive replies arrive with more work
    /// still outstanding).
    est_image_ns: u64,
    /// Arrival instant of the previous reply within the current busy
    /// period; `None` once the pipeline empties (so idle gaps never
    /// pollute the estimate).
    last_reply_at: Option<Instant>,
    /// Client-side deadline-infeasibility rejections per class — decided
    /// here before any frame is written, so the server never sees them;
    /// folded into [`ShardTransport::stats`] alongside the server ledger.
    infeasible: [u64; Priority::COUNT],
}

struct RemoteInner {
    writer: Mutex<Box<dyn Write + Send>>,
    state: Mutex<RemoteState>,
    /// Signals `pending` transitions (drain waits on it).
    state_cv: Condvar,
    /// One-deep mailbox for control replies; the control lock serializes
    /// users, so depth one suffices.
    mailbox: Mutex<Option<Frame>>,
    mailbox_cv: Condvar,
    /// Serializes control commands (one outstanding per connection).
    control: Mutex<()>,
    /// Set on shutdown or link death; checked lock-free on every path.
    closed: AtomicBool,
}

impl RemoteInner {
    /// Marks the link dead and cancels everything outstanding.
    fn close_link(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut st = self.state.lock().unwrap();
        for (_, (slot, _)) in st.pending.drain() {
            slot.fulfill(Err(ServeError::Canceled));
        }
        st.class_in_flight = [0; Priority::COUNT];
        drop(st);
        self.state_cv.notify_all();
        self.mailbox_cv.notify_all();
    }
}

/// The router's side of a remote shard: implements [`ShardTransport`] by
/// speaking the wire protocol to a [`ShardServer`] (see the module docs).
///
/// Despite the name, the transport runs over **any** byte stream:
/// [`TcpTransport::connect`] for sockets, [`TcpTransport::over`] for
/// anything `Read + Write` — e.g. an [`aimc_wire::duplex`] pipe in tests.
/// Clone-able; clones share the connection.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<RemoteInner>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("closed", &self.inner.closed.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Connects to a [`ShardServer`] listening at `addr`.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(Self::over(reader, stream))
    }

    /// Wraps an established duplex byte stream (reader half + writer
    /// half). A background thread consumes `reader` for the connection's
    /// lifetime.
    pub fn over(reader: impl Read + Send + 'static, writer: impl Write + Send + 'static) -> Self {
        let inner = Arc::new(RemoteInner {
            writer: Mutex::new(Box::new(writer)),
            state: Mutex::new(RemoteState {
                pending: HashMap::new(),
                rejected: 0,
                last_stats: ServeStats::default(),
                class_in_flight: [0; Priority::COUNT],
                pressure: false,
                est_image_ns: 0,
                last_reply_at: None,
                infeasible: [0; Priority::COUNT],
            }),
            state_cv: Condvar::new(),
            mailbox: Mutex::new(None),
            mailbox_cv: Condvar::new(),
            control: Mutex::new(()),
            closed: AtomicBool::new(false),
        });
        let thread_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("aimc-remote-reader".into())
            .spawn(move || reader_loop(reader, &thread_inner))
            .expect("spawn remote reader");
        TcpTransport { inner }
    }

    fn is_link_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Sends one control frame and blocks for its reply (control traffic
    /// is strictly one-outstanding, enforced by the control lock).
    fn control(&self, frame: &Frame) -> Result<Frame, ServeError> {
        let _serial = self.inner.control.lock().unwrap();
        if self.is_link_closed() {
            return Err(ServeError::ShutDown);
        }
        {
            let mut w = self.inner.writer.lock().unwrap();
            if write_frame(&mut *w, frame).is_err() {
                drop(w);
                self.inner.close_link();
                return Err(ServeError::ShutDown);
            }
        }
        let mut mail = self.inner.mailbox.lock().unwrap();
        loop {
            if let Some(reply) = mail.take() {
                return Ok(reply);
            }
            if self.is_link_closed() {
                return Err(ServeError::ShutDown);
            }
            mail = self.inner.mailbox_cv.wait(mail).unwrap();
        }
    }

    /// Waits until no submitted request is outstanding on this transport.
    fn wait_pending_empty(&self) {
        let mut st = self.inner.state.lock().unwrap();
        while !st.pending.is_empty() {
            st = self.inner.state_cv.wait(st).unwrap();
        }
    }
}

fn reader_loop(mut reader: impl Read, inner: &RemoteInner) {
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Reply(ShardReply {
                global_index,
                marked,
                outcome,
            })) => {
                let now = Instant::now();
                let mut st = inner.state.lock().unwrap();
                if let Some((slot, priority)) = st.pending.remove(&global_index) {
                    let rank = priority.rank();
                    st.class_in_flight[rank] = st.class_in_flight[rank].saturating_sub(1);
                    // Level-triggered latch of the shard's pressure bit.
                    st.pressure = marked;
                    // Service-time estimate from inter-reply gaps, but only
                    // while more work is outstanding (a gap that includes
                    // pipeline idle time is not a service time).
                    if let Some(prev) = st.last_reply_at {
                        if !st.pending.is_empty() {
                            let gap = ns(&now.saturating_duration_since(prev));
                            st.est_image_ns = if st.est_image_ns == 0 {
                                gap
                            } else {
                                (3 * (st.est_image_ns as u128) + gap as u128).div_euclid(4) as u64
                            };
                        }
                    }
                    st.last_reply_at = (!st.pending.is_empty()).then_some(now);
                    slot.fulfill(outcome.map_err(serve_error));
                }
                drop(st);
                inner.state_cv.notify_all();
            }
            Ok(
                reply @ (Frame::DrainDone
                | Frame::ShutdownDone
                | Frame::DriftDone(_)
                | Frame::ReprogramDone(_)
                | Frame::ParallelismSet
                | Frame::Stats(_)),
            ) => {
                *inner.mailbox.lock().unwrap() = Some(reply);
                inner.mailbox_cv.notify_all();
            }
            // Client-to-server frames echoed back, or decode/link errors:
            // the connection is unusable either way.
            Ok(_) | Err(_) => break,
        }
    }
    inner.close_link();
}

impl ShardTransport for TcpTransport {
    fn submit_indexed(&self, index: u64, image: Tensor) -> Result<Pending, ServeError> {
        self.submit_admitted(index, image, QosClass::default())
    }

    fn submit_admitted(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Pending, ServeError> {
        let (pending, slot) = pending_pair();
        let rank = class.priority.rank();
        {
            let mut st = self.inner.state.lock().unwrap();
            if self.is_link_closed() {
                st.rejected += 1;
                return Err(ServeError::ShutDown);
            }
            // Registered before the frame is written, so a reply can never
            // race past its slot.
            st.pending.insert(index, (slot, class.priority));
            st.class_in_flight[rank] += 1;
        }
        let frame = Frame::Request(ShardRequest {
            global_index: index,
            class,
            image,
        });
        let write_ok = write_frame(&mut *self.inner.writer.lock().unwrap(), &frame).is_ok();
        if !write_ok {
            // Link died mid-submit: roll the registration back and refuse.
            let mut st = self.inner.state.lock().unwrap();
            st.pending.remove(&index);
            st.class_in_flight[rank] = st.class_in_flight[rank].saturating_sub(1);
            st.rejected += 1;
            drop(st);
            self.inner.close_link();
            return Err(ServeError::ShutDown);
        }
        Ok(pending)
    }

    fn submit_qos(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        // Client-side deadline feasibility from the local occupancy count
        // and the inter-reply service estimate — no round trip, and the
        // refusal happens before any frame is written, so the router can
        // roll the index back synchronously. Queue/budget shedding for
        // remote shards is the router's job (it owns the fleet budgets
        // and the AIMD pacer); the server never sheds admitted work.
        if let Some(deadline) = class.deadline {
            let mut st = self.inner.state.lock().unwrap();
            if st.est_image_ns > 0 {
                let estimated_wait =
                    Duration::from_nanos((st.pending.len() as u64).saturating_mul(st.est_image_ns));
                if estimated_wait > deadline {
                    st.infeasible[class.priority.rank()] += 1;
                    return Ok(Admission::DeadlineInfeasible { estimated_wait });
                }
            }
        }
        self.submit_admitted(index, image, class)
            .map(Admission::Admitted)
    }

    fn load(&self) -> ShardLoad {
        let st = self.inner.state.lock().unwrap();
        ShardLoad {
            in_flight: st.pending.len() as u64,
            per_class: st.class_in_flight,
            pressure: st.pressure,
            est_image_ns: st.est_image_ns,
        }
    }

    fn grant_lease(&self, lease: IndexLease) {
        if self.is_link_closed() {
            return;
        }
        // Advisory fire-and-forget; a failed write surfaces on the next
        // submission.
        let _ = write_frame(
            &mut *self.inner.writer.lock().unwrap(),
            &Frame::Lease(lease),
        );
    }

    fn in_flight(&self) -> u64 {
        self.inner.state.lock().unwrap().pending.len() as u64
    }

    fn drain(&self) {
        if !self.is_link_closed() {
            let _ = self.control(&Frame::Drain); // DrainDone or closed link
        }
        // Either way every outstanding request settles: replies were
        // flushed before DrainDone, and a dead link cancels its pendings.
        self.wait_pending_empty();
    }

    fn shutdown(&self) {
        if !self.is_link_closed() {
            self.drain();
            // Cache the final server statistics while the link still
            // works; stats() serves this snapshot after close.
            if let Ok(Frame::Stats(ws)) = self.control(&Frame::StatsProbe) {
                self.inner.state.lock().unwrap().last_stats = from_wire_stats(ws);
            }
            // ShutdownDone orders after every reply, so nothing is lost.
            let _ = self.control(&Frame::Shutdown);
            self.inner.close_link();
        }
        self.wait_pending_empty();
    }

    fn is_closed(&self) -> bool {
        self.is_link_closed()
    }

    fn stats(&self) -> ServeStats {
        if !self.is_link_closed() {
            if let Ok(Frame::Stats(ws)) = self.control(&Frame::StatsProbe) {
                self.inner.state.lock().unwrap().last_stats = from_wire_stats(ws);
            }
        }
        let st = self.inner.state.lock().unwrap();
        let mut stats = st.last_stats.clone();
        // Client-side refusals and infeasibility rejections the server
        // never saw.
        stats.rejected += st.rejected;
        for (class, &n) in stats.qos.classes.iter_mut().zip(&st.infeasible) {
            class.infeasible += n;
        }
        stats
    }

    fn apply_drift(&self, t_hours: f64) -> bool {
        matches!(
            self.control(&Frame::ApplyDrift(t_hours)),
            Ok(Frame::DriftDone(true))
        )
    }

    fn reprogram(&self) -> Result<(), ServeError> {
        match self.control(&Frame::Reprogram)? {
            Frame::ReprogramDone(Ok(())) => Ok(()),
            Frame::ReprogramDone(Err(msg)) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Remote(format!(
                "protocol violation: expected ReprogramDone, got {other:?}"
            ))),
        }
    }

    fn set_parallelism(&self, par: Parallelism) {
        let _ = self.control(&Frame::SetParallelism(par));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LocalTransport, ShardControl};
    use crate::{spawn, BatchPolicy};
    use aimc_dnn::{ExecError, Shape};
    use aimc_wire::duplex;

    fn tensor(v: f32) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1), vec![v])
    }

    #[derive(Default)]
    struct RecordingControl {
        drifts: Mutex<Vec<f64>>,
        reprograms: Mutex<u32>,
        pars: Mutex<Vec<Parallelism>>,
        fail_reprogram: bool,
    }

    impl ShardControl for Arc<RecordingControl> {
        fn apply_drift(&self, t_hours: f64) -> bool {
            self.drifts.lock().unwrap().push(t_hours);
            true
        }
        fn reprogram(&self) -> Result<(), ExecError> {
            if self.fail_reprogram {
                return Err(ExecError::MissingWeights {
                    node: Default::default(),
                    name: "fc".into(),
                });
            }
            *self.reprograms.lock().unwrap() += 1;
            Ok(())
        }
        fn set_parallelism(&self, par: Parallelism) {
            self.pars.lock().unwrap().push(par);
        }
    }

    /// An echo shard over a duplex pipe: results encode (index, value) so
    /// tests can verify the coordinate each request ran at.
    fn piped_shard(control: Arc<RecordingControl>) -> (TcpTransport, std::thread::JoinHandle<()>) {
        let handle = spawn(
            BatchPolicy::new(2, Duration::from_millis(1)),
            |indices: &[u64], inputs: &[Tensor]| {
                Ok(indices
                    .iter()
                    .zip(inputs)
                    .map(|(&i, t)| tensor(i as f32 * 1000.0 + t.data()[0]))
                    .collect())
            },
        );
        let server = ShardServer::new(Box::new(LocalTransport::new(handle, Box::new(control))));
        let (client_end, server_end) = duplex();
        let server_thread = std::thread::spawn({
            let reader = server_end.clone();
            let writer = server_end;
            move || {
                server.serve_stream(reader, writer).unwrap();
            }
        });
        let reader = client_end.clone();
        (TcpTransport::over(reader, client_end), server_thread)
    }

    #[test]
    fn requests_round_trip_with_their_coordinates() {
        let (t, server) = piped_shard(Arc::default());
        let pendings: Vec<Pending> = (0..6)
            .map(|i| t.submit_indexed(10 + i, tensor(i as f32)).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            assert_eq!(
                p.wait().unwrap().data(),
                &[(10 + i) as f32 * 1000.0 + i as f32],
                "request {i} evaluated at the wrong coordinate"
            );
        }
        t.drain();
        assert_eq!(t.in_flight(), 0);
        let stats = t.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.completed, 6);
        t.shutdown();
        assert!(t.is_closed());
        server.join().unwrap();
        // Post-shutdown submissions are refused client-side and merged
        // into the cached statistics.
        assert!(matches!(
            t.submit_indexed(99, tensor(0.0)),
            Err(ServeError::ShutDown)
        ));
        let stats = t.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn control_surface_reaches_the_remote_shard() {
        let control = Arc::new(RecordingControl::default());
        let (t, server) = piped_shard(Arc::clone(&control));
        assert!(t.apply_drift(24.0));
        assert_eq!(*control.drifts.lock().unwrap(), vec![24.0]);
        t.reprogram().unwrap();
        assert_eq!(*control.reprograms.lock().unwrap(), 1);
        t.set_parallelism(Parallelism::Threads(3));
        assert_eq!(*control.pars.lock().unwrap(), vec![Parallelism::Threads(3)]);
        t.grant_lease(IndexLease::new(0, 8));
        let p = t.submit_indexed(0, tensor(5.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[5.0]);
        t.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn remote_reprogram_failure_carries_the_rendered_error() {
        let control = Arc::new(RecordingControl {
            fail_reprogram: true,
            ..Default::default()
        });
        let (t, server) = piped_shard(control);
        match t.reprogram() {
            Err(ServeError::Remote(msg)) => assert!(msg.contains("missing weights")),
            other => panic!("expected remote error, got {other:?}"),
        }
        t.shutdown();
        server.join().unwrap();
    }

    /// A vanished server cancels outstanding requests instead of hanging
    /// the client, and later operations fail cleanly.
    #[test]
    fn dead_link_cancels_outstanding_requests() {
        let handle = spawn(
            BatchPolicy::new(1, Duration::from_secs(3600)), // never flushes
            |_idx: &[u64], inputs: &[Tensor]| Ok(inputs.to_vec()),
        );
        let server = ShardServer::new(Box::new(LocalTransport::new(
            handle.clone(),
            Box::new(Arc::new(RecordingControl::default())),
        )));
        let (client_end, server_end) = duplex();
        let server_thread = std::thread::spawn({
            let reader = server_end.clone();
            let writer = server_end.clone();
            move || {
                let _ = server.serve_stream(reader, writer);
            }
        });
        let t = TcpTransport::over(client_end.clone(), client_end.clone());
        let p = t.submit_indexed(0, tensor(1.0)).unwrap();
        assert_eq!(t.in_flight(), 1);
        // Sever the connection while the request sits in the coalescer.
        client_end.close();
        assert!(matches!(p.wait(), Err(ServeError::Canceled)));
        t.drain(); // returns immediately: nothing outstanding
        assert!(t.is_closed());
        assert!(!t.apply_drift(1.0));
        assert!(t.reprogram().is_err());
        handle.shutdown();
        server_thread.join().unwrap();
    }
}
