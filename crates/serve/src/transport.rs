//! The transport boundary between the fleet router and its shards.
//!
//! The router never touches a concrete scheduler or executor: it speaks
//! only to [`ShardTransport`] — submit an indexed request, probe load,
//! drain/shutdown, and fan the [`ShardControl`] operations (drift,
//! reprogram, thread budget). Where a shard *lives* is a transport
//! implementation detail:
//!
//! * [`LocalTransport`] wraps an in-process [`ServeHandle`] — the
//!   zero-copy fast path (tensors move, nothing is serialized);
//! * [`TcpTransport`](crate::TcpTransport) speaks the `aimc-wire` protocol
//!   to a [`ShardServer`](crate::ShardServer) on another host (or an
//!   in-memory pipe in tests).
//!
//! Because every request carries its global stream coordinate and every
//! replica is programmed from the same seed, *placement is invisible in
//! the results*: any mix of transports produces logits bit-identical to a
//! solo session.

use crate::handle::{CompletionSlot, Pending, ServeError, ServeHandle, ServeStats};
use crate::qos::{Admission, QosClass, ShardLoad};
use aimc_dnn::{ExecError, Tensor};
use aimc_parallel::Parallelism;
use aimc_wire::{IndexLease, ShardSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One request stranded on a dead shard, recovered for re-routing.
///
/// When a replay-capable transport exhausts its reconnect budget it parks
/// every unacknowledged request as an `Orphan` instead of cancelling it:
/// the original caller still holds the [`Pending`], and whoever harvests
/// the orphan (the fleet router, via [`ShardTransport::take_orphans`])
/// re-submits the image **at the same global index** on a survivor and
/// forwards the result into the waiting slot — so eviction never shifts a
/// coordinate and the caller never observes the churn.
pub struct Orphan {
    pub(crate) index: u64,
    pub(crate) image: Tensor,
    pub(crate) class: QosClass,
    pub(crate) slot: Arc<CompletionSlot>,
}

impl std::fmt::Debug for Orphan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orphan")
            .field("index", &self.index)
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

impl Orphan {
    /// The global stream coordinate the request must re-run at.
    pub fn index(&self) -> u64 {
        self.index
    }
}

/// Backend-side control surface of one shard, supplied by the layer that
/// owns the executor types (the `aimc-platform` facade): the serving layer
/// can quiesce shards itself, but mutating replica state — conductance
/// drift, reprogramming, the thread budget — needs the backend.
///
/// Implementations must apply each operation to **their own shard only**;
/// [`FleetHandle`](crate::FleetHandle) fans the calls across all shards
/// after draining, so every replica transitions at the same global stream
/// position.
pub trait ShardControl: Send + Sync {
    /// Applies conductance drift to this shard's replica (write-locked
    /// against in-flight batches). Returns whether the backend models
    /// drift (`false` for digital replicas).
    fn apply_drift(&self, t_hours: f64) -> bool;

    /// Rewrites this shard's replica from scratch with the original seed —
    /// fresh conductances, image counter rewound to zero.
    ///
    /// # Errors
    /// Any [`ExecError`] from re-programming.
    fn reprogram(&self) -> Result<(), ExecError>;

    /// Updates the thread budget this shard's batches snapshot at
    /// dispatch. Never changes results.
    fn set_parallelism(&self, par: Parallelism);
}

/// One shard of a serving fleet, wherever it lives: the only interface the
/// router speaks (see the module docs).
///
/// The contract every implementation must honor, because the fleet
/// invariance rests on it: a request submitted with global index `k` is
/// evaluated **at coordinate `k`** on a replica programmed from the
/// fleet's seed, and every accepted request reaches a terminal outcome
/// (logits, error, or cancellation) — so [`ShardTransport::drain`] never
/// hangs.
pub trait ShardTransport: Send + Sync {
    /// Submits one image stamped with its global stream index, returning
    /// the completion handle.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] once the shard no longer accepts requests.
    fn submit_indexed(&self, index: u64, image: Tensor) -> Result<Pending, ServeError>;

    /// QoS-gated submission at a stamped index: the shard applies its
    /// admission checks (queue bound, class budget, deadline feasibility)
    /// and returns a typed [`Admission`] — so the router can roll the
    /// index back when the shard sheds, keeping the global numbering
    /// hole-free. The class annotations also drive EDF batch composition
    /// and deadline-miss accounting on the shard.
    ///
    /// The default forwards to [`ShardTransport::submit_indexed`]
    /// (always-admit), so pre-QoS transports keep working unchanged.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] once the shard no longer accepts requests.
    fn submit_qos(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        let _ = class;
        self.submit_indexed(index, image).map(Admission::Admitted)
    }

    /// Class-annotated submission of a request that was **already
    /// admitted** at the fleet ingress: the shard must accept it (no
    /// shedding — a post-admission drop would hole the global stream
    /// numbering), but the class still drives EDF batch composition and
    /// deadline-miss accounting. Protocol servers use this for requests
    /// arriving over the wire. The default drops the annotations.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] once the shard no longer accepts requests.
    fn submit_admitted(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Pending, ServeError> {
        let _ = class;
        self.submit_indexed(index, image)
    }

    /// The shard's congestion signal: occupancy, per-class counts, the
    /// ECN-style pressure bit, and a service-time estimate. Must be cheap
    /// (no network round trip: remote transports estimate locally). The
    /// default reports occupancy only.
    fn load(&self) -> ShardLoad {
        ShardLoad {
            in_flight: self.in_flight(),
            ..ShardLoad::default()
        }
    }

    /// Advises the shard that subsequent requests draw their indices from
    /// `lease`. Advisory: transports may batch, forward, or ignore it
    /// (remote transports forward it so a host can account for its block
    /// without a round-trip per request). The default does nothing.
    fn grant_lease(&self, lease: IndexLease) {
        let _ = lease;
    }

    /// Requests accepted but not yet completed — the router's load signal
    /// for least-queue-depth routing. Must be cheap (no network round
    /// trip: remote transports count locally).
    fn in_flight(&self) -> u64;

    /// Blocks until every accepted request has reached a terminal outcome.
    fn drain(&self);

    /// Stops accepting requests, drains everything accepted, and releases
    /// the shard's resources. Idempotent.
    fn shutdown(&self);

    /// Whether [`ShardTransport::shutdown`] has run (or the link died).
    fn is_closed(&self) -> bool;

    /// Harvests requests stranded by a permanent link death so the caller
    /// can re-route them (see [`Orphan`]). Each orphan is returned exactly
    /// once; transports that never strand work return nothing — the
    /// default.
    fn take_orphans(&self) -> Vec<Orphan> {
        Vec::new()
    }

    /// Point-in-time serving statistics of this shard.
    fn stats(&self) -> ServeStats;

    /// The shard's identity: which model it serves and the device/seed
    /// recipe its bits come from. The router's registry groups transports
    /// by this — equal specs are replicas; distinct model ids own distinct
    /// streams. The default reports [`ShardSpec::default`] (golden,
    /// model id `"default"`), so spec-less transports form one
    /// homogeneous group exactly as before the registry existed.
    fn spec(&self) -> ShardSpec {
        ShardSpec::default()
    }

    /// Applies conductance drift to the shard's replica, after the caller
    /// drained. Returns whether the backend models drift.
    fn apply_drift(&self, t_hours: f64) -> bool;

    /// Rewrites the shard's replica from its original seed and rewinds its
    /// stream, after the caller drained.
    ///
    /// # Errors
    /// [`ServeError::Exec`] for local programming failures,
    /// [`ServeError::Remote`] for failures reported over a wire.
    fn reprogram(&self) -> Result<(), ServeError>;

    /// Updates the thread budget the shard's batches snapshot at dispatch.
    fn set_parallelism(&self, par: Parallelism);
}

/// The in-process transport: a micro-batch scheduler ([`ServeHandle`])
/// plus its backend control, behind the [`ShardTransport`] boundary.
///
/// This is the zero-copy fast path — `submit_indexed` moves the tensor
/// straight into the shard's bounded queue; nothing touches the wire
/// codec.
pub struct LocalTransport {
    handle: ServeHandle,
    control: Box<dyn ShardControl>,
    spec: ShardSpec,
    drift_age: AtomicU64,
    reprograms: AtomicU64,
}

impl std::fmt::Debug for LocalTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalTransport")
            .field("handle", &self.handle)
            .finish_non_exhaustive()
    }
}

impl LocalTransport {
    /// Wraps a running scheduler and its backend control as one shard with
    /// the default (spec-less) identity.
    pub fn new(handle: ServeHandle, control: Box<dyn ShardControl>) -> Self {
        LocalTransport::with_spec(handle, control, ShardSpec::default())
    }

    /// Wraps a running scheduler and its backend control as one shard
    /// carrying an explicit [`ShardSpec`] — the form the facade uses so a
    /// registry can group replicas by model id and device recipe.
    pub fn with_spec(handle: ServeHandle, control: Box<dyn ShardControl>, spec: ShardSpec) -> Self {
        LocalTransport {
            handle,
            control,
            spec,
            drift_age: AtomicU64::new(0),
            reprograms: AtomicU64::new(0),
        }
    }

    /// The wrapped scheduler handle (e.g. to share it with non-fleet
    /// submitters).
    pub fn handle(&self) -> &ServeHandle {
        &self.handle
    }
}

impl ShardTransport for LocalTransport {
    fn submit_indexed(&self, index: u64, image: Tensor) -> Result<Pending, ServeError> {
        self.handle.submit_at(index, image)
    }

    fn submit_qos(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        self.handle.submit_at_qos(index, image, class)
    }

    fn submit_admitted(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Pending, ServeError> {
        self.handle.submit_at_admitted(index, image, class)
    }

    fn load(&self) -> ShardLoad {
        self.handle.load()
    }

    fn in_flight(&self) -> u64 {
        self.handle.in_flight()
    }

    fn drain(&self) {
        self.handle.drain();
    }

    fn shutdown(&self) {
        self.handle.shutdown();
    }

    fn is_closed(&self) -> bool {
        self.handle.is_closed()
    }

    fn stats(&self) -> ServeStats {
        let mut stats = self.handle.stats();
        stats.drift_age = self.drift_age.load(Ordering::Acquire);
        stats.reprograms = self.reprograms.load(Ordering::Acquire);
        stats
    }

    fn spec(&self) -> ShardSpec {
        self.spec.clone()
    }

    fn apply_drift(&self, t_hours: f64) -> bool {
        self.drift_age.fetch_add(1, Ordering::AcqRel);
        self.control.apply_drift(t_hours)
    }

    fn reprogram(&self) -> Result<(), ServeError> {
        self.control.reprogram().map_err(ServeError::Exec)?;
        self.drift_age.store(0, Ordering::Release);
        self.reprograms.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    fn set_parallelism(&self, par: Parallelism) {
        self.control.set_parallelism(par);
    }
}
