//! Request/completion plumbing: the clone-able [`ServeHandle`] submitter,
//! per-request [`Pending`] completion handles, and [`ServeStats`].
//!
//! Every accepted request is guaranteed a terminal outcome: the worker
//! fulfills it with logits or an execution error, and if a request is ever
//! dropped unfulfilled (worker panic, teardown race) its [`Ticket`]'s
//! `Drop` posts [`ServeError::Canceled`] — so [`Pending::wait`] and
//! [`ServeHandle::drain`] can never hang on a lost request.

use crate::qos::{Admission, Priority, QosClass, QosStats, ShardLoad, ShedReason};
use crate::BatchPolicy;
use aimc_dnn::{ExecError, Tensor};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A serving-layer failure attached to one request (or, for the fleet
/// variants, to the fleet itself).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The handle is shut down; the request was not accepted.
    ShutDown,
    /// The request was accepted but dropped before execution (worker died
    /// or the batch runner broke its contract).
    Canceled,
    /// The batch containing this request failed in the executor.
    Exec(ExecError),
    /// A remote shard reported a failure over the wire; the message is the
    /// rendered error (typed errors do not cross hosts).
    Remote(String),
    /// A fleet was assembled with zero transports — there is nowhere to
    /// route.
    NoShards,
    /// A request named a model id no shard group serves.
    UnknownModel(String),
    /// Two transports claimed the same model id with different device/seed
    /// recipes — they would compute different bits for the same stream, so
    /// the registry refuses to group them. The message names the model.
    SpecMismatch(String),
    /// Removing or recalibrating this shard would leave its model group
    /// with no live member to absorb the traffic.
    LiveFloor,
    /// A maintenance operation named a shard id no seat ever held.
    UnknownShard(usize),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "serve handle is shut down"),
            ServeError::Canceled => write!(f, "request canceled before execution"),
            ServeError::Exec(e) => write!(f, "batch execution failed: {e}"),
            ServeError::Remote(msg) => write!(f, "remote shard failed: {msg}"),
            ServeError::NoShards => write!(f, "a fleet needs at least one shard transport"),
            ServeError::UnknownModel(id) => {
                write!(f, "no shard group serves model id {id:?}")
            }
            ServeError::SpecMismatch(id) => write!(
                f,
                "conflicting shard specs for model id {id:?}: replicas of one \
                 model must share the same xbar config, noise channels and seed"
            ),
            ServeError::LiveFloor => write!(
                f,
                "operation refused: it would leave the shard's model group \
                 with no live member"
            ),
            ServeError::UnknownShard(idx) => {
                write!(f, "no shard seat has id {idx}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

/// One-shot completion cell shared between a [`Pending`] and its
/// fulfiller — a worker-side [`Ticket`], or a remote transport's reply
/// reader.
#[derive(Debug, Default)]
pub(crate) struct CompletionSlot {
    cell: Mutex<Option<Result<Tensor, ServeError>>>,
    cv: Condvar,
}

impl CompletionSlot {
    /// First writer wins; later fulfillments are ignored.
    pub(crate) fn fulfill(&self, outcome: Result<Tensor, ServeError>) {
        let mut cell = self.cell.lock().unwrap();
        if cell.is_none() {
            *cell = Some(outcome);
            self.cv.notify_all();
        }
    }
}

/// Builds a detached completion pair: the caller-facing [`Pending`] plus
/// the slot its fulfiller writes — for submitters that complete requests
/// outside the worker/ticket machinery (the remote transport fulfills from
/// wire replies).
pub(crate) fn pending_pair() -> (Pending, Arc<CompletionSlot>) {
    let slot = Arc::new(CompletionSlot::default());
    (
        Pending {
            slot: Arc::clone(&slot),
        },
        slot,
    )
}

/// The caller's side of one submitted request (returned by
/// [`ServeHandle::submit`]).
#[derive(Debug)]
pub struct Pending {
    slot: Arc<CompletionSlot>,
}

impl Pending {
    /// Blocks until the request completes, returning its logits (or the
    /// error that terminated it).
    ///
    /// # Errors
    /// [`ServeError::Exec`] if the batch failed in the executor;
    /// [`ServeError::Canceled`] if the request was dropped unexecuted.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        let mut cell = self.slot.cell.lock().unwrap();
        loop {
            if let Some(outcome) = cell.take() {
                return outcome;
            }
            cell = self.slot.cv.wait(cell).unwrap();
        }
    }

    /// Whether the request has completed (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.slot.cell.lock().unwrap().is_some()
    }
}

/// Worker-side completion obligation for one request. Fulfilling consumes
/// it; dropping it unfulfilled posts [`ServeError::Canceled`] and still
/// counts the request as completed, so drains never deadlock.
#[derive(Debug)]
pub(crate) struct Ticket {
    slot: Arc<CompletionSlot>,
    shared: Arc<SharedState>,
    done: bool,
    /// Class annotations for completion accounting: the priority band's
    /// in-flight counter is decremented at the terminal outcome, and the
    /// relative deadline (if any) is checked against the completion
    /// latency — a miss is *counted*, never culled.
    class: QosClass,
    /// Submission instant; `None` for tickets whose submission
    /// bookkeeping was never recorded (test fixtures).
    submitted_at: Option<Instant>,
}

impl Ticket {
    pub(crate) fn fulfill(mut self, outcome: Result<Tensor, ServeError>) {
        self.slot.fulfill(outcome);
        self.done = true;
        self.shared.note_completed(self.class, self.submitted_at);
    }

    /// Discards the obligation without any completion bookkeeping — only
    /// for requests whose submission bookkeeping was already rolled back.
    fn defuse(mut self) {
        self.done = true;
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.done {
            self.slot.fulfill(Err(ServeError::Canceled));
            // A canceled request never ran: count the completion (and
            // free its class slot) but record no latency sample.
            self.shared.note_completed(self.class, None);
        }
    }
}

/// One queued request, stamped with its global stream index at submission
/// time — either from the handle's own arrival counter
/// ([`ServeHandle::submit`]) or by an external router that owns a
/// fleet-wide numbering ([`ServeHandle::submit_at`]).
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) image: Tensor,
    pub(crate) index: u64,
    pub(crate) class: QosClass,
    pub(crate) ticket: Ticket,
    pub(crate) submitted_at: Instant,
}

/// Messages on the bounded request channel.
#[derive(Debug)]
pub(crate) enum Msg {
    Request(Request),
    /// Wake-up sentinel: drain what is queued, then exit.
    Shutdown,
}

/// Counters and latency samples shared between submitters and the worker.
#[derive(Debug, Default)]
pub(crate) struct SharedState {
    inner: Mutex<StateInner>,
    cv: Condvar,
}

/// How many per-request queue-wait samples are retained for the latency
/// percentiles — a bounded window of the most recent dispatches, so a
/// long-lived server's stats stay O(1) in memory.
const WAIT_SAMPLE_CAP: usize = 4096;

/// Per-class completion-latency samples retained (same bounded-ring
/// discipline as the queue-wait samples).
const LATENCY_SAMPLE_CAP: usize = 2048;

#[derive(Debug)]
struct StateInner {
    closed: bool,
    submitted: u64,
    completed: u64,
    rejected: u64,
    /// Next stream index [`ServeHandle::submit`] will stamp — requests are
    /// numbered in submission order, under the same lock as `submitted`.
    /// External stamps ([`ServeHandle::submit_at`]) push it forward so a
    /// later internal submission never re-stamps an externally used index.
    next_index: u64,
    /// One past the highest index stamped by the handle's **own** counter
    /// (`submit`/`submit_many`). External indices below this watermark
    /// collide with internally stamped requests — `submit_at` rejects them
    /// with a debug assertion.
    internal_watermark: u64,
    batches: u64,
    /// Total images dispatched to the runner (unlike the bounded wait
    /// ring, this never saturates).
    dispatched: u64,
    max_batch_observed: usize,
    /// Queue waits (submission → batch dispatch) of the most recent
    /// dispatched requests — a ring of [`WAIT_SAMPLE_CAP`] samples.
    queue_waits: Vec<Duration>,
    /// Overwrite position once the ring is full.
    wait_cursor: usize,
    /// In-flight occupancy per priority class (admitted, not yet at a
    /// terminal outcome).
    class_in_flight: [u64; Priority::COUNT],
    /// Per-class admission/shed/deadline-miss ledger.
    qos: QosStats,
    /// Overwrite positions of the per-class latency sample rings.
    latency_cursors: [usize; Priority::COUNT],
    /// EWMA of per-image execution time in nanoseconds (0 until the
    /// first batch completes); feeds deadline-feasibility estimates.
    est_image_ns: u64,
    /// Admission limits, copied from the policy at spawn. The defaults
    /// are fully permissive so state built outside [`spawn`]
    /// (tests, remote completion tracking) never sheds.
    queue_depth: u64,
    class_budgets: [usize; Priority::COUNT],
    /// Absolute in-flight count at which the queue reports ECN pressure.
    ecn_threshold: u64,
}

impl Default for StateInner {
    fn default() -> Self {
        StateInner {
            closed: false,
            submitted: 0,
            completed: 0,
            rejected: 0,
            next_index: 0,
            internal_watermark: 0,
            batches: 0,
            dispatched: 0,
            max_batch_observed: 0,
            queue_waits: Vec::new(),
            wait_cursor: 0,
            class_in_flight: [0; Priority::COUNT],
            qos: QosStats::default(),
            latency_cursors: [0; Priority::COUNT],
            est_image_ns: 0,
            queue_depth: u64::MAX,
            class_budgets: [usize::MAX; Priority::COUNT],
            ecn_threshold: u64::MAX,
        }
    }
}

impl SharedState {
    /// State wired to a policy's admission limits (used by
    /// [`spawn`](crate::spawn); the `Default` state is fully permissive).
    pub(crate) fn for_policy(policy: &BatchPolicy) -> Self {
        let mut inner = StateInner {
            queue_depth: policy.queue_depth as u64,
            class_budgets: policy.qos.class_budgets,
            ..StateInner::default()
        };
        inner.ecn_threshold =
            ((policy.queue_depth as u64) * u64::from(policy.qos.ecn_threshold_pct) / 100).max(1);
        SharedState {
            inner: Mutex::new(inner),
            cv: Condvar::new(),
        }
    }

    fn note_completed(&self, class: QosClass, submitted_at: Option<Instant>) {
        let mut st = self.inner.lock().unwrap();
        st.completed += 1;
        let rank = class.priority.rank();
        st.class_in_flight[rank] = st.class_in_flight[rank].saturating_sub(1);
        if let Some(t0) = submitted_at {
            let elapsed = t0.elapsed();
            if class.deadline.is_some_and(|d| elapsed > d) {
                st.qos.classes[rank].deadline_misses += 1;
            }
            if st.qos.classes[rank].latencies.len() < LATENCY_SAMPLE_CAP {
                st.qos.classes[rank].latencies.push(elapsed);
            } else {
                let cursor = st.latency_cursors[rank];
                st.qos.classes[rank].latencies[cursor] = elapsed;
                st.latency_cursors[rank] = (cursor + 1) % LATENCY_SAMPLE_CAP;
            }
        }
        self.cv.notify_all();
    }

    /// Folds one batch execution into the per-image service-time EWMA
    /// (integer arithmetic: `ewma ← (3·ewma + sample) / 4`).
    pub(crate) fn note_exec(&self, images: usize, elapsed: Duration) {
        if images == 0 {
            return;
        }
        let per_image = u64::try_from(elapsed.as_nanos() / images as u128).unwrap_or(u64::MAX);
        let mut st = self.inner.lock().unwrap();
        st.est_image_ns = if st.est_image_ns == 0 {
            per_image
        } else {
            (3 * (st.est_image_ns as u128) + per_image as u128).div_euclid(4) as u64
        };
    }

    pub(crate) fn note_batch(&self, size: usize, waits: &[Duration]) {
        let mut st = self.inner.lock().unwrap();
        st.batches += 1;
        st.dispatched += size as u64;
        st.max_batch_observed = st.max_batch_observed.max(size);
        for &w in waits {
            if st.queue_waits.len() < WAIT_SAMPLE_CAP {
                st.queue_waits.push(w);
            } else {
                let cursor = st.wait_cursor;
                st.queue_waits[cursor] = w;
                st.wait_cursor = (cursor + 1) % WAIT_SAMPLE_CAP;
            }
        }
    }
}

/// Point-in-time serving statistics (see [`ServeHandle::stats`]).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests accepted by [`ServeHandle::submit`].
    pub submitted: u64,
    /// Requests that reached a terminal outcome (logits, error, or cancel).
    pub completed: u64,
    /// Requests refused because the handle was shut down.
    pub rejected: u64,
    /// Micro-batches dispatched to the runner.
    pub batches: u64,
    /// Total images dispatched to the runner across all batches.
    pub dispatched: u64,
    /// Largest batch dispatched so far.
    pub max_batch_observed: usize,
    /// Queue waits (submission → batch dispatch) of the most recently
    /// dispatched requests — a bounded sample window (4096 entries), so
    /// long-lived servers report recent latency without unbounded growth.
    pub queue_waits: Vec<Duration>,
    /// Per-class admission/shed/deadline accounting plus completion
    /// latencies (see [`QosStats`]).
    pub qos: QosStats,
    /// Drift events applied since the shard was last (re)programmed — its
    /// staleness in drift-log steps. Local `ServeHandle`s (no drift-aware
    /// transport above them) always report 0; fleet transports fill it in.
    pub drift_age: u64,
    /// Times the shard has been reprogrammed from its seed since it
    /// started serving (cumulative).
    pub reprograms: u64,
}

impl ServeStats {
    /// The `p`-th percentile (0.0–1.0) of the recorded queue waits, or
    /// `None` before the first dispatch.
    pub fn queue_wait_percentile(&self, p: f64) -> Option<Duration> {
        if self.queue_waits.is_empty() {
            return None;
        }
        let mut sorted = self.queue_waits.clone();
        sorted.sort_unstable();
        let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Mean images per dispatched batch (0.0 before the first dispatch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.dispatched as f64 / self.batches as f64
        }
    }
}

/// Clone-able submitter for a running micro-batch scheduler (see
/// [`spawn`](crate::spawn)).
///
/// All clones feed the same bounded queue and the same worker; any clone
/// may [`ServeHandle::drain`] or [`ServeHandle::shutdown`]. Completion
/// order is FIFO in arrival order: the worker dispatches batches in queue
/// order and fulfills each batch front-to-back.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    tx: SyncSender<Msg>,
    shared: Arc<SharedState>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl ServeHandle {
    pub(crate) fn new(
        tx: SyncSender<Msg>,
        shared: Arc<SharedState>,
        worker: JoinHandle<()>,
    ) -> Self {
        ServeHandle {
            tx,
            shared,
            worker: Arc::new(Mutex::new(Some(worker))),
        }
    }

    /// Submits one image for inference, returning its completion handle.
    /// The request is stamped with the handle's next stream index (arrival
    /// order), so batches evaluate it at a stable global coordinate.
    ///
    /// Blocks only when the bounded queue is full (backpressure); the
    /// actual inference is asynchronous — claim the result later via
    /// [`Pending::wait`].
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] if [`ServeHandle::shutdown`] ran first.
    pub fn submit(&self, image: Tensor) -> Result<Pending, ServeError> {
        self.submit_inner(image, None, QosClass::default())
    }

    /// Submits one image with explicit QoS annotations, returning a typed
    /// [`Admission`] instead of blocking semantics: the request is either
    /// admitted (with its completion handle), shed with a
    /// [`ShedReason`], or rejected as
    /// [`Admission::DeadlineInfeasible`] when the estimated queue wait
    /// already exceeds its deadline.
    ///
    /// Admission happens **before** a stream index is stamped, so a shed
    /// request never occupies a coordinate — the admitted subset of the
    /// stream is contiguous and bit-identical to a solo run.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] if [`ServeHandle::shutdown`] ran first.
    pub fn submit_qos(&self, image: Tensor, class: QosClass) -> Result<Admission, ServeError> {
        self.submit_gated(image, None, class, true)
    }

    /// The fleet-router variant of [`ServeHandle::submit_qos`]: QoS-gated
    /// admission at an externally owned stream index (see
    /// [`ServeHandle::submit_at`] for the index contract). The router
    /// must claim the index only *after* a successful admission (or roll
    /// it back), so shed requests never hole the global numbering.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] if [`ServeHandle::shutdown`] ran first.
    pub fn submit_at_qos(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        self.submit_gated(image, Some(index), class, true)
    }

    /// Submits one image stamped with an **externally owned** stream index
    /// instead of the handle's own counter — the entry point a fleet
    /// router uses after claiming `index` from its global arrival counter
    /// (see [`FleetHandle::submit`](crate::FleetHandle)).
    ///
    /// A shard fed through `submit_at` carries whatever (possibly
    /// non-contiguous) slice of the global stream the router handed it.
    /// Only use it on handles whose runner honors stamped indices (a
    /// runner wrapping a counter-claiming backend, like the platform
    /// session's solo analog handle, ignores them by design).
    ///
    /// # Mixing with the handle-owned counter
    ///
    /// [`ServeHandle::submit`] stamps from the handle's own counter, so a
    /// caller that mixes `submit` and `submit_at` on one handle is merging
    /// two numbering authorities — a coordinate-aliasing race unless they
    /// are kept disjoint. The contract: **an external index must be at or
    /// above the internal watermark** (one past the highest index the
    /// handle's own counter has stamped). `submit_at` enforces it with a
    /// debug assertion, and pushes the internal counter past the external
    /// index so later `submit` calls stay disjoint in the other direction.
    /// Externally stamped indices may otherwise arrive in any order
    /// (concurrent routers reorder); the handle never compares them to
    /// each other.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] if [`ServeHandle::shutdown`] ran first.
    ///
    /// # Panics
    /// In debug builds, if `index` is below the internal watermark (see
    /// above).
    pub fn submit_at(&self, index: u64, image: Tensor) -> Result<Pending, ServeError> {
        self.submit_inner(image, Some(index), QosClass::default())
    }

    /// Ungated, class-annotated submission at an external index: used for
    /// requests that were already admitted at a fleet ingress (protocol
    /// servers), where a local shed would hole the global numbering. The
    /// class still drives EDF composition and deadline accounting.
    pub(crate) fn submit_at_admitted(
        &self,
        index: u64,
        image: Tensor,
        class: QosClass,
    ) -> Result<Pending, ServeError> {
        self.submit_inner(image, Some(index), class)
    }

    /// Ungated admission: preserves the pre-QoS blocking contract.
    fn submit_inner(
        &self,
        image: Tensor,
        index: Option<u64>,
        class: QosClass,
    ) -> Result<Pending, ServeError> {
        match self.submit_gated(image, index, class, false)? {
            Admission::Admitted(p) => Ok(p),
            _ => unreachable!("ungated submission never sheds"),
        }
    }

    fn submit_gated(
        &self,
        image: Tensor,
        index: Option<u64>,
        class: QosClass,
        gated: bool,
    ) -> Result<Admission, ServeError> {
        let rank = class.priority.rank();
        let index = {
            let mut st = self.shared.inner.lock().unwrap();
            if st.closed {
                st.rejected += 1;
                return Err(ServeError::ShutDown);
            }
            if gated {
                let in_flight = st.submitted - st.completed;
                if in_flight >= st.queue_depth {
                    st.qos.classes[rank].note_shed(ShedReason::QueueFull);
                    return Ok(Admission::Shed(ShedReason::QueueFull));
                }
                if st.class_in_flight[rank] >= st.class_budgets[rank] as u64 {
                    st.qos.classes[rank].note_shed(ShedReason::ClassBudget);
                    return Ok(Admission::Shed(ShedReason::ClassBudget));
                }
                if let (Some(deadline), true) = (class.deadline, st.est_image_ns > 0) {
                    let estimated_wait =
                        Duration::from_nanos(in_flight.saturating_mul(st.est_image_ns));
                    if estimated_wait > deadline {
                        st.qos.classes[rank].infeasible += 1;
                        return Ok(Admission::DeadlineInfeasible { estimated_wait });
                    }
                }
            }
            st.submitted += 1;
            st.class_in_flight[rank] += 1;
            st.qos.classes[rank].admitted += 1;
            if st.submitted - st.completed >= st.ecn_threshold {
                st.qos.ecn_marks += 1;
            }
            match index {
                Some(i) => {
                    #[cfg(debug_assertions)]
                    if i < st.internal_watermark {
                        // Coordinate-aliasing bug in the caller. Leave the
                        // state coherent (and the lock unpoisoned — a live
                        // worker shares it) before surfacing it.
                        let watermark = st.internal_watermark;
                        st.submitted -= 1;
                        st.rejected += 1;
                        st.class_in_flight[rank] -= 1;
                        st.qos.classes[rank].admitted -= 1;
                        drop(st);
                        panic!(
                            "submit_at({i}) collides with the handle-owned counter: indices \
                             below {watermark} were already stamped by submit/submit_many on \
                             this handle — external numbering must stay at or above the \
                             internal watermark"
                        );
                    }
                    // Future internal stamps skip past the external index,
                    // so the two numbering sources stay disjoint.
                    st.next_index = st.next_index.max(i + 1);
                    i
                }
                None => {
                    let i = st.next_index;
                    st.next_index += 1;
                    st.internal_watermark = st.next_index;
                    i
                }
            }
        };
        let (request, pending) = self.make_request(image, index, class);
        self.send_or_roll_back(request, 1, class)?;
        Ok(Admission::Admitted(pending))
    }

    /// Builds one stamped request plus its caller-side completion handle.
    fn make_request(&self, image: Tensor, index: u64, class: QosClass) -> (Request, Pending) {
        let slot = Arc::new(CompletionSlot::default());
        let now = Instant::now();
        let request = Request {
            image,
            index,
            class,
            ticket: Ticket {
                slot: Arc::clone(&slot),
                shared: Arc::clone(&self.shared),
                done: false,
                class,
                submitted_at: Some(now),
            },
            submitted_at: now,
        };
        (request, Pending { slot })
    }

    /// Sends one request; on failure (the worker is gone — shutdown raced
    /// ahead) rolls `unsent` submissions back and refuses. Stamped indices
    /// are not rolled back — once the worker is gone every later
    /// submission fails too, so the hole sits strictly after the last
    /// evaluated coordinate and never shifts the stream.
    fn send_or_roll_back(
        &self,
        request: Request,
        unsent: u64,
        class: QosClass,
    ) -> Result<(), ServeError> {
        if let Err(e) = self.tx.send(Msg::Request(request)) {
            if let Msg::Request(req) = e.0 {
                req.ticket.defuse();
            }
            {
                let mut st = self.shared.inner.lock().unwrap();
                st.submitted -= unsent;
                st.rejected += unsent;
                let rank = class.priority.rank();
                st.class_in_flight[rank] = st.class_in_flight[rank].saturating_sub(unsent);
                st.qos.classes[rank].admitted =
                    st.qos.classes[rank].admitted.saturating_sub(unsent);
            }
            // The rollback can be what lets `completed == submitted`: a
            // drain blocked on the old count must re-check.
            self.shared.cv.notify_all();
            return Err(ServeError::ShutDown);
        }
        Ok(())
    }

    /// Submits a whole run of images in one call, taking the queue lock
    /// **once** for the entire run: the images are stamped with contiguous
    /// stream indices as a block, exactly as the equivalent loop of
    /// [`ServeHandle::submit`] calls would stamp them from a single thread
    /// — but without per-image lock traffic, and atomically with respect
    /// to concurrent submitters (no interleaving inside the block).
    ///
    /// Blocks on the bounded queue like `submit` does (backpressure is per
    /// image, so a run larger than `queue_depth` is fine — the worker
    /// drains while this call feeds).
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] if the handle is shut down at entry, or if
    /// shutdown races the run mid-way (already-enqueued images of the run
    /// still complete, but their completion handles are discarded with the
    /// error).
    pub fn submit_many(
        &self,
        images: impl IntoIterator<Item = Tensor>,
    ) -> Result<Vec<Pending>, ServeError> {
        let images: Vec<Tensor> = images.into_iter().collect();
        let n = images.len() as u64;
        if n == 0 {
            return Ok(Vec::new());
        }
        let base = {
            let mut st = self.shared.inner.lock().unwrap();
            if st.closed {
                st.rejected += n;
                return Err(ServeError::ShutDown);
            }
            st.submitted += n;
            let rank = QosClass::default().priority.rank();
            st.class_in_flight[rank] += n;
            st.qos.classes[rank].admitted += n;
            let base = st.next_index;
            st.next_index += n;
            st.internal_watermark = st.next_index;
            base
        };
        let mut pendings = Vec::with_capacity(images.len());
        for (i, image) in images.into_iter().enumerate() {
            let (request, pending) = self.make_request(image, base + i as u64, QosClass::default());
            // Shutdown racing the run rolls back the whole unsent tail.
            self.send_or_roll_back(request, n - i as u64, QosClass::default())?;
            pendings.push(pending);
        }
        Ok(pendings)
    }

    /// Requests accepted but not yet completed — the router's load signal
    /// for least-queue-depth shard selection.
    pub fn in_flight(&self) -> u64 {
        let st = self.shared.inner.lock().unwrap();
        st.submitted - st.completed
    }

    /// The congestion signal this queue exports: occupancy (total and
    /// per class), the ECN-style pressure bit, and the per-image
    /// service-time estimate.
    pub fn load(&self) -> ShardLoad {
        let st = self.shared.inner.lock().unwrap();
        let in_flight = st.submitted - st.completed;
        ShardLoad {
            in_flight,
            per_class: st.class_in_flight,
            pressure: in_flight >= st.ecn_threshold,
            est_image_ns: st.est_image_ns,
        }
    }

    /// Blocks until every accepted request has reached a terminal outcome
    /// (the queue is empty and no batch is in flight).
    pub fn drain(&self) {
        let mut st = self.shared.inner.lock().unwrap();
        while st.completed < st.submitted {
            st = self.shared.cv.wait(st).unwrap();
        }
    }

    /// Stops accepting new requests, drains everything already accepted,
    /// and joins the worker thread. Idempotent; safe to call from any
    /// clone.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.inner.lock().unwrap();
            if st.closed {
                // Another clone already initiated shutdown; just wait for
                // completions below.
                drop(st);
                self.drain();
                return;
            }
            st.closed = true;
        }
        // Wake the worker; if it already exited, the queue is being torn
        // down and pending tickets cancel themselves.
        let _ = self.tx.send(Msg::Shutdown);
        let worker = self.worker.lock().unwrap().take();
        if let Some(h) = worker {
            let _ = h.join();
        }
        self.drain();
    }

    /// Whether [`ServeHandle::shutdown`] has run.
    pub fn is_closed(&self) -> bool {
        self.shared.inner.lock().unwrap().closed
    }

    /// A snapshot of the serving statistics.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.inner.lock().unwrap();
        ServeStats {
            submitted: st.submitted,
            completed: st.completed,
            rejected: st.rejected,
            batches: st.batches,
            dispatched: st.dispatched,
            max_batch_observed: st.max_batch_observed,
            queue_waits: st.queue_waits.clone(),
            qos: st.qos.clone(),
            drift_age: 0,
            reprograms: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimc_dnn::Shape;

    fn tensor(v: f32) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1), vec![v])
    }

    #[test]
    fn pending_wait_returns_the_fulfilled_value() {
        let slot = Arc::new(CompletionSlot::default());
        let p = Pending {
            slot: Arc::clone(&slot),
        };
        assert!(!p.is_ready());
        slot.fulfill(Ok(tensor(1.0)));
        assert!(p.is_ready());
        assert_eq!(p.wait().unwrap().data(), &[1.0]);
    }

    #[test]
    fn first_fulfillment_wins() {
        let slot = Arc::new(CompletionSlot::default());
        let p = Pending {
            slot: Arc::clone(&slot),
        };
        slot.fulfill(Err(ServeError::Canceled));
        slot.fulfill(Ok(tensor(2.0)));
        assert_eq!(p.wait(), Err(ServeError::Canceled));
    }

    #[test]
    fn dropped_ticket_cancels_and_counts_completion() {
        let shared = Arc::new(SharedState::default());
        shared.inner.lock().unwrap().submitted = 1;
        let slot = Arc::new(CompletionSlot::default());
        let p = Pending {
            slot: Arc::clone(&slot),
        };
        let ticket = Ticket {
            slot,
            shared: Arc::clone(&shared),
            done: false,
            class: QosClass::default(),
            submitted_at: None,
        };
        drop(ticket);
        assert_eq!(p.wait(), Err(ServeError::Canceled));
        assert_eq!(shared.inner.lock().unwrap().completed, 1);
    }

    #[test]
    fn stats_percentiles_and_mean_batch() {
        let mut s = ServeStats::default();
        assert_eq!(s.queue_wait_percentile(0.5), None);
        assert_eq!(s.mean_batch(), 0.0);
        s.queue_waits = (1..=100).map(Duration::from_millis).collect();
        s.batches = 25;
        s.dispatched = 100;
        assert_eq!(s.queue_wait_percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(
            s.queue_wait_percentile(0.5),
            Some(Duration::from_millis(51))
        );
        assert_eq!(
            s.queue_wait_percentile(1.0),
            Some(Duration::from_millis(100))
        );
        assert_eq!(s.mean_batch(), 4.0);
    }

    /// Past the wait-sample cap the ring overwrites oldest samples, while
    /// `dispatched` keeps exact count — so `mean_batch` stays correct on
    /// long-lived servers.
    #[test]
    fn wait_ring_saturates_but_mean_batch_stays_exact() {
        let shared = SharedState::default();
        let waits = [Duration::from_millis(1); 10];
        for _ in 0..600 {
            shared.note_batch(10, &waits);
        }
        let st = shared.inner.lock().unwrap();
        assert_eq!(st.queue_waits.len(), WAIT_SAMPLE_CAP);
        assert_eq!(st.dispatched, 6000);
        assert_eq!(st.batches, 600);
        drop(st);
        let stats = ServeStats {
            batches: 600,
            dispatched: 6000,
            ..ServeStats::default()
        };
        assert_eq!(stats.mean_batch(), 10.0);
    }

    #[test]
    fn serve_error_displays() {
        assert!(ServeError::ShutDown.to_string().contains("shut down"));
        assert!(ServeError::Canceled.to_string().contains("canceled"));
        let e = ServeError::from(ExecError::ShapeMismatch {
            expected: Shape::new(1, 2, 3),
            got: Shape::new(3, 2, 1),
        });
        assert!(e.to_string().contains("batch execution failed"));
        assert!(ServeError::Remote("boom".into())
            .to_string()
            .contains("boom"));
        assert!(ServeError::NoShards.to_string().contains("at least one"));
    }

    fn echo_handle() -> ServeHandle {
        crate::spawn(
            crate::BatchPolicy::new(1, Duration::from_millis(1)),
            |_idx: &[u64], inputs: &[Tensor]| Ok(inputs.to_vec()),
        )
    }

    /// The mixing contract: external indices below the handle-owned
    /// counter's watermark are a coordinate-aliasing bug, caught by the
    /// debug assertion.
    #[test]
    #[should_panic(expected = "collides with the handle-owned counter")]
    fn submit_at_below_internal_watermark_is_rejected() {
        let handle = echo_handle();
        let _ = handle.submit(tensor(0.0)).unwrap(); // stamps index 0
        let _ = handle.submit_at(0, tensor(1.0)); // aliases coordinate 0
    }

    /// The legal mixed pattern: external stamps at/above the watermark are
    /// accepted and push the internal counter past themselves, so a later
    /// `submit` never re-stamps an externally used index.
    #[test]
    fn submit_at_above_watermark_keeps_numbering_disjoint() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&seen);
        let handle = crate::spawn(
            crate::BatchPolicy::new(1, Duration::from_millis(1)),
            move |idx: &[u64], inputs: &[Tensor]| {
                log.lock().unwrap().extend_from_slice(idx);
                Ok(inputs.to_vec())
            },
        );
        handle.submit(tensor(0.0)).unwrap().wait().unwrap(); // index 0
        handle.submit_at(5, tensor(1.0)).unwrap().wait().unwrap();
        // Internal counter resumes past the external stamp.
        handle.submit(tensor(2.0)).unwrap().wait().unwrap(); // index 6
        handle.shutdown();
        assert_eq!(*seen.lock().unwrap(), vec![0, 5, 6]);
    }
}
