//! # aimc-serve — async micro-batching serving layer
//!
//! The paper reaches its headline throughput by driving the AIMC fabric
//! with batch-16 streams: programming cost is paid once and the peripheral
//! pipeline is amortized over many images. This crate is the host-side
//! counterpart for *serving*: it accepts **single-image requests** on a
//! bounded MPSC queue, coalesces them into micro-batches under a
//! [`BatchPolicy`] latency budget, and drives a [`BatchRunner`] (typically
//! `Executor::infer_batch_at` behind the `aimc-platform` session) — with
//! one hard guarantee on top of PR 2's thread-count invariance:
//!
//! > **Batch-composition invariance.** Requests are numbered in arrival
//! > order and each batch carries the stream index of its first image, so
//! > for a fixed seed the logits of request *k* are bit-identical no
//! > matter how the stream was chopped into micro-batches — max_batch 1,
//! > 16, or anything the wait budget produced under load.
//!
//! ## Anatomy
//!
//! * [`BatchPolicy`] — the two serving knobs (`max_batch`, `max_wait`)
//!   plus the queue bound.
//! * [`Coalescer`] — the pure batching state machine (size *or* deadline
//!   triggers a flush). It takes explicit `now` timestamps, so the latency
//!   budget is unit-testable under a fake clock.
//! * [`spawn`] — wires a bounded channel, the coalescer, and a worker
//!   thread around a [`BatchRunner`]; returns a clone-able [`ServeHandle`].
//! * [`ServeHandle::submit`] — enqueues one image, returning a [`Pending`]
//!   completion handle; [`ServeHandle::drain`] / [`ServeHandle::shutdown`]
//!   flush and stop the worker. [`ServeHandle::submit_many`] stamps a
//!   whole run under one lock acquisition.
//! * [`FleetHandle`] — the two-tier *sharded* ingress: a router that owns
//!   the global stream numbering (a lease-based range allocator,
//!   [`LeaseAllocator`]), stamps every request with its global index, and
//!   routes lease blocks ([`FleetPolicy`]) to N shards — with the
//!   invariance generalized to any shard count.
//! * [`ShardTransport`] — the only interface the router speaks: submit an
//!   indexed request, probe load, drain/shutdown, fan shard control.
//!   [`LocalTransport`] is the in-process zero-copy path;
//!   [`TcpTransport`] + [`ShardServer`] speak the `aimc-wire` protocol so
//!   shards can live on other hosts — with the invariance extended
//!   verbatim to any transport mix.
//!
//! ## Example
//!
//! ```
//! use aimc_serve::{spawn, BatchPolicy};
//! use aimc_dnn::{Shape, Tensor};
//! use std::time::Duration;
//!
//! // A toy runner: doubles the first element of every image.
//! let runner = |_indices: &[u64], inputs: &[Tensor]| {
//!     Ok(inputs
//!         .iter()
//!         .map(|t| Tensor::from_vec(t.shape(), t.data().iter().map(|v| v * 2.0).collect()))
//!         .collect())
//! };
//! let handle = spawn(BatchPolicy::new(4, Duration::from_millis(1)), runner);
//! let pending = handle
//!     .submit(Tensor::from_vec(Shape::new(1, 1, 1), vec![21.0]))
//!     .unwrap();
//! assert_eq!(pending.wait().unwrap().data(), &[42.0]);
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesce;
mod handle;
mod lease;
pub mod qos;
mod recal;
mod remote;
mod router;
mod scheduler;
mod transport;

pub use aimc_wire::{IndexLease, NoiseSpec, ShardSpec};
pub use coalesce::Coalescer;
pub use handle::{Pending, ServeError, ServeHandle, ServeStats};
pub use lease::LeaseAllocator;
pub use qos::{
    Admission, AimdPacer, ClassStats, PacerConfig, Priority, QosClass, QosCoalescer, QosOrdering,
    QosPolicy, QosStats, ShardLoad, ShedReason,
};
pub use recal::{RecalHandle, RecalPolicy, RecalStats};
pub use remote::{Connect, RetryPolicy, ShardServer, TcpTransport};
pub use router::{FleetHandle, FleetPolicy, FleetStats, RoutePolicy, ShardHealth};
pub use scheduler::{spawn, BatchRunner};
pub use transport::{LocalTransport, Orphan, ShardControl, ShardTransport};

use aimc_dnn::{ExecError, Tensor};
use std::time::Duration;

/// Object-safe runner type for adapters that pick the execution path at
/// runtime (e.g. the platform session choosing a backend slot): a
/// `Box<DynRunner>` is itself a [`BatchRunner`]. The first slice holds the
/// global stream index of each input (same length as the input slice).
pub type DynRunner = dyn FnMut(&[u64], &[Tensor]) -> Result<Vec<Tensor>, ExecError> + Send;

/// The micro-batch scheduling policy: how many requests to coalesce and
/// how long the oldest queued request may wait for company.
///
/// A batch is dispatched as soon as **either** trigger fires:
/// `max_batch` requests are pending, or `max_wait` has elapsed since the
/// first request of the partial batch arrived. `max_batch = 1` degrades to
/// solo serving (every request is its own batch); a large `max_batch` with
/// a small `max_wait` keeps tail latency bounded under light load while
/// still filling batches under heavy load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Upper bound on images per dispatched batch (≥ 1; 0 is treated as 1).
    pub max_batch: usize,
    /// Latency budget: the longest the first request of a partial batch
    /// waits before the batch is dispatched anyway.
    pub max_wait: Duration,
    /// Bound of the request queue: once this many requests are in flight
    /// between submitters and the worker, [`ServeHandle::submit`] blocks
    /// (backpressure, never unbounded growth) and
    /// [`ServeHandle::submit_qos`] sheds with
    /// [`ShedReason::QueueFull`](qos::ShedReason::QueueFull).
    pub queue_depth: usize,
    /// Admission-control knobs: per-class budgets, coalescer ordering,
    /// ECN threshold. The default is fully permissive FIFO, preserving
    /// pre-QoS behavior exactly.
    pub qos: QosPolicy,
}

impl BatchPolicy {
    /// A policy with the given batch bound and latency budget, and a
    /// default queue depth of `max(4 · max_batch, 64)`.
    pub fn new(max_batch: usize, max_wait: Duration) -> Self {
        BatchPolicy {
            max_batch,
            max_wait,
            queue_depth: (max_batch * 4).max(64),
            qos: QosPolicy::default(),
        }
    }

    /// Overrides the queue bound (clamped to at least 1).
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the admission-control policy.
    pub fn with_qos(mut self, qos: QosPolicy) -> Self {
        self.qos = qos;
        self
    }

    /// The policy with degenerate settings clamped to usable values.
    pub(crate) fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self
    }
}

impl Default for BatchPolicy {
    /// The paper's batch of 16 with a 2 ms latency budget.
    fn default() -> Self {
        BatchPolicy::new(16, Duration::from_millis(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_and_normalization() {
        let p = BatchPolicy::default();
        assert_eq!(p.max_batch, 16);
        assert_eq!(p.max_wait, Duration::from_millis(2));
        assert_eq!(p.queue_depth, 64);

        let p = BatchPolicy::new(32, Duration::from_millis(1));
        assert_eq!(p.queue_depth, 128);
        assert_eq!(p.with_queue_depth(7).queue_depth, 7);

        let degenerate = BatchPolicy {
            max_batch: 0,
            max_wait: Duration::ZERO,
            queue_depth: 0,
            qos: QosPolicy::default(),
        }
        .normalized();
        assert_eq!(degenerate.max_batch, 1);
        assert_eq!(degenerate.queue_depth, 1);
    }
}
