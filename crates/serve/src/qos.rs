//! SLO-aware admission control: priority classes, deadlines, typed load
//! shedding, and congestion-signal pacing.
//!
//! The serving layer's only overload behavior used to be a blocking
//! bounded queue. This module replaces that with **typed admission
//! decisions** at the ingress: every request carries a
//! [`QosClass`] (priority + optional deadline) and every submit returns an
//! [`Admission`] — admitted with a completion handle, shed with a
//! [`ShedReason`], or rejected as infeasible before any work is queued.
//!
//! Invariance discipline: admission control happens **before** a global
//! stream index is claimed (or is rolled back synchronously, the same
//! discipline as PR 5's refused-submission rollback). Once admitted, a
//! request is never dropped — a missed deadline is *counted*, not culled —
//! so the admitted subset always occupies a contiguous, hole-free prefix
//! of the stream numbering and stays bit-identical to a solo run at the
//! same coordinates. QoS changes **which** requests run, never **what**
//! an admitted request computes.
//!
//! The pieces, bottom-up:
//!
//! * [`QosPolicy`] — per-class in-flight budgets, coalescer ordering
//!   ([`QosOrdering`]), and the ECN mark threshold.
//! * [`QosCoalescer`] — the batching state machine with
//!   earliest-deadline-first ordering *within* priority bands. Like
//!   [`Coalescer`](crate::Coalescer) it owns no clock; tests drive it with
//!   fake timestamps.
//! * [`ShardLoad`] — the congestion signal a shard exports: queue depth,
//!   per-class occupancy, an ECN-style pressure bit (drop-tail threshold,
//!   in the spirit of packet-switching queue disciplines), and a service-
//!   time estimate for deadline feasibility checks.
//! * [`AimdPacer`] — the router-side consumer of pressure bits: additive
//!   increase, multiplicative decrease on marks, so a backpressured remote
//!   shard slows ingress instead of stalling it.
//! * [`QosStats`] / [`ClassStats`] — per-class admission, shed, and
//!   deadline-miss counters plus completion-latency samples.

use std::fmt;
use std::time::Duration;

pub use aimc_wire::{Priority, QosClass};

use crate::handle::Pending;

/// Why a request was shed at admission.
///
/// Every reason is *typed* so callers can react differently: retry later
/// (`QueueFull`), downgrade the class (`ClassBudget`), or back off
/// (`Overload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The bounded request queue is at `queue_depth`; admitting would
    /// have blocked the caller.
    QueueFull,
    /// The request's class is at its [`QosPolicy::class_budgets`]
    /// in-flight budget.
    ClassBudget,
    /// The congestion pacer ([`AimdPacer`]) has closed its window in
    /// response to shard pressure marks.
    Overload,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::ClassBudget => "class_budget",
            ShedReason::Overload => "overload",
        })
    }
}

/// The outcome of a QoS-aware submit: the typed replacement for the
/// blocking-or-error contract of the plain `submit`.
#[derive(Debug)]
pub enum Admission {
    /// The request was admitted; await the logits on the handle.
    Admitted(Pending),
    /// The request was refused before any stream index was claimed.
    Shed(ShedReason),
    /// The request carried a deadline that cannot be met even if admitted
    /// right now (estimated queue wait already exceeds it).
    DeadlineInfeasible {
        /// The wait the admission controller estimated from queue depth
        /// and the shard's service-time EWMA.
        estimated_wait: Duration,
    },
}

impl Admission {
    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }

    /// The completion handle, if admitted.
    pub fn admitted(self) -> Option<Pending> {
        match self {
            Admission::Admitted(p) => Some(p),
            _ => None,
        }
    }

    /// The shed reason, if shed.
    pub fn shed_reason(&self) -> Option<ShedReason> {
        match self {
            Admission::Shed(r) => Some(*r),
            _ => None,
        }
    }
}

/// How the coalescer orders queued requests into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosOrdering {
    /// Strict arrival order — the pre-QoS behavior, and the only legal
    /// ordering for runners that number the stream themselves (the solo
    /// `Session::serve` analog path).
    #[default]
    Fifo,
    /// Earliest deadline first within each priority band: all `High`
    /// requests dispatch before any `Normal`, ties broken by deadline
    /// then arrival. Safe only where stamped global indices are honored
    /// (the fleet shard runners), because reordering dispatch never moves
    /// a request's stream coordinate.
    EdfWithinPriority,
}

/// Admission-control knobs carried inside
/// [`BatchPolicy`](crate::BatchPolicy): per-class budgets, batch ordering,
/// and the congestion-mark threshold.
///
/// The default is fully permissive — unbounded budgets, FIFO ordering —
/// so pre-QoS callers see byte-for-byte identical behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosPolicy {
    /// Batch composition order; see [`QosOrdering`].
    pub ordering: QosOrdering,
    /// Per-class in-flight budgets indexed by [`Priority::rank`];
    /// `usize::MAX` means unbounded. A class at its budget sheds with
    /// [`ShedReason::ClassBudget`].
    pub class_budgets: [usize; Priority::COUNT],
    /// ECN mark threshold as a percentage of `queue_depth`: the shard
    /// reports pressure once `in_flight ≥ queue_depth · pct / 100`.
    pub ecn_threshold_pct: u8,
}

impl QosPolicy {
    /// Overrides the coalescer ordering.
    pub fn with_ordering(mut self, ordering: QosOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Bounds the in-flight budget of one priority class.
    pub fn with_class_budget(mut self, priority: Priority, budget: usize) -> Self {
        self.class_budgets[priority.rank()] = budget;
        self
    }

    /// Overrides the ECN mark threshold (clamped to 1..=100).
    pub fn with_ecn_threshold_pct(mut self, pct: u8) -> Self {
        self.ecn_threshold_pct = pct.clamp(1, 100);
        self
    }
}

impl Default for QosPolicy {
    fn default() -> Self {
        QosPolicy {
            ordering: QosOrdering::Fifo,
            class_budgets: [usize::MAX; Priority::COUNT],
            ecn_threshold_pct: 75,
        }
    }
}

/// The congestion signal a shard exports to its router: the local
/// equivalent of a switch queue's occupancy telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLoad {
    /// Requests submitted but not yet completed.
    pub in_flight: u64,
    /// In-flight occupancy per priority class, indexed by
    /// [`Priority::rank`].
    pub per_class: [u64; Priority::COUNT],
    /// ECN-style mark: the queue is past its pressure threshold. Level-
    /// triggered — the bit reflects occupancy at probe time.
    pub pressure: bool,
    /// EWMA of per-image service time in nanoseconds (0 = no estimate
    /// yet). Used for deadline-feasibility checks: estimated wait ≈
    /// `in_flight · est_image_ns`.
    pub est_image_ns: u64,
}

impl ShardLoad {
    /// The wait a newly admitted request would see, estimated from queue
    /// occupancy and the service-time EWMA. `None` until an estimate
    /// exists.
    pub fn estimated_wait(&self) -> Option<Duration> {
        (self.est_image_ns > 0)
            .then(|| Duration::from_nanos(self.in_flight.saturating_mul(self.est_image_ns)))
    }
}

/// Configuration of the router's [`AimdPacer`]. Disabled by default —
/// pacing only activates when a fleet opts in, so pre-QoS fleets are
/// unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacerConfig {
    /// Whether the pacer gates admission at all.
    pub enabled: bool,
    /// Floor of the congestion window (requests in flight per shard).
    pub min_window: usize,
    /// Ceiling of the congestion window.
    pub max_window: usize,
    /// Hard cap on per-shard in-flight occupancy regardless of window
    /// state; `usize::MAX` disables the cap.
    pub hard_limit: usize,
    /// Minimum spacing between multiplicative decreases, so one burst of
    /// marked replies (all reflecting the same queue state) halves the
    /// window once, not once per reply.
    pub decrease_cooldown: Duration,
}

impl PacerConfig {
    /// An enabled pacer with the default window bounds.
    pub fn aimd() -> Self {
        PacerConfig {
            enabled: true,
            ..PacerConfig::default()
        }
    }

    /// Overrides the hard in-flight cap.
    pub fn with_hard_limit(mut self, hard_limit: usize) -> Self {
        self.hard_limit = hard_limit;
        self
    }
}

impl Default for PacerConfig {
    fn default() -> Self {
        PacerConfig {
            enabled: false,
            min_window: 1,
            max_window: 1024,
            hard_limit: usize::MAX,
            decrease_cooldown: Duration::from_millis(2),
        }
    }
}

/// An AIMD congestion window over one shard's in-flight occupancy,
/// driven by ECN-style pressure marks: additive increase (`+1/window` per
/// unmarked observation, the TCP-Reno shape), multiplicative decrease
/// (halve on a mark, rate-limited by the cooldown).
///
/// Owns no clock: observations carry explicit `now` timestamps, so the
/// cooldown is unit-testable under a fake clock.
#[derive(Debug, Clone)]
pub struct AimdPacer {
    config: PacerConfig,
    window: f64,
    last_decrease: Option<Duration>,
}

impl AimdPacer {
    /// A pacer opening at the configured maximum window.
    pub fn new(config: PacerConfig) -> Self {
        AimdPacer {
            config,
            window: config.max_window.max(config.min_window.max(1)) as f64,
            last_decrease: None,
        }
    }

    /// Feeds one congestion observation at time `now` (any monotonic
    /// duration since a caller-chosen epoch).
    pub fn observe(&mut self, pressure: bool, now: Duration) {
        if !self.config.enabled {
            return;
        }
        let floor = self.config.min_window.max(1) as f64;
        let ceil = self.config.max_window.max(1) as f64;
        if pressure {
            let cooled = self
                .last_decrease
                .is_none_or(|t| now.saturating_sub(t) >= self.config.decrease_cooldown);
            if cooled {
                self.window = (self.window / 2.0).max(floor);
                self.last_decrease = Some(now);
            }
        } else {
            self.window = (self.window + 1.0 / self.window.max(1.0)).min(ceil);
        }
    }

    /// Whether a shard at `in_flight` occupancy may accept one more
    /// request under the current window and hard limit.
    pub fn admits(&self, in_flight: usize) -> bool {
        if in_flight >= self.config.hard_limit {
            return false;
        }
        !self.config.enabled || in_flight < self.window as usize
    }

    /// The current congestion window, in requests.
    pub fn window(&self) -> usize {
        self.window as usize
    }
}

/// Per-class admission/shed/deadline accounting plus completion-latency
/// samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Sheds with [`ShedReason::QueueFull`].
    pub shed_queue_full: u64,
    /// Sheds with [`ShedReason::ClassBudget`].
    pub shed_class_budget: u64,
    /// Sheds with [`ShedReason::Overload`].
    pub shed_overload: u64,
    /// Rejections as [`Admission::DeadlineInfeasible`].
    pub infeasible: u64,
    /// Admitted requests that completed *after* their deadline. Misses
    /// are counted, never culled — dropping a stamped request would hole
    /// the stream numbering.
    pub deadline_misses: u64,
    /// Completion latencies (submit → logits) of a bounded sample of
    /// admitted requests.
    pub latencies: Vec<Duration>,
}

impl ClassStats {
    /// Total sheds across all typed reasons (excludes infeasible, which
    /// is a pre-admission rejection of the deadline, not load shedding).
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_class_budget + self.shed_overload
    }

    /// Records one shed under its typed reason.
    pub fn note_shed(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.shed_queue_full += 1,
            ShedReason::ClassBudget => self.shed_class_budget += 1,
            ShedReason::Overload => self.shed_overload += 1,
        }
    }

    /// Pools another shard's counters and latency samples into this one.
    /// Counters add; samples concatenate (percentiles are computed from
    /// the pooled sample, never averaged across shards).
    pub fn merge(&mut self, other: &ClassStats) {
        self.admitted += other.admitted;
        self.shed_queue_full += other.shed_queue_full;
        self.shed_class_budget += other.shed_class_budget;
        self.shed_overload += other.shed_overload;
        self.infeasible += other.infeasible;
        self.deadline_misses += other.deadline_misses;
        self.latencies.extend_from_slice(&other.latencies);
    }

    /// The `p`-th percentile (0.0..=1.0) of the completion-latency
    /// sample, or `None` when no samples were recorded.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }
}

/// The QoS ledger of one handle: per-class accounting plus the number of
/// ECN marks observed (requests admitted while the queue was past its
/// pressure threshold, or marked replies seen from a remote shard).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QosStats {
    /// Per-class counters, indexed by [`Priority::rank`].
    pub classes: [ClassStats; Priority::COUNT],
    /// Congestion marks observed.
    pub ecn_marks: u64,
}

impl QosStats {
    /// The counters of one priority class.
    pub fn class(&self, priority: Priority) -> &ClassStats {
        &self.classes[priority.rank()]
    }

    /// Mutable access to one priority class's counters.
    pub fn class_mut(&mut self, priority: Priority) -> &mut ClassStats {
        &mut self.classes[priority.rank()]
    }

    /// Pools another ledger into this one (see [`ClassStats::merge`]).
    pub fn merge(&mut self, other: &QosStats) {
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.merge(theirs);
        }
        self.ecn_marks += other.ecn_marks;
    }

    /// Total admitted across all classes.
    pub fn admitted_total(&self) -> u64 {
        self.classes.iter().map(|c| c.admitted).sum()
    }

    /// Total sheds across all classes and reasons.
    pub fn shed_total(&self) -> u64 {
        self.classes.iter().map(|c| c.shed_total()).sum()
    }
}

struct QosEntry<T> {
    item: T,
    priority: Priority,
    /// Absolute completion deadline in the caller's clock domain
    /// (`None` sorts after every finite deadline).
    deadline: Option<Duration>,
    arrived: Duration,
    seq: u64,
}

/// A [`Coalescer`](crate::Coalescer) that can compose batches
/// earliest-deadline-first within priority bands instead of strictly
/// FIFO.
///
/// Same fake-clock contract as the plain coalescer: `push` reports the
/// size trigger, `is_due` the deadline trigger (`max_wait` after the
/// *oldest queued* item arrived), and [`QosCoalescer::take_batch`]
/// removes up to `max_batch` items in policy order — under
/// [`QosOrdering::Fifo`] that is exactly the plain coalescer's batch.
///
/// Reordering here is safe only because batches are evaluated at their
/// stamped global stream indices: dispatch order changes, stream
/// coordinates (and therefore logits) do not.
#[derive(Debug)]
pub struct QosCoalescer<T> {
    max_batch: usize,
    max_wait: Duration,
    ordering: QosOrdering,
    items: Vec<QosEntry<T>>,
    deadline: Option<Duration>,
    next_seq: u64,
}

impl<T> fmt::Debug for QosEntry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QosEntry")
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("arrived", &self.arrived)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl<T> QosCoalescer<T> {
    /// A coalescer dispatching at `max_batch` items (clamped to ≥ 1) or
    /// `max_wait` after the oldest queued item, whichever comes first.
    pub fn new(max_batch: usize, max_wait: Duration, ordering: QosOrdering) -> Self {
        QosCoalescer {
            max_batch: max_batch.max(1),
            max_wait,
            ordering,
            items: Vec::new(),
            deadline: None,
            next_seq: 0,
        }
    }

    /// Adds one item at time `now` with its class annotations; returns
    /// `true` when at least `max_batch` items are queued.
    pub fn push(
        &mut self,
        item: T,
        priority: Priority,
        deadline: Option<Duration>,
        now: Duration,
    ) -> bool {
        if self.items.is_empty() {
            self.deadline = Some(now + self.max_wait);
        }
        self.items.push(QosEntry {
            item,
            priority,
            deadline,
            arrived: now,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        self.items.len() >= self.max_batch
    }

    /// The instant the pending items must be flushed, if any are queued.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the latency budget of the oldest queued item has expired
    /// at time `now` (always `false` when empty).
    pub fn is_due(&self, now: Duration) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes and returns up to `max_batch` items in policy order,
    /// leaving later arrivals queued (their flush deadline is recomputed
    /// from the oldest survivor).
    pub fn take_batch(&mut self) -> Vec<T> {
        let n = self.items.len().min(self.max_batch);
        let picked: Vec<usize> = match self.ordering {
            QosOrdering::Fifo => (0..n).collect(),
            QosOrdering::EdfWithinPriority => {
                let mut order: Vec<usize> = (0..self.items.len()).collect();
                order.sort_by_key(|&i| {
                    let e = &self.items[i];
                    (
                        e.priority.rank(),
                        e.deadline.unwrap_or(Duration::MAX),
                        e.seq,
                    )
                });
                order.truncate(n);
                order.sort_unstable();
                order
            }
        };
        let mut out = Vec::with_capacity(n);
        let mut keep = Vec::with_capacity(self.items.len() - n);
        let mut next = picked.iter().copied().peekable();
        for (i, e) in std::mem::take(&mut self.items).into_iter().enumerate() {
            if next.peek() == Some(&i) {
                next.next();
                out.push(e.item);
            } else {
                keep.push(e);
            }
        }
        self.items = keep;
        self.deadline = self.items.iter().map(|e| e.arrived + self.max_wait).min();
        out
    }

    /// Removes and returns **all** queued items in policy order (used by
    /// shutdown drains).
    pub fn take_all(&mut self) -> Vec<T> {
        let saved = self.max_batch;
        self.max_batch = usize::MAX;
        let out = self.take_batch();
        self.max_batch = saved;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn fifo_take_matches_arrival_order() {
        let mut c = QosCoalescer::new(2, ms(10), QosOrdering::Fifo);
        assert!(!c.push("a", Priority::Low, Some(ms(1)), ms(0)));
        assert!(c.push("b", Priority::High, Some(ms(200)), ms(1)));
        // FIFO ignores class annotations entirely.
        assert_eq!(c.take_batch(), vec!["a", "b"]);
        assert!(c.is_empty());
        assert_eq!(c.deadline(), None);
    }

    #[test]
    fn edf_orders_priority_then_deadline_then_arrival() {
        let mut c = QosCoalescer::new(3, ms(10), QosOrdering::EdfWithinPriority);
        c.push("low-early", Priority::Low, Some(ms(5)), ms(0));
        c.push("norm-late", Priority::Normal, Some(ms(900)), ms(1));
        c.push("norm-none", Priority::Normal, None, ms(2));
        c.push("high", Priority::High, None, ms(3));
        c.push("norm-early", Priority::Normal, Some(ms(50)), ms(4));
        // Batch of 3: High first, then Normal by deadline (50 < 900);
        // the deadline-less Normal and the Low remain queued.
        assert_eq!(c.take_batch(), vec!["norm-late", "high", "norm-early"]);
        assert_eq!(c.len(), 2);
        // Remainder flushes in the same discipline.
        assert_eq!(c.take_all(), vec!["low-early", "norm-none"]);
    }

    #[test]
    fn remainder_deadline_tracks_oldest_survivor() {
        let mut c = QosCoalescer::new(1, ms(10), QosOrdering::EdfWithinPriority);
        c.push(1, Priority::Low, None, ms(0));
        c.push(2, Priority::High, None, ms(4));
        assert_eq!(c.deadline(), Some(ms(10)), "budget keyed to first arrival");
        // High wins the batch of one; the Low survivor keeps its own
        // arrival-based budget.
        assert_eq!(c.take_batch(), vec![2]);
        assert_eq!(c.deadline(), Some(ms(10)));
        assert!(c.is_due(ms(10)));
        assert_eq!(c.take_batch(), vec![1]);
    }

    #[test]
    fn ties_within_a_band_preserve_arrival_order() {
        let mut c = QosCoalescer::new(4, ms(10), QosOrdering::EdfWithinPriority);
        for i in 0..4 {
            c.push(i, Priority::Normal, Some(ms(100)), ms(i));
        }
        assert_eq!(c.take_batch(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pacer_halves_on_pressure_and_recovers_additively() {
        let config = PacerConfig {
            enabled: true,
            min_window: 1,
            max_window: 16,
            hard_limit: usize::MAX,
            decrease_cooldown: ms(5),
        };
        let mut p = AimdPacer::new(config);
        assert_eq!(p.window(), 16);
        assert!(p.admits(15));
        assert!(!p.admits(16));

        p.observe(true, ms(0));
        assert_eq!(p.window(), 8, "multiplicative decrease halves");
        // A second mark inside the cooldown is the same queue event.
        p.observe(true, ms(1));
        assert_eq!(p.window(), 8, "cooldown suppresses repeated decrease");
        p.observe(true, ms(5));
        assert_eq!(p.window(), 4, "decrease resumes after cooldown");

        // Additive increase: +1/window per clean observation, so roughly
        // `window` observations grow the window by one.
        let mut rounds = 0;
        while p.window() < 5 {
            p.observe(false, ms(6));
            rounds += 1;
            assert!(rounds <= 6, "additive increase too slow: {rounds} rounds");
        }
        assert!(
            rounds >= 4,
            "w=4 must take ≥4 clean observations to reach 5"
        );
        assert!(p.admits(4));
        assert!(!p.admits(5));
    }

    #[test]
    fn pacer_floor_ceiling_and_hard_limit() {
        let config = PacerConfig {
            enabled: true,
            min_window: 2,
            max_window: 4,
            hard_limit: 3,
            decrease_cooldown: Duration::ZERO,
        };
        let mut p = AimdPacer::new(config);
        for i in 0..10 {
            p.observe(true, ms(i));
        }
        assert_eq!(p.window(), 2, "window never sinks below the floor");
        for _ in 0..100 {
            p.observe(false, ms(100));
        }
        assert_eq!(p.window(), 4, "window never grows past the ceiling");
        assert!(!p.admits(3), "hard limit caps admission below the window");
        assert!(p.admits(2));
    }

    #[test]
    fn disabled_pacer_admits_everything_below_hard_limit() {
        let mut p = AimdPacer::new(PacerConfig::default().with_hard_limit(10));
        for i in 0..50 {
            p.observe(true, ms(i));
        }
        assert!(p.admits(9));
        assert!(!p.admits(10));
    }

    #[test]
    fn class_stats_merge_pools_counters_and_samples() {
        let mut a = QosStats::default();
        a.class_mut(Priority::High).admitted = 3;
        a.class_mut(Priority::High).latencies = vec![ms(1), ms(9)];
        a.class_mut(Priority::Low).note_shed(ShedReason::Overload);
        a.ecn_marks = 2;

        let mut b = QosStats::default();
        b.class_mut(Priority::High).admitted = 2;
        b.class_mut(Priority::High).deadline_misses = 1;
        b.class_mut(Priority::High).latencies = vec![ms(5)];
        b.class_mut(Priority::Low).note_shed(ShedReason::QueueFull);
        b.class_mut(Priority::Low).infeasible = 4;
        b.ecn_marks = 1;

        a.merge(&b);
        let high = a.class(Priority::High);
        assert_eq!(high.admitted, 5);
        assert_eq!(high.deadline_misses, 1);
        assert_eq!(high.latencies, vec![ms(1), ms(9), ms(5)]);
        assert_eq!(
            high.latency_percentile(0.5),
            Some(ms(5)),
            "median comes from the pooled sample, not averaged medians"
        );
        let low = a.class(Priority::Low);
        assert_eq!(low.shed_overload, 1);
        assert_eq!(low.shed_queue_full, 1);
        assert_eq!(low.shed_total(), 2);
        assert_eq!(low.infeasible, 4);
        assert_eq!(a.ecn_marks, 3);
        assert_eq!(a.admitted_total(), 5);
        assert_eq!(a.shed_total(), 2);
    }

    #[test]
    fn shed_reasons_render_as_stable_tokens() {
        assert_eq!(ShedReason::QueueFull.to_string(), "queue_full");
        assert_eq!(ShedReason::ClassBudget.to_string(), "class_budget");
        assert_eq!(ShedReason::Overload.to_string(), "overload");
    }

    #[test]
    fn estimated_wait_needs_a_service_estimate() {
        let mut load = ShardLoad {
            in_flight: 8,
            ..ShardLoad::default()
        };
        assert_eq!(load.estimated_wait(), None);
        load.est_image_ns = 1_000_000;
        assert_eq!(load.estimated_wait(), Some(ms(8)));
    }
}
