//! The pure micro-batching state machine.
//!
//! [`Coalescer`] decides *when a batch is ready* — it owns no threads, no
//! channels, and no wall clock. Callers feed it requests tagged with an
//! explicit `now` timestamp (any monotonic [`Duration`] since an arbitrary
//! epoch), and it reports fullness and deadlines. The worker thread wires
//! it to `Instant::elapsed`; the unit tests drive it with a fake clock,
//! which is the only way to test a latency budget deterministically.

use std::time::Duration;

/// Accumulates items into a batch bounded by a size limit and a latency
/// budget (see [`BatchPolicy`](crate::BatchPolicy)).
///
/// State machine: the batch is *ready* when either
/// [`Coalescer::push`] returns `true` (size trigger) or
/// [`Coalescer::is_due`] returns `true` (deadline trigger — `max_wait`
/// after the **first** item of the partial batch arrived). [`Coalescer::take`]
/// removes the batch and resets the deadline.
///
/// ```
/// use aimc_serve::Coalescer;
/// use std::time::Duration;
///
/// let mut c: Coalescer<&str> = Coalescer::new(2, Duration::from_millis(10));
/// let t0 = Duration::from_millis(100); // fake clock
/// assert!(!c.push("a", t0)); // not full yet
/// assert!(!c.is_due(t0 + Duration::from_millis(9))); // budget not exhausted
/// assert!(c.is_due(t0 + Duration::from_millis(10))); // budget exhausted
/// assert_eq!(c.take(), vec!["a"]);
/// ```
#[derive(Debug)]
pub struct Coalescer<T> {
    max_batch: usize,
    max_wait: Duration,
    items: Vec<T>,
    /// Flush deadline of the current partial batch (set when its first
    /// item arrives), in the caller's clock domain.
    deadline: Option<Duration>,
}

impl<T> Coalescer<T> {
    /// A coalescer dispatching at `max_batch` items (clamped to ≥ 1) or
    /// `max_wait` after the first queued item, whichever comes first.
    pub fn new(max_batch: usize, max_wait: Duration) -> Self {
        Coalescer {
            max_batch: max_batch.max(1),
            max_wait,
            items: Vec::new(),
            deadline: None,
        }
    }

    /// Adds one item at time `now`; returns `true` when the batch has
    /// reached `max_batch` and must be dispatched.
    ///
    /// The first item of a partial batch starts the latency budget:
    /// the deadline becomes `now + max_wait` and does **not** move when
    /// later items join (the budget bounds the *oldest* request's wait).
    pub fn push(&mut self, item: T, now: Duration) -> bool {
        if self.items.is_empty() {
            self.deadline = Some(now + self.max_wait);
        }
        self.items.push(item);
        self.items.len() >= self.max_batch
    }

    /// The instant the current partial batch must be dispatched, if one is
    /// pending.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the latency budget of the pending partial batch has expired
    /// at time `now` (always `false` when empty).
    pub fn is_due(&self, now: Duration) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes and returns the queued batch (possibly empty), clearing the
    /// deadline.
    pub fn take(&mut self) -> Vec<T> {
        self.deadline = None;
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn size_trigger_fires_exactly_at_max_batch() {
        let mut c = Coalescer::new(3, ms(50));
        assert!(!c.push(1, ms(0)));
        assert!(!c.push(2, ms(1)));
        assert!(c.push(3, ms(2)), "third item fills a max_batch=3 batch");
        assert_eq!(c.take(), vec![1, 2, 3]);
        assert!(c.is_empty());
        assert_eq!(c.deadline(), None);
    }

    #[test]
    fn deadline_is_keyed_to_the_first_item_under_a_fake_clock() {
        let mut c = Coalescer::new(100, ms(10));
        assert!(!c.is_due(ms(1_000_000)), "empty coalescer is never due");
        c.push("first", ms(100));
        assert_eq!(c.deadline(), Some(ms(110)));
        // Later arrivals do not extend the oldest request's budget.
        c.push("second", ms(105));
        c.push("third", ms(109));
        assert_eq!(c.deadline(), Some(ms(110)));
        assert!(!c.is_due(ms(109)));
        assert!(c.is_due(ms(110)));
        assert!(c.is_due(ms(500)));
        assert_eq!(c.take().len(), 3);
        // The next batch restarts the budget from its own first item.
        c.push("fourth", ms(200));
        assert_eq!(c.deadline(), Some(ms(210)));
    }

    #[test]
    fn zero_wait_makes_every_partial_batch_immediately_due() {
        let mut c = Coalescer::new(8, Duration::ZERO);
        c.push(7, ms(3));
        assert!(c.is_due(ms(3)));
    }

    #[test]
    fn max_batch_zero_degrades_to_one() {
        let mut c = Coalescer::new(0, ms(1));
        assert!(c.push(1, ms(0)), "max_batch 0 clamps to 1: always full");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any arrival pattern, a batch handed out by the size trigger
        /// never exceeds `max_batch`, and taking on every trigger (size or
        /// deadline) loses no items and reorders nothing.
        #[test]
        fn batches_never_exceed_max_batch_and_preserve_fifo(
            max_batch in 1usize..10,
            max_wait_ms in 0u64..20,
            gaps in prop::collection::vec(0u64..30, 1..60),
        ) {
            let mut c = Coalescer::new(max_batch, ms(max_wait_ms));
            let mut now = ms(0);
            let mut batches: Vec<Vec<usize>> = Vec::new();
            for (i, gap) in gaps.iter().enumerate() {
                now += ms(*gap);
                // Deadline trigger: flush anything overdue before admitting.
                if c.is_due(now) {
                    batches.push(c.take());
                }
                if c.push(i, now) {
                    batches.push(c.take());
                }
            }
            let tail = c.take();
            if !tail.is_empty() {
                batches.push(tail);
            }
            for b in &batches {
                prop_assert!(!b.is_empty());
                prop_assert!(b.len() <= max_batch, "batch of {} exceeds {}", b.len(), max_batch);
            }
            let flat: Vec<usize> = batches.into_iter().flatten().collect();
            let want: Vec<usize> = (0..gaps.len()).collect();
            prop_assert_eq!(flat, want);
        }
    }
}
