//! The fleet router: one global request stream over N replica shards.
//!
//! The paper's architecture scales by *replicating compute* — many
//! identically-configured AIMC clusters behind a NoC, all serving one
//! workload. [`FleetHandle`] is the host-side counterpart for serving: a
//! two-tier ingress where the router owns the **global arrival counter**,
//! stamps every request with its global stream index, and routes it to one
//! of N per-shard micro-batch schedulers ([`ServeHandle`]s), each backed by
//! a replica executor programmed from the same seed.
//!
//! > **Fleet invariance.** Because every request carries its global
//! > coordinate and every replica holds bit-identical conductances, the
//! > logits of request *k* are bit-identical to a solo single-session
//! > stream of the same images — for ANY shard count and ANY routing
//! > policy, no matter which shard evaluated which request.
//!
//! The router never inspects tensors and never blocks on inference: it is
//! a stamp-and-forward layer. Shard-side coalescing, backpressure, and
//! completion plumbing are exactly the single-session scheduler's.

use crate::handle::{Pending, ServeError, ServeHandle, ServeStats};
use aimc_dnn::{ExecError, Tensor};
use aimc_parallel::Parallelism;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How the router picks a shard for each stamped request.
///
/// Routing **never** affects results — that is the fleet invariance — so
/// the policy is purely a load/latency trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Cycle through shards in submission order: perfectly even request
    /// counts, oblivious to per-shard backlog.
    #[default]
    RoundRobin,
    /// Send each request to the shard with the fewest requests in flight
    /// (ties break toward the lowest shard id): adapts to stragglers at
    /// the cost of one load probe per submission.
    LeastQueueDepth,
}

/// Backend-side control surface of one shard, supplied by the layer that
/// built the fleet (the `aimc-platform` facade): the router can quiesce
/// shards itself, but mutating replica state — conductance drift,
/// reprogramming, the thread budget — needs the executor types this crate
/// does not know.
///
/// Implementations must apply each operation to **their own shard only**;
/// [`FleetHandle`] fans the calls across all shards after draining, so
/// every replica transitions at the same global stream position.
pub trait ShardControl: Send + Sync {
    /// Applies conductance drift to this shard's replica (write-locked
    /// against in-flight batches). Returns whether the backend models
    /// drift (`false` for digital replicas).
    fn apply_drift(&self, t_hours: f64) -> bool;

    /// Rewrites this shard's replica from scratch with the original seed —
    /// fresh conductances, image counter rewound to zero.
    ///
    /// # Errors
    /// Any [`ExecError`] from re-programming.
    fn reprogram(&self) -> Result<(), ExecError>;

    /// Updates the thread budget this shard's batches snapshot at
    /// dispatch. Never changes results.
    fn set_parallelism(&self, par: Parallelism);
}

/// Per-shard plus aggregated statistics of a fleet (see
/// [`FleetHandle::stats`]).
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// One [`ServeStats`] snapshot per shard, in shard-id order.
    pub shards: Vec<ServeStats>,
}

impl FleetStats {
    /// The fleet-wide view: counters summed across shards, the largest
    /// batch observed anywhere, and every shard's queue-wait samples
    /// pooled (so percentiles describe the whole fleet's recent traffic).
    pub fn aggregate(&self) -> ServeStats {
        let mut agg = ServeStats::default();
        for s in &self.shards {
            agg.submitted += s.submitted;
            agg.completed += s.completed;
            agg.rejected += s.rejected;
            agg.batches += s.batches;
            agg.dispatched += s.dispatched;
            agg.max_batch_observed = agg.max_batch_observed.max(s.max_batch_observed);
            agg.queue_waits.extend_from_slice(&s.queue_waits);
        }
        agg
    }
}

struct FleetInner {
    shards: Vec<ServeHandle>,
    controls: Vec<Box<dyn ShardControl>>,
    route: RoutePolicy,
    /// The global arrival counter — the single stream authority of the
    /// whole fleet. Claimed with one `fetch_add` per request, so
    /// concurrent submitters can never alias a coordinate.
    next_global: AtomicU64,
    /// Round-robin cursor (wraps modulo the shard count).
    rr: AtomicUsize,
}

impl std::fmt::Debug for FleetInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetInner")
            .field("shards", &self.shards.len())
            .field("route", &self.route)
            .field("next_global", &self.next_global)
            .finish_non_exhaustive()
    }
}

/// Clone-able ingress of a serving fleet: N replica shards behind one
/// router-owned global request stream (see the module docs and
/// `Platform::serve_fleet` in the `aimc-platform` facade).
///
/// All clones share the same shards, counter, and routing cursor. Requests
/// submitted through any clone receive globally unique stream indices.
#[derive(Debug, Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
}

impl FleetHandle {
    /// Assembles a fleet from per-shard schedulers and their backend
    /// controls (one control per shard, same order).
    ///
    /// # Panics
    /// Panics if `shards` is empty or the lengths differ — fleet assembly
    /// is a construction-time contract, not a runtime condition.
    pub fn new(
        shards: Vec<ServeHandle>,
        controls: Vec<Box<dyn ShardControl>>,
        route: RoutePolicy,
    ) -> Self {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        assert_eq!(
            shards.len(),
            controls.len(),
            "one ShardControl per shard, in shard order"
        );
        FleetHandle {
            inner: Arc::new(FleetInner {
                shards,
                controls,
                route,
                next_global: AtomicU64::new(0),
                rr: AtomicUsize::new(0),
            }),
        }
    }

    /// Picks the target shard for one request under the routing policy.
    fn pick_shard(&self) -> usize {
        let inner = &self.inner;
        match inner.route {
            RoutePolicy::RoundRobin => {
                inner.rr.fetch_add(1, Ordering::Relaxed) % inner.shards.len()
            }
            RoutePolicy::LeastQueueDepth => {
                let mut best = 0usize;
                let mut best_depth = u64::MAX;
                for (i, s) in inner.shards.iter().enumerate() {
                    let depth = s.in_flight();
                    if depth < best_depth {
                        best = i;
                        best_depth = depth;
                    }
                }
                best
            }
        }
    }

    /// Submits one image to the fleet: claims the next global stream index,
    /// picks a shard under the routing policy, and forwards the stamped
    /// request ([`ServeHandle::submit_at`]). Blocks only on the chosen
    /// shard's bounded queue.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] after [`FleetHandle::shutdown`].
    pub fn submit(&self, image: Tensor) -> Result<Pending, ServeError> {
        let shard = self.pick_shard();
        let index = self.inner.next_global.fetch_add(1, Ordering::Relaxed);
        self.inner.shards[shard].submit_at(index, image)
    }

    /// Submits a run of images stamped with one **contiguous** block of
    /// global indices (claimed atomically) and routed as a block to a
    /// single shard picked under the policy — the fleet counterpart of
    /// [`ServeHandle::submit_many`]: one routing decision and one shard
    /// -queue lock for the whole run.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] after [`FleetHandle::shutdown`].
    pub fn submit_block(
        &self,
        images: impl IntoIterator<Item = Tensor>,
    ) -> Result<Vec<Pending>, ServeError> {
        let images: Vec<Tensor> = images.into_iter().collect();
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let shard = self.pick_shard();
        let base = self
            .inner
            .next_global
            .fetch_add(images.len() as u64, Ordering::Relaxed);
        images
            .into_iter()
            .enumerate()
            .map(|(i, image)| self.inner.shards[shard].submit_at(base + i as u64, image))
            .collect()
    }

    /// Blocks until every accepted request on every shard has reached a
    /// terminal outcome.
    pub fn drain(&self) {
        for s in &self.inner.shards {
            s.drain();
        }
    }

    /// Stops accepting requests fleet-wide, drains everything accepted,
    /// and joins every shard worker. Idempotent; safe from any clone.
    pub fn shutdown(&self) {
        for s in &self.inner.shards {
            s.shutdown();
        }
    }

    /// Whether [`FleetHandle::shutdown`] has run.
    pub fn is_closed(&self) -> bool {
        self.inner.shards.iter().all(ServeHandle::is_closed)
    }

    /// Applies conductance drift to **every** replica at the same stream
    /// position: the fleet is drained first (all accepted requests finish
    /// on pre-drift conductances), then each shard drifts under its write
    /// lock. Returns whether the replicas model drift (`false` for a
    /// golden fleet, which ignores the call).
    ///
    /// Identical replicas drifted identically stay identical — so the
    /// fleet keeps matching a solo session taken through the same
    /// transition at the same stream position.
    pub fn apply_drift(&self, t_hours: f64) -> bool {
        self.drain();
        let mut modeled = false;
        for c in &self.inner.controls {
            modeled |= c.apply_drift(t_hours);
        }
        modeled
    }

    /// Reprograms **every** replica from the original seed and rewinds the
    /// global stream to zero, after draining the fleet — the exact
    /// semantics of a solo `Session::reprogram`: freshly written
    /// conductances, coordinates replayed from the start.
    ///
    /// # Errors
    /// [`ServeError::Exec`] if any shard fails to re-program (shards
    /// already re-programmed keep their fresh state; the stream counter is
    /// only rewound on full success).
    pub fn reprogram(&self) -> Result<(), ServeError> {
        self.drain();
        for c in &self.inner.controls {
            c.reprogram()?;
        }
        self.inner.next_global.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Updates the thread budget fleet-wide; in-flight shards pick it up
    /// per dispatched batch. Never changes a logit.
    pub fn set_parallelism(&self, par: Parallelism) {
        for c in &self.inner.controls {
            c.set_parallelism(par);
        }
    }

    /// Number of shards behind the router.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Global stream indices claimed so far (= requests routed, counting
    /// any trailing shutdown-race holes).
    pub fn images_routed(&self) -> u64 {
        self.inner.next_global.load(Ordering::Relaxed)
    }

    /// The routing policy this fleet was assembled with.
    pub fn route_policy(&self) -> RoutePolicy {
        self.inner.route
    }

    /// Point-in-time statistics, per shard and aggregatable.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.inner.shards.iter().map(ServeHandle::stats).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spawn, BatchPolicy};
    use aimc_dnn::Shape;
    use std::sync::Mutex;
    use std::time::Duration;

    fn tensor(v: f32) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1), vec![v])
    }

    /// Records (index, tag) pairs a shard's runner saw; echoes index+tag so
    /// results encode the evaluating coordinate.
    type ShardLog = Arc<Mutex<Vec<(u64, f32)>>>;

    fn shard(log: ShardLog, policy: BatchPolicy) -> ServeHandle {
        spawn(policy, move |indices: &[u64], inputs: &[Tensor]| {
            let mut l = log.lock().unwrap();
            for (&idx, t) in indices.iter().zip(inputs) {
                l.push((idx, t.data()[0]));
            }
            Ok(indices
                .iter()
                .zip(inputs)
                .map(|(&idx, t)| tensor(idx as f32 * 1000.0 + t.data()[0]))
                .collect())
        })
    }

    /// A control that records calls instead of owning an executor.
    #[derive(Default)]
    struct RecordingControl {
        drifts: Mutex<Vec<f64>>,
        reprograms: Mutex<u32>,
        pars: Mutex<Vec<Parallelism>>,
    }

    struct ControlHandle(Arc<RecordingControl>);

    impl ShardControl for ControlHandle {
        fn apply_drift(&self, t_hours: f64) -> bool {
            self.0.drifts.lock().unwrap().push(t_hours);
            true
        }
        fn reprogram(&self) -> Result<(), ExecError> {
            *self.0.reprograms.lock().unwrap() += 1;
            Ok(())
        }
        fn set_parallelism(&self, par: Parallelism) {
            self.0.pars.lock().unwrap().push(par);
        }
    }

    fn fleet(n: usize, route: RoutePolicy) -> (FleetHandle, Vec<ShardLog>, Arc<RecordingControl>) {
        let control = Arc::new(RecordingControl::default());
        let logs: Vec<ShardLog> = (0..n).map(|_| Arc::default()).collect();
        let shards = logs
            .iter()
            .map(|l| shard(Arc::clone(l), BatchPolicy::new(2, Duration::from_millis(1))))
            .collect();
        let controls: Vec<Box<dyn ShardControl>> = (0..n)
            .map(|_| Box::new(ControlHandle(Arc::clone(&control))) as Box<dyn ShardControl>)
            .collect();
        (FleetHandle::new(shards, controls, route), logs, control)
    }

    #[test]
    fn round_robin_spreads_evenly_and_indices_are_global() {
        let (f, logs, _) = fleet(3, RoutePolicy::RoundRobin);
        let pendings: Vec<Pending> = (0..9)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        // Result of request k encodes the coordinate it ran at: must be k.
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        assert_eq!(f.images_routed(), 9);
        // Even spread: single-threaded round-robin gives each shard 3.
        let mut all: Vec<(u64, f32)> = Vec::new();
        for (s, log) in logs.iter().enumerate() {
            let l = log.lock().unwrap();
            assert_eq!(l.len(), 3, "shard {s} request count");
            // Shard s saw exactly global indices s, s+3, s+6.
            for (j, &(idx, tag)) in l.iter().enumerate() {
                assert_eq!(idx as usize, s + 3 * j);
                assert_eq!(tag, idx as f32);
            }
            all.extend_from_slice(&l);
        }
        // Every global index routed exactly once.
        let mut seen: Vec<u64> = all.iter().map(|&(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<u64>>());
        f.shutdown();
        assert!(f.is_closed());
    }

    #[test]
    fn least_queue_depth_prefers_idle_shards() {
        let (f, logs, _) = fleet(2, RoutePolicy::LeastQueueDepth);
        // Submit and drain one at a time: both shards idle at each pick, so
        // ties route everything to shard 0 — and shard 1 stays empty.
        for i in 0..4 {
            let p = f.submit(tensor(i as f32)).unwrap();
            p.wait().unwrap();
            f.drain();
        }
        assert_eq!(logs[0].lock().unwrap().len(), 4);
        assert_eq!(logs[1].lock().unwrap().len(), 0);
        f.shutdown();
    }

    #[test]
    fn submit_block_routes_one_contiguous_block_to_one_shard() {
        let (f, logs, _) = fleet(2, RoutePolicy::RoundRobin);
        let a = f.submit_block((0..3).map(|i| tensor(i as f32))).unwrap();
        let b = f.submit_block((3..5).map(|i| tensor(i as f32))).unwrap();
        assert_eq!(f.submit_block(std::iter::empty()).unwrap().len(), 0);
        for (k, p) in a.into_iter().chain(b).enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        // Each block landed whole on one shard, in block order.
        let l0 = logs[0].lock().unwrap().clone();
        let l1 = logs[1].lock().unwrap().clone();
        assert_eq!(l0, vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
        assert_eq!(l1, vec![(3, 3.0), (4, 4.0)]);
        f.shutdown();
    }

    #[test]
    fn stats_aggregate_sums_the_fleet() {
        let (f, _, _) = fleet(3, RoutePolicy::RoundRobin);
        let pendings: Vec<Pending> = (0..7)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        for p in pendings {
            p.wait().unwrap();
        }
        f.drain();
        let stats = f.stats();
        assert_eq!(stats.shards.len(), 3);
        let agg = stats.aggregate();
        assert_eq!(agg.submitted, 7);
        assert_eq!(agg.completed, 7);
        assert_eq!(agg.dispatched, 7);
        assert_eq!(agg.queue_waits.len(), 7);
        assert!(
            agg.batches >= 4,
            "7 requests at max_batch 2 need ≥4 batches"
        );
        assert!(agg.max_batch_observed <= 2);
        f.shutdown();
        // Post-shutdown submissions are refused and show up aggregated.
        assert!(matches!(f.submit(tensor(0.0)), Err(ServeError::ShutDown)));
        assert_eq!(f.stats().aggregate().rejected, 1);
    }

    #[test]
    fn drift_and_reprogram_fan_across_all_shards() {
        let (f, _, control) = fleet(3, RoutePolicy::RoundRobin);
        let p = f.submit(tensor(1.0)).unwrap();
        assert!(f.apply_drift(24.0));
        // Drain-before-drift: the in-flight request completed first.
        assert!(p.is_ready());
        assert_eq!(*control.drifts.lock().unwrap(), vec![24.0, 24.0, 24.0]);

        let _ = f.submit(tensor(2.0)).unwrap();
        assert_eq!(f.images_routed(), 2);
        f.reprogram().unwrap();
        assert_eq!(*control.reprograms.lock().unwrap(), 3);
        assert_eq!(f.images_routed(), 0, "reprogram rewinds the global stream");
        // The next request replays coordinate 0.
        let p = f.submit(tensor(5.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[5.0]);

        f.set_parallelism(Parallelism::Threads(2));
        assert_eq!(control.pars.lock().unwrap().len(), 3);
        f.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_fleet_is_a_construction_error() {
        let _ = FleetHandle::new(Vec::new(), Vec::new(), RoutePolicy::RoundRobin);
    }
}
